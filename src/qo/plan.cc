#include "qo/plan.h"

#include <sstream>

namespace warper::qo {

std::string PhysicalPlan::ToString() const {
  std::ostringstream oss;
  oss << (join == JoinAlgorithm::kHashJoin ? "HashJoin" : "NestedLoop");
  oss << "(build=" << (build_on_lineitem ? "L" : "O")
      << ", grant=" << memory_grant_rows;
  if (parallel) {
    oss << ", bitmap=" << (bitmap_on_lineitem ? "L" : "O");
  }
  oss << ")";
  return oss.str();
}

}  // namespace warper::qo
