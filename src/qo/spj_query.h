// The Figure-1 query template:
//   SELECT ... FROM Lineitem L JOIN Orders O ON l_orderkey = o_orderkey
//   WHERE pred(L) [AND pred(O)]
// with its three §4.2 execution scenarios.
#ifndef WARPER_QO_SPJ_QUERY_H_
#define WARPER_QO_SPJ_QUERY_H_

#include <cstdint>

#include "storage/datasets.h"
#include "storage/predicate.h"

namespace warper::qo {

// Which plan-flip mechanism the experiment exercises (Table 9).
enum class Scenario {
  kBufferSpill,   // S1: single thread, predicate on L
  kJoinType,      // S2: single thread, predicates on L and O
  kBitmapSide,    // S3: multi-threaded, predicates on L and O
};

const char* ScenarioName(Scenario scenario);

struct SpjQuery {
  storage::RangePredicate lineitem_pred;
  storage::RangePredicate orders_pred;
};

// Actual (ground-truth) cardinalities of a query against the tables.
struct ActualCardinalities {
  int64_t lineitem_rows = 0;   // |σ(L)|
  int64_t orders_rows = 0;     // |σ(O)|
  int64_t join_rows = 0;       // |σ(L) ⋈ σ(O)|
  // Rows of each filtered side that survive the semi-join with the other
  // side (what a perfect bitmap would let through).
  int64_t lineitem_semijoin_rows = 0;
  int64_t orders_semijoin_rows = 0;
};

// Evaluates the query's true cardinalities by scanning both tables and
// hash-joining on orderkey.
ActualCardinalities ComputeActuals(const storage::TpchTables& tables,
                                   const SpjQuery& query);

}  // namespace warper::qo

#endif  // WARPER_QO_SPJ_QUERY_H_
