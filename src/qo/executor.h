// A deterministic execution-latency model for the SPJ template.
//
// Substitution note (DESIGN.md §3): the paper runs a production QO + engine
// on TPC-H SF-10 and injects cardinality estimates into memo groups. Here a
// calibrated cost model plays the engine: it charges for scans, hash build /
// probe, buffer spills (extra passes when the build exceeds its grant),
// nested-loop pair costs, and parallel bitmap + exchange work. The paper's
// end-to-end claim only needs the *relative* latency of flipped vs correct
// plans, which the model reproduces (Table 9's 2.1× / 306× / 5.3× ordering).
#ifndef WARPER_QO_EXECUTOR_H_
#define WARPER_QO_EXECUTOR_H_

#include "qo/optimizer.h"
#include "qo/plan.h"
#include "qo/spj_query.h"

namespace warper::qo {

// Per-row / per-pair costs in milliseconds.
struct CostModelConfig {
  // Constants calibrated so that flipped-vs-correct plans land near the
  // paper's Table-9 latency gaps (≈2.1× spill, ≈300× nested loop, ≈5.3×
  // bitmap side) on the bench workloads.
  double scan_per_row = 2e-4;
  double hash_build_per_row = 5e-4;
  double hash_probe_per_row = 3e-4;
  // Spill: every extra pass re-writes and re-reads the build side and
  // re-probes.
  double spill_write_per_row = 6e-4;
  double spill_read_per_row = 5e-4;
  double spill_probe_per_row = 2e-4;
  int max_spill_passes = 2;
  // Nested loop: cost per (outer × inner) pair.
  double nlj_per_pair = 1e-5;
  // Parallel plans.
  int degree_of_parallelism = 8;
  double bitmap_build_per_row = 1e-4;
  double exchange_per_row = 4e-4;
  double output_per_row = 1e-4;
};

struct ExecutionResult {
  double latency_ms = 0.0;
  bool spilled = false;
  int spill_passes = 0;
};

class Executor {
 public:
  // `tables` must outlive the executor.
  explicit Executor(const storage::TpchTables* tables,
                    const CostModelConfig& config = {});

  // Latency of running `plan` given the query's actual cardinalities.
  ExecutionResult Execute(const ActualCardinalities& actual,
                          const PhysicalPlan& plan) const;

  // Convenience: computes actuals, plans from the given estimates, runs.
  ExecutionResult Run(const SpjQuery& query, const Optimizer& optimizer,
                      double estimated_lineitem_rows,
                      double estimated_orders_rows, Scenario scenario) const;

  // Latency with the plan an optimizer would pick given *true*
  // cardinalities — the perfect-CE reference of Table 9.
  ExecutionResult RunWithTrueCardinalities(const ActualCardinalities& actual,
                                           const Optimizer& optimizer,
                                           Scenario scenario) const;

  const CostModelConfig& config() const { return config_; }
  const storage::TpchTables& tables() const { return *tables_; }

 private:
  const storage::TpchTables* tables_;
  CostModelConfig config_;
};

}  // namespace warper::qo

#endif  // WARPER_QO_EXECUTOR_H_
