#include "qo/executor.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::qo {

Executor::Executor(const storage::TpchTables* tables,
                   const CostModelConfig& config)
    : tables_(tables), config_(config) {
  WARPER_CHECK(tables != nullptr);
}

ExecutionResult Executor::Execute(const ActualCardinalities& actual,
                                  const PhysicalPlan& plan) const {
  ExecutionResult result;
  double latency = 0.0;

  double table_rows = static_cast<double>(tables_->lineitem.NumRows() +
                                          tables_->orders.NumRows());
  double dop = plan.parallel
                   ? static_cast<double>(config_.degree_of_parallelism)
                   : 1.0;
  // Both inputs are always scanned (no indexes, §4.2).
  latency += table_rows * config_.scan_per_row / dop;

  double build_rows = static_cast<double>(
      plan.build_on_lineitem ? actual.lineitem_rows : actual.orders_rows);
  double probe_rows = static_cast<double>(
      plan.build_on_lineitem ? actual.orders_rows : actual.lineitem_rows);

  if (plan.join == JoinAlgorithm::kNestedLoop) {
    // Inner side is the build side; every (outer, inner) pair is touched.
    latency += probe_rows * build_rows * config_.nlj_per_pair / dop;
  } else {
    double join_cost = build_rows * config_.hash_build_per_row +
                       probe_rows * config_.hash_probe_per_row;

    if (plan.parallel) {
      // Bitmap built on one side, applied to the other before the exchange.
      double bitmap_rows = static_cast<double>(plan.bitmap_on_lineitem
                                                   ? actual.lineitem_rows
                                                   : actual.orders_rows);
      double other_full = static_cast<double>(plan.bitmap_on_lineitem
                                                  ? actual.orders_rows
                                                  : actual.lineitem_rows);
      double other_filtered = static_cast<double>(
          plan.bitmap_on_lineitem ? actual.orders_semijoin_rows
                                  : actual.lineitem_semijoin_rows);
      other_filtered = std::min(other_filtered, other_full);
      latency += bitmap_rows * config_.bitmap_build_per_row;
      // The bitmap side flows fully through the exchange; the other side
      // flows pre-filtered.
      latency += (bitmap_rows + other_filtered) * config_.exchange_per_row;
      join_cost = build_rows * config_.hash_build_per_row +
                  std::min(probe_rows, bitmap_rows + other_filtered) *
                      config_.hash_probe_per_row;
    }

    // Buffer spill: extra passes when the build side exceeds its grant.
    if (build_rows > static_cast<double>(plan.memory_grant_rows)) {
      int passes = static_cast<int>(std::ceil(
                       build_rows /
                       std::max(1.0,
                                static_cast<double>(plan.memory_grant_rows)))) -
                   1;
      passes = std::min(passes, config_.max_spill_passes);
      result.spilled = true;
      result.spill_passes = passes;
      latency += static_cast<double>(passes) *
                 (build_rows * (config_.spill_write_per_row +
                                config_.spill_read_per_row) +
                  probe_rows * config_.spill_probe_per_row);
    }
    latency += join_cost / dop;
  }

  latency += static_cast<double>(actual.join_rows) * config_.output_per_row /
             dop;
  result.latency_ms = latency;
  return result;
}

ExecutionResult Executor::Run(const SpjQuery& query, const Optimizer& optimizer,
                              double estimated_lineitem_rows,
                              double estimated_orders_rows,
                              Scenario scenario) const {
  ActualCardinalities actual = ComputeActuals(*tables_, query);
  PhysicalPlan plan = optimizer.Plan(estimated_lineitem_rows,
                                     estimated_orders_rows, scenario);
  return Execute(actual, plan);
}

ExecutionResult Executor::RunWithTrueCardinalities(
    const ActualCardinalities& actual, const Optimizer& optimizer,
    Scenario scenario) const {
  PhysicalPlan plan =
      optimizer.Plan(static_cast<double>(actual.lineitem_rows),
                     static_cast<double>(actual.orders_rows), scenario);
  return Execute(actual, plan);
}

}  // namespace warper::qo
