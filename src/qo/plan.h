// Physical plan choices for the select-project-join template of Figure 1 /
// §4.2. The three plan decisions the paper studies are exactly the ones a
// cardinality estimate can flip:
//   S1  memory grant for the hash-join build (wrong → buffer spill),
//   S2  nested-loop vs hash join,
//   S3  which join input to build the bitmap on (parallel plans).
#ifndef WARPER_QO_PLAN_H_
#define WARPER_QO_PLAN_H_

#include <cstdint>
#include <string>

namespace warper::qo {

enum class JoinAlgorithm { kHashJoin, kNestedLoop };

struct PhysicalPlan {
  JoinAlgorithm join = JoinAlgorithm::kHashJoin;
  // True when lineitem is the hash build (or nested-loop inner) side.
  bool build_on_lineitem = true;
  // Row budget granted to the build side; actual build rows above this spill.
  int64_t memory_grant_rows = 0;
  // Parallel plans only: the side the semi-join bitmap is built on.
  bool bitmap_on_lineitem = true;
  bool parallel = false;

  std::string ToString() const;
};

}  // namespace warper::qo

#endif  // WARPER_QO_PLAN_H_
