#include "qo/optimizer.h"

#include <algorithm>
#include <cmath>

namespace warper::qo {

PhysicalPlan Optimizer::Plan(double estimated_lineitem_rows,
                             double estimated_orders_rows,
                             Scenario scenario) const {
  PhysicalPlan plan;
  plan.parallel = scenario == Scenario::kBitmapSide;

  double est_l = std::max(0.0, estimated_lineitem_rows);
  double est_o = std::max(0.0, estimated_orders_rows);

  // S2: nested loop only when both inputs look small.
  if (scenario == Scenario::kJoinType &&
      est_l <= static_cast<double>(config_.nlj_row_threshold) &&
      est_o <= static_cast<double>(config_.nlj_row_threshold)) {
    plan.join = JoinAlgorithm::kNestedLoop;
  }

  // Hash build (and nested-loop inner) on the smaller estimated input.
  plan.build_on_lineitem = est_l <= est_o;

  // Memory grant sized from the build-side estimate.
  double build_estimate = plan.build_on_lineitem ? est_l : est_o;
  plan.memory_grant_rows = std::max(
      config_.min_grant_rows,
      static_cast<int64_t>(std::ceil(build_estimate * config_.grant_slack)));

  // S3: bitmap on the smaller estimated input; applied to the other one.
  plan.bitmap_on_lineitem = est_l <= est_o;
  return plan;
}

}  // namespace warper::qo
