// A simulated cost-based optimizer. Given *estimated* input cardinalities it
// makes the three plan decisions of §4.2 the same way a production QO would:
// join algorithm from the input sizes, hash-build side and memory grant from
// the smaller estimated input, bitmap side from the smaller estimated input
// in parallel plans. Injecting different cardinality estimates therefore
// flips plans exactly as the paper's memo-cost injection does.
#ifndef WARPER_QO_OPTIMIZER_H_
#define WARPER_QO_OPTIMIZER_H_

#include "qo/plan.h"
#include "qo/spj_query.h"

namespace warper::qo {

struct OptimizerConfig {
  // Both inputs at or below this estimated row count → nested-loop join
  // (mirrors "when both join inputs are estimated to have a small
  // cardinality, the QO picks nested loop joins", §4.2 S2).
  int64_t nlj_row_threshold = 400;
  // Memory grant = estimate × slack (under-estimates spill, §4.2 S1).
  double grant_slack = 1.2;
  int64_t min_grant_rows = 64;
};

class Optimizer {
 public:
  explicit Optimizer(const OptimizerConfig& config = {}) : config_(config) {}

  // Plans the SPJ query from estimated |σ(L)| and |σ(O)|.
  PhysicalPlan Plan(double estimated_lineitem_rows,
                    double estimated_orders_rows, Scenario scenario) const;

  const OptimizerConfig& config() const { return config_; }

 private:
  OptimizerConfig config_;
};

}  // namespace warper::qo

#endif  // WARPER_QO_OPTIMIZER_H_
