#include "qo/spj_query.h"

#include <unordered_map>

#include "util/status.h"

namespace warper::qo {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kBufferSpill:
      return "S1-BufferSpill";
    case Scenario::kJoinType:
      return "S2-JoinType";
    case Scenario::kBitmapSide:
      return "S3-BitmapSide";
  }
  return "?";
}

ActualCardinalities ComputeActuals(const storage::TpchTables& tables,
                                   const SpjQuery& query) {
  ActualCardinalities actual;

  // Filtered orders per key (orderkey is the PK, so 0/1 per key).
  std::unordered_map<int64_t, int64_t> orders_keys;
  const storage::Table& orders = tables.orders;
  for (size_t r = 0; r < orders.NumRows(); ++r) {
    if (!query.orders_pred.Matches(orders, r)) continue;
    ++actual.orders_rows;
    int64_t key =
        static_cast<int64_t>(orders.column(tables.orders_pk_col).Value(r));
    ++orders_keys[key];
  }

  // Filtered lineitems; aggregate per key for the semi-join counts.
  std::unordered_map<int64_t, int64_t> lineitem_keys;
  const storage::Table& lineitem = tables.lineitem;
  for (size_t r = 0; r < lineitem.NumRows(); ++r) {
    if (!query.lineitem_pred.Matches(lineitem, r)) continue;
    ++actual.lineitem_rows;
    int64_t key =
        static_cast<int64_t>(lineitem.column(tables.lineitem_fk_col).Value(r));
    ++lineitem_keys[key];
  }

  for (const auto& [key, lcount] : lineitem_keys) {
    auto it = orders_keys.find(key);
    if (it == orders_keys.end()) continue;
    actual.join_rows += lcount * it->second;
    actual.lineitem_semijoin_rows += lcount;
    actual.orders_semijoin_rows += it->second;
  }
  return actual;
}

}  // namespace warper::qo
