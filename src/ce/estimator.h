// The black-box CE model interface M (§3.2): "any function that emits a
// cardinality for a given query predicate, which can update() itself using
// additional labeled predicates". Warper never sees the model internals —
// only Train / Update / Estimate over the domain's canonical features.
#ifndef WARPER_CE_ESTIMATOR_H_
#define WARPER_CE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/status.h"

namespace warper::ce {

// How a model incorporates new labeled queries (§2): iteratively trained
// models (NNs) fine-tune for a few more epochs; tree/kernel models re-train
// from scratch.
enum class UpdateMode { kFineTune, kRetrain };

// log1p-transformed cardinality — the regression target used by all models.
double CardToTarget(int64_t cardinality);
// Inverse transform; clamps to [0, ∞).
double TargetToCard(double target);

// A labeled training example in a domain's canonical featurization.
struct LabeledExample {
  std::vector<double> features;
  int64_t cardinality = 0;
};

// Row-stacks examples into (x, y) for the model APIs.
void ExamplesToMatrix(const std::vector<LabeledExample>& examples,
                      nn::Matrix* x, std::vector<double>* y);

class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string Name() const = 0;
  virtual UpdateMode update_mode() const = 0;

  // Trains from scratch on (features, log-card target) pairs.
  virtual void Train(const nn::Matrix& x, const std::vector<double>& y) = 0;

  // Model-specific update with additional labeled queries: fine-tuning
  // models run a few more epochs over `x`; re-training models re-fit from
  // scratch on `x` (callers pass the full corpus for those — see
  // UpdateMode).
  virtual void Update(const nn::Matrix& x, const std::vector<double>& y) = 0;

  // Predicted log-card targets for a batch of feature rows.
  virtual std::vector<double> EstimateTargets(const nn::Matrix& x) const = 0;

  virtual bool trained() const = 0;

  // Deep copy of the model's full state, for immutable serving snapshots
  // (serve::ModelSnapshot). nullptr when the concrete model does not support
  // cloning; the serving layer turns that into FailedPrecondition.
  virtual std::unique_ptr<CardinalityEstimator> Clone() const {
    return nullptr;
  }

  // Restores this model's state from `other` (the §3.4 rollback path).
  // FailedPrecondition when `other` is a different concrete type or shape.
  virtual Status RestoreFrom(const CardinalityEstimator& other) {
    (void)other;
    return Status::FailedPrecondition(Name() +
                                      " does not support state restore");
  }

  // Convenience: predicted cardinality for one query.
  double EstimateCardinality(const std::vector<double>& features) const;
};

}  // namespace warper::ce

#endif  // WARPER_CE_ESTIMATOR_H_
