#include "ce/estimator.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::ce {

double CardToTarget(int64_t cardinality) {
  WARPER_CHECK(cardinality >= 0);
  return std::log1p(static_cast<double>(cardinality));
}

double TargetToCard(double target) {
  return std::max(0.0, std::expm1(target));
}

void ExamplesToMatrix(const std::vector<LabeledExample>& examples,
                      nn::Matrix* x, std::vector<double>* y) {
  WARPER_CHECK(!examples.empty());
  size_t d = examples[0].features.size();
  *x = nn::Matrix(examples.size(), d);
  y->resize(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    WARPER_CHECK(examples[i].features.size() == d);
    x->SetRow(i, examples[i].features);
    (*y)[i] = CardToTarget(examples[i].cardinality);
  }
}

double CardinalityEstimator::EstimateCardinality(
    const std::vector<double>& features) const {
  nn::Matrix x(1, features.size());
  x.SetRow(0, features);
  std::vector<double> targets = EstimateTargets(x);
  return TargetToCard(targets[0]);
}

}  // namespace warper::ce
