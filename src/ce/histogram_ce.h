// A classical, non-learned cardinality estimator: per-column equi-depth
// histograms combined under the attribute-value-independence (AVI)
// assumption — what query optimizers use before any learning. Included as
// the reference point the learned-CE literature (and this paper's §1)
// measures against: it needs no training workload and never drifts with the
// workload, but it cannot capture cross-column correlation, which is exactly
// where the learned models win.
#ifndef WARPER_CE_HISTOGRAM_CE_H_
#define WARPER_CE_HISTOGRAM_CE_H_

#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"

namespace warper::ce {

class HistogramEstimator {
 public:
  // Builds `buckets_per_column` equi-depth buckets per column from the
  // table's current contents. Rebuild after data drifts.
  HistogramEstimator(const storage::Table& table, size_t buckets_per_column = 64);

  // Estimated cardinality of a conjunctive range predicate under AVI:
  //   |T| · ∏_i sel_i(low_i, high_i).
  double Estimate(const storage::RangePredicate& pred) const;

  // Estimated selectivity of one column's range, in [0, 1].
  double ColumnSelectivity(size_t col, double low, double high) const;

  size_t buckets_per_column() const { return buckets_; }

 private:
  struct ColumnHistogram {
    // Ascending bucket boundaries; bucket b covers
    // [edges[b], edges[b+1]) (last bucket closed on the right).
    std::vector<double> edges;
    // Rows per bucket.
    std::vector<double> counts;
    double min = 0.0;
    double max = 0.0;
  };

  const storage::Table* table_;
  size_t buckets_;
  std::vector<ColumnHistogram> histograms_;
};

}  // namespace warper::ce

#endif  // WARPER_CE_HISTOGRAM_CE_H_
