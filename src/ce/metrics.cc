#include "ce/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"
#include "util/status.h"

namespace warper::ce {

double QError(double estimated, double actual, double theta) {
  WARPER_CHECK(theta > 0.0);
  double g = std::max(estimated, theta);
  double a = std::max(actual, theta);
  return std::max(g / a, a / g);
}

double Gmq(const std::vector<double>& estimated,
           const std::vector<double>& actual, double theta) {
  WARPER_CHECK(estimated.size() == actual.size());
  WARPER_CHECK(!estimated.empty());
  std::vector<double> qerrors(estimated.size());
  for (size_t i = 0; i < estimated.size(); ++i) {
    qerrors[i] = QError(estimated[i], actual[i], theta);
  }
  return util::GeometricMean(qerrors);
}

double ModelGmq(const CardinalityEstimator& model,
                const std::vector<LabeledExample>& examples, double theta) {
  WARPER_CHECK(!examples.empty());
  nn::Matrix x(examples.size(), examples[0].features.size());
  std::vector<double> actual(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    x.SetRow(i, examples[i].features);
    actual[i] = static_cast<double>(examples[i].cardinality);
  }
  std::vector<double> targets = model.EstimateTargets(x);
  std::vector<double> estimated(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    estimated[i] = TargetToCard(targets[i]);
  }
  return Gmq(estimated, actual, theta);
}

}  // namespace warper::ce
