// A simplified MSCN estimator (Kipf et al., CIDR'19) as used by the paper:
// per-predicate set elements run through a shared MLP and are average-pooled;
// a join-condition set module is added for join CE; a final MLP produces the
// cardinality estimate. "For single-table CE, we use a simplified version by
// removing the join condition and bitmap inputs" (§4.1) — configure with
// zero join bits for that case. MSCN updates by fine-tuning.
#ifndef WARPER_CE_MSCN_H_
#define WARPER_CE_MSCN_H_

#include <string>
#include <vector>

#include "ce/estimator.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace warper::ce {

// Layout of a domain's flat feature vector, so MSCN can slice it back into
// per-table predicate sets. Segment s covers features
// [offset, offset + 2·num_cols): lows then highs.
struct MscnSegment {
  size_t offset = 0;
  size_t num_cols = 0;
};

struct MscnConfig {
  std::vector<MscnSegment> segments;
  // Join-indicator bits live at features [join_offset, join_offset +
  // num_join_bits); zero bits = single-table variant.
  size_t join_offset = 0;
  size_t num_join_bits = 0;
  // Total width of the flat feature vector.
  size_t feature_dim = 0;

  size_t hidden_units = 64;
  int train_epochs = 60;
  int finetune_epochs = 8;
  size_t batch_size = 32;      // paper §4.1
  double learning_rate = 1e-3; // paper §4.1

  // Single-table layout: one segment covering the whole vector.
  static MscnConfig SingleTable(size_t num_cols);
  // Star-join layout matching StarJoinDomain's featurization.
  static MscnConfig StarJoin(size_t center_cols,
                             const std::vector<size_t>& fact_cols);
};

class Mscn : public CardinalityEstimator {
 public:
  Mscn(const MscnConfig& config, uint64_t seed);

  std::string Name() const override { return "MSCN"; }
  UpdateMode update_mode() const override { return UpdateMode::kFineTune; }
  void Train(const nn::Matrix& x, const std::vector<double>& y) override;
  void Update(const nn::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> EstimateTargets(const nn::Matrix& x) const override;
  bool trained() const override { return trained_; }
  std::unique_ptr<CardinalityEstimator> Clone() const override;
  Status RestoreFrom(const CardinalityEstimator& other) override;

  // Elements per query in the predicate set (fixed: one per table column).
  size_t PredicateSetSize() const;

 private:
  bool has_join_module() const { return config_.num_join_bits > 0; }
  size_t ElementDim() const;

  // Builds the stacked (batch·set_size × element_dim) predicate-element
  // matrix for a batch of flat feature rows.
  nn::Matrix BuildPredicateElements(const nn::Matrix& x) const;
  nn::Matrix BuildJoinElements(const nn::Matrix& x) const;

  // Shared inference path.
  std::vector<double> ForwardBatch(const nn::Matrix& x, bool cache) const;

  void Fit(const nn::Matrix& x, const std::vector<double>& y, int epochs);

  MscnConfig config_;
  util::Rng rng_;
  size_t max_segment_cols_ = 0;
  mutable nn::Mlp predicate_module_;
  mutable nn::Mlp join_module_;
  mutable nn::Mlp output_module_;
  bool trained_ = false;
};

}  // namespace warper::ce

#endif  // WARPER_CE_MSCN_H_
