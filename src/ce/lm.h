// The LM family of estimators (Dutt et al., "Selectivity Estimation for
// Range Predicates Using Lightweight Models", VLDB'19) as used in the paper:
// a lightweight regressor over the {low_1..low_d, high_1..high_d}
// featurization, in four variants (§4.1 / §4.1.2):
//   LM-mlp  multi-layer perceptron          — fine-tunes
//   LM-gbt  gradient boosted trees          — re-trains
//   LM-ply  5-degree polynomial kernel SVM  — re-trains (see kernel_ridge.h
//   LM-rbf  RBF kernel SVM                  —   for the substitution note)
#ifndef WARPER_CE_LM_H_
#define WARPER_CE_LM_H_

#include <memory>

#include "ce/estimator.h"
#include "ml/gbt.h"
#include "ml/kernel_ridge.h"
#include "nn/mlp.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace warper::ce {

struct LmMlpConfig {
  std::vector<size_t> hidden = {128, 64};
  int train_epochs = 60;
  int finetune_epochs = 8;
  size_t batch_size = 32;      // paper §4.1
  double learning_rate = 1e-3; // paper §4.1
};

class LmMlp : public CardinalityEstimator {
 public:
  LmMlp(size_t feature_dim, const LmMlpConfig& config, uint64_t seed);

  std::string Name() const override { return "LM-mlp"; }
  UpdateMode update_mode() const override { return UpdateMode::kFineTune; }
  void Train(const nn::Matrix& x, const std::vector<double>& y) override;
  void Update(const nn::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> EstimateTargets(const nn::Matrix& x) const override;
  bool trained() const override { return trained_; }
  std::unique_ptr<CardinalityEstimator> Clone() const override;
  Status RestoreFrom(const CardinalityEstimator& other) override;

  // The underlying network; serving snapshots and the whole-bundle
  // persistence (ce/model_io.h) reach the parameters through it.
  nn::Mlp& mlp() { return mlp_; }
  const nn::Mlp& mlp() const { return mlp_; }

 private:
  void Fit(const nn::Matrix& x, const std::vector<double>& y, int epochs);

  size_t feature_dim_;
  LmMlpConfig config_;
  util::Rng rng_;
  nn::Mlp mlp_;
  bool trained_ = false;
};

struct LmGbtConfig {
  ml::GbtConfig gbt;
};

class LmGbt : public CardinalityEstimator {
 public:
  LmGbt(size_t feature_dim, const LmGbtConfig& config, uint64_t seed);

  std::string Name() const override { return "LM-gbt"; }
  UpdateMode update_mode() const override { return UpdateMode::kRetrain; }
  void Train(const nn::Matrix& x, const std::vector<double>& y) override;
  void Update(const nn::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> EstimateTargets(const nn::Matrix& x) const override;
  bool trained() const override { return model_.fitted(); }
  std::unique_ptr<CardinalityEstimator> Clone() const override;
  Status RestoreFrom(const CardinalityEstimator& other) override;

 private:
  size_t feature_dim_;
  LmGbtConfig config_;
  util::Rng rng_;
  ml::GradientBoostedTrees model_;
};

// LM-ply (polynomial kernel) and LM-rbf (RBF kernel).
class LmKernel : public CardinalityEstimator {
 public:
  LmKernel(size_t feature_dim, const ml::KernelRidgeConfig& config,
           uint64_t seed);

  std::string Name() const override;
  UpdateMode update_mode() const override { return UpdateMode::kRetrain; }
  void Train(const nn::Matrix& x, const std::vector<double>& y) override;
  void Update(const nn::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> EstimateTargets(const nn::Matrix& x) const override;
  bool trained() const override { return model_.fitted(); }
  std::unique_ptr<CardinalityEstimator> Clone() const override;
  Status RestoreFrom(const CardinalityEstimator& other) override;

 private:
  size_t feature_dim_;
  ml::KernelRidgeConfig config_;
  util::Rng rng_;
  ml::KernelRidgeRegressor model_;
};

// Factory helpers matching the paper's model names.
std::unique_ptr<CardinalityEstimator> MakeLmPly(size_t feature_dim,
                                                uint64_t seed);
std::unique_ptr<CardinalityEstimator> MakeLmRbf(size_t feature_dim,
                                                uint64_t seed);

}  // namespace warper::ce

#endif  // WARPER_CE_LM_H_
