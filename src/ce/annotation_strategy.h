// Pluggable batch-annotation execution for query domains.
//
// Warper's controller only ever asks a domain to AnnotateBatch; the strategy
// installed on the domain decides *how* that batch executes. The serial
// strategy preserves the substrate's single-threaded scan; the parallel
// strategy routes through the shared util::ThreadPool (a single-table
// domain's scan goes through storage::ParallelAnnotator, a star-join domain
// fans out per query). Both produce bit-identical counts — annotation sums
// integers, so no reduction-order effects exist.
#ifndef WARPER_CE_ANNOTATION_STRATEGY_H_
#define WARPER_CE_ANNOTATION_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace warper::ce {

class QueryDomain;

class AnnotationStrategy {
 public:
  virtual ~AnnotationStrategy() = default;

  virtual std::string Name() const = 0;

  // Ground-truth cardinalities for the (already canonical) feature vectors.
  virtual std::vector<int64_t> AnnotateBatch(
      const QueryDomain& domain,
      const std::vector<std::vector<double>>& features) const = 0;
};

// The domain's native single-threaded batch path.
class SerialAnnotation : public AnnotationStrategy {
 public:
  std::string Name() const override { return "serial"; }
  std::vector<int64_t> AnnotateBatch(
      const QueryDomain& domain,
      const std::vector<std::vector<double>>& features) const override;

  // Shared default instance installed on every domain at construction.
  static std::shared_ptr<const SerialAnnotation> Instance();
};

// Routes batches through the domain's parallel path on the shared pool.
class ParallelAnnotation : public AnnotationStrategy {
 public:
  explicit ParallelAnnotation(util::ParallelConfig config = {})
      : config_(config) {}

  std::string Name() const override { return "parallel"; }
  std::vector<int64_t> AnnotateBatch(
      const QueryDomain& domain,
      const std::vector<std::vector<double>>& features) const override;

  const util::ParallelConfig& config() const { return config_; }

 private:
  util::ParallelConfig config_;
};

}  // namespace warper::ce

#endif  // WARPER_CE_ANNOTATION_STRATEGY_H_
