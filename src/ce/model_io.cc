#include "ce/model_io.h"

#include <cstdint>
#include <fstream>

namespace warper::ce {
namespace {

constexpr uint64_t kMagic = 0x57524D4C50563031ULL;  // "WRMLPV01"

}  // namespace

Status SaveMlp(const nn::Mlp& mlp, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");

  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  uint64_t num_layers = mlp.config().layer_sizes.size();
  out.write(reinterpret_cast<const char*>(&num_layers), sizeof(num_layers));
  for (size_t s : mlp.config().layer_sizes) {
    uint64_t size = s;
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  }
  std::vector<double> params = mlp.GetParameters();
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadMlp(nn::Mlp* mlp, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a Warper MLP file");
  }
  uint64_t num_layers = 0;
  in.read(reinterpret_cast<char*>(&num_layers), sizeof(num_layers));
  if (!in || num_layers != mlp->config().layer_sizes.size()) {
    return Status::FailedPrecondition("layer count mismatch loading '" + path +
                                      "'");
  }
  for (size_t expected : mlp->config().layer_sizes) {
    uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != expected) {
      return Status::FailedPrecondition("layer size mismatch loading '" +
                                        path + "'");
    }
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != mlp->ParameterCount()) {
    return Status::FailedPrecondition("parameter count mismatch loading '" +
                                      path + "'");
  }
  std::vector<double> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) return Status::Internal("truncated file '" + path + "'");
  mlp->SetParameters(params);
  return Status::OK();
}

MlpSnapshot::MlpSnapshot(const nn::Mlp& mlp)
    : layer_sizes_(mlp.config().layer_sizes),
      parameters_(mlp.GetParameters()) {}

void MlpSnapshot::RestoreTo(nn::Mlp* mlp) const {
  WARPER_CHECK_MSG(mlp->config().layer_sizes == layer_sizes_,
                   "snapshot shape mismatch");
  mlp->SetParameters(parameters_);
}

}  // namespace warper::ce
