#include "ce/model_io.h"

#include <cstdint>
#include <fstream>

namespace warper::ce {
namespace {

constexpr uint64_t kMagic = 0x57524D4C50563031ULL;  // "WRMLPV01"
constexpr uint64_t kBundleMagic = 0x5752424E44563031ULL;  // "WRBNDV01"

template <typename T>
void WriteScalar(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadScalar(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

// One named MLP section of a bundle: name, layer sizes, parameters.
void WriteSection(std::ofstream& out, const std::string& name,
                  const nn::Mlp& mlp) {
  WriteScalar<uint64_t>(out, name.size());
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  WriteScalar<uint64_t>(out, mlp.config().layer_sizes.size());
  for (size_t s : mlp.config().layer_sizes) WriteScalar<uint64_t>(out, s);
  std::vector<double> params = mlp.GetParameters();
  WriteScalar<uint64_t>(out, params.size());
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(double)));
}

// Reads one section's body (layer sizes + parameters; the name was already
// consumed by the caller). A null target skips over the parameters.
Status ReadSectionBody(std::ifstream& in, const std::string& path,
                       const std::string& name, nn::Mlp* target) {
  uint64_t num_layers = 0;
  if (!ReadScalar(in, &num_layers)) {
    return Status::Internal("truncated bundle '" + path + "'");
  }
  std::vector<size_t> layer_sizes(num_layers);
  for (uint64_t i = 0; i < num_layers; ++i) {
    uint64_t size = 0;
    if (!ReadScalar(in, &size)) {
      return Status::Internal("truncated bundle '" + path + "'");
    }
    layer_sizes[i] = size;
  }
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) {
    return Status::Internal("truncated bundle '" + path + "'");
  }
  if (target != nullptr) {
    if (layer_sizes != target->config().layer_sizes ||
        count != target->ParameterCount()) {
      return Status::FailedPrecondition("section '" + name + "' in '" + path +
                                        "' does not match the target shape");
    }
    std::vector<double> params(count);
    in.read(reinterpret_cast<char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    if (!in) return Status::Internal("truncated bundle '" + path + "'");
    target->SetParameters(params);
  } else {
    in.seekg(static_cast<std::streamoff>(count * sizeof(double)),
             std::ios::cur);
    if (!in) return Status::Internal("truncated bundle '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Status SaveMlp(const nn::Mlp& mlp, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");

  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  uint64_t num_layers = mlp.config().layer_sizes.size();
  out.write(reinterpret_cast<const char*>(&num_layers), sizeof(num_layers));
  for (size_t s : mlp.config().layer_sizes) {
    uint64_t size = s;
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  }
  std::vector<double> params = mlp.GetParameters();
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadMlp(nn::Mlp* mlp, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a Warper MLP file");
  }
  uint64_t num_layers = 0;
  in.read(reinterpret_cast<char*>(&num_layers), sizeof(num_layers));
  if (!in || num_layers != mlp->config().layer_sizes.size()) {
    return Status::FailedPrecondition("layer count mismatch loading '" + path +
                                      "'");
  }
  for (size_t expected : mlp->config().layer_sizes) {
    uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != expected) {
      return Status::FailedPrecondition("layer size mismatch loading '" +
                                        path + "'");
    }
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != mlp->ParameterCount()) {
    return Status::FailedPrecondition("parameter count mismatch loading '" +
                                      path + "'");
  }
  std::vector<double> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) return Status::Internal("truncated file '" + path + "'");
  mlp->SetParameters(params);
  return Status::OK();
}

Status SaveWarperModels(const nn::Mlp* m, const nn::Mlp& e, const nn::Mlp& g,
                        const nn::Mlp& d, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  WriteScalar(out, kBundleMagic);
  WriteScalar<uint64_t>(out, m != nullptr ? 4 : 3);
  if (m != nullptr) WriteSection(out, "M", *m);
  WriteSection(out, "E", e);
  WriteSection(out, "G", g);
  WriteSection(out, "D", d);
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadWarperModels(nn::Mlp* m, nn::Mlp* e, nn::Mlp* g, nn::Mlp* d,
                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  uint64_t magic = 0;
  if (!ReadScalar(in, &magic) || magic != kBundleMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a Warper model bundle");
  }
  uint64_t sections = 0;
  if (!ReadScalar(in, &sections) || sections > 16) {
    return Status::Internal("corrupt bundle '" + path + "'");
  }
  bool loaded_m = false, loaded_e = false, loaded_g = false, loaded_d = false;
  for (uint64_t i = 0; i < sections; ++i) {
    uint64_t name_size = 0;
    if (!ReadScalar(in, &name_size) || name_size > 64) {
      return Status::Internal("corrupt section header in '" + path + "'");
    }
    std::string name(name_size, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_size));
    if (!in) return Status::Internal("truncated bundle '" + path + "'");
    nn::Mlp* target = nullptr;
    if (name == "M") {
      target = m;
      loaded_m = target != nullptr;
    } else if (name == "E") {
      target = e;
      loaded_e = target != nullptr;
    } else if (name == "G") {
      target = g;
      loaded_g = target != nullptr;
    } else if (name == "D") {
      target = d;
      loaded_d = target != nullptr;
    }
    WARPER_RETURN_NOT_OK(ReadSectionBody(in, path, name, target));
  }
  if ((m != nullptr && !loaded_m) || (e != nullptr && !loaded_e) ||
      (g != nullptr && !loaded_g) || (d != nullptr && !loaded_d)) {
    return Status::FailedPrecondition(
        "bundle '" + path + "' is missing a requested model section");
  }
  return Status::OK();
}

MlpSnapshot::MlpSnapshot(const nn::Mlp& mlp)
    : layer_sizes_(mlp.config().layer_sizes),
      parameters_(mlp.GetParameters()) {}

Status MlpSnapshot::RestoreTo(nn::Mlp* mlp) const {
  if (mlp->config().layer_sizes != layer_sizes_) {
    return Status::FailedPrecondition(
        "MlpSnapshot::RestoreTo: target shape does not match the snapshot");
  }
  mlp->SetParameters(parameters_);
  return Status::OK();
}

}  // namespace warper::ce
