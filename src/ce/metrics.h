// CE accuracy metrics (§4.1): the q-error
//   q_θ(g, ĝ) = max( max(g,θ)/max(ĝ,θ), max(ĝ,θ)/max(g,θ) )
// with θ = 10 following the paper, and GMQ — the geometric mean of q-errors
// over a test workload.
#ifndef WARPER_CE_METRICS_H_
#define WARPER_CE_METRICS_H_

#include <cstdint>
#include <vector>

#include "ce/estimator.h"

namespace warper::ce {

inline constexpr double kQErrorTheta = 10.0;

// q-error between an estimated and an actual cardinality.
double QError(double estimated, double actual, double theta = kQErrorTheta);

// Geometric mean of q-errors; requires non-empty aligned vectors.
double Gmq(const std::vector<double>& estimated,
           const std::vector<double>& actual, double theta = kQErrorTheta);

// GMQ of a model over labeled examples (batched inference).
double ModelGmq(const CardinalityEstimator& model,
                const std::vector<LabeledExample>& examples,
                double theta = kQErrorTheta);

}  // namespace warper::ce

#endif  // WARPER_CE_METRICS_H_
