#include "ce/annotation_strategy.h"

#include "ce/query_domain.h"

namespace warper::ce {

std::vector<int64_t> SerialAnnotation::AnnotateBatch(
    const QueryDomain& domain,
    const std::vector<std::vector<double>>& features) const {
  return domain.AnnotateBatchSerial(features);
}

std::shared_ptr<const SerialAnnotation> SerialAnnotation::Instance() {
  static std::shared_ptr<const SerialAnnotation> instance =
      std::make_shared<const SerialAnnotation>();
  return instance;
}

std::vector<int64_t> ParallelAnnotation::AnnotateBatch(
    const QueryDomain& domain,
    const std::vector<std::vector<double>>& features) const {
  return domain.AnnotateBatchParallel(features, config_);
}

}  // namespace warper::ce
