// Query domains: the bridge that lets Warper stay agnostic to the CE model
// and to the query class (§3.2).
//
// A domain fixes (1) a canonical fixed-width featurization of queries — the
// "input size m to M" of the paper's Table 3, (2) a repair/decode step that
// turns an arbitrary generated feature vector back into a valid query (used
// on GAN outputs before annotation), and (3) ground-truth annotation.
//
// Two domains cover the paper's experiments: single-table range predicates
// (LM, single-table MSCN) and star-schema join queries (join MSCN).
#ifndef WARPER_CE_QUERY_DOMAIN_H_
#define WARPER_CE_QUERY_DOMAIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ce/annotation_strategy.h"
#include "storage/annotator.h"
#include "storage/join_annotator.h"
#include "storage/predicate.h"
#include "util/thread_pool.h"

namespace warper::ce {

class QueryDomain {
 public:
  QueryDomain() : annotation_strategy_(SerialAnnotation::Instance()) {}
  virtual ~QueryDomain() = default;

  virtual std::string Name() const = 0;
  // Width of the canonical feature vector.
  virtual size_t FeatureDim() const = 0;

  // Leading categorical features of the canonical layout (StarJoinDomain's
  // join bits); everything after them is {low, high} bound pairs. The
  // predicate-template fingerprinter (core::TemplateFingerprint) reads this
  // to hash structure (which bits/columns are constrained, and how) without
  // hashing constants.
  virtual size_t LeadingCategoricalFeatures() const { return 0; }

  // Repairs an arbitrary real vector into the features of a valid query
  // (clamp into domain, fix inverted bounds, snap join bits). Idempotent on
  // already-valid features.
  virtual std::vector<double> CanonicalizeFeatures(
      const std::vector<double>& features) const = 0;

  // Ground-truth cardinality of the query encoded by `features`.
  virtual int64_t Annotate(const std::vector<double>& features) const = 0;

  // Batch annotation, executed by the installed annotation strategy
  // (serial by default; see SetAnnotationStrategy).
  std::vector<int64_t> AnnotateBatch(
      const std::vector<std::vector<double>>& features) const;

  // Installs the execution strategy for AnnotateBatch. A null strategy
  // restores the serial default. The strategy is shared and const, so one
  // instance may serve many domains.
  void SetAnnotationStrategy(
      std::shared_ptr<const AnnotationStrategy> strategy);
  const AnnotationStrategy& annotation_strategy() const {
    return *annotation_strategy_;
  }

  // Strategy hooks: the substrate's native single-threaded batch path, and
  // its pool-parallel counterpart (defaults to the serial path for domains
  // without one). Both must return bit-identical counts.
  virtual std::vector<int64_t> AnnotateBatchSerial(
      const std::vector<std::vector<double>>& features) const = 0;
  virtual std::vector<int64_t> AnnotateBatchParallel(
      const std::vector<std::vector<double>>& features,
      const util::ParallelConfig& config) const;

  // Total rows in the (center) relation — the upper bound on cardinality.
  virtual int64_t MaxCardinality() const = 0;

 private:
  std::shared_ptr<const AnnotationStrategy> annotation_strategy_;
};

// Range predicates over one table. Features are the LM featurization
// {low_1..low_d, high_1..high_d}, normalized to [0, 1] per column.
class SingleTableDomain : public QueryDomain {
 public:
  // `annotator` must outlive this object.
  explicit SingleTableDomain(const storage::Annotator* annotator);

  std::string Name() const override;
  size_t FeatureDim() const override;
  std::vector<double> CanonicalizeFeatures(
      const std::vector<double>& features) const override;
  int64_t Annotate(const std::vector<double>& features) const override;
  std::vector<int64_t> AnnotateBatchSerial(
      const std::vector<std::vector<double>>& features) const override;
  // Routes through storage::ParallelAnnotator's sliced table scan.
  std::vector<int64_t> AnnotateBatchParallel(
      const std::vector<std::vector<double>>& features,
      const util::ParallelConfig& config) const override;
  int64_t MaxCardinality() const override;

  const storage::Table& table() const { return annotator_->table(); }

  std::vector<double> FeaturizePredicate(
      const storage::RangePredicate& pred) const;
  storage::RangePredicate DecodePredicate(
      const std::vector<double>& features) const;

 private:
  const storage::Annotator* annotator_;
};

// Star-schema join queries. Features are
//   [join_bit_0 .. join_bit_{F-1},
//    center low/high (2·d_c), fact_0 low/high (2·d_0), ..., fact_{F-1} ...].
class StarJoinDomain : public QueryDomain {
 public:
  // `annotator` must outlive this object.
  explicit StarJoinDomain(const storage::JoinAnnotator* annotator);

  std::string Name() const override;
  size_t FeatureDim() const override;
  size_t LeadingCategoricalFeatures() const override { return num_facts(); }
  std::vector<double> CanonicalizeFeatures(
      const std::vector<double>& features) const override;
  int64_t Annotate(const std::vector<double>& features) const override;
  std::vector<int64_t> AnnotateBatchSerial(
      const std::vector<std::vector<double>>& features) const override;
  // Fans the independent join queries out across the shared pool.
  std::vector<int64_t> AnnotateBatchParallel(
      const std::vector<std::vector<double>>& features,
      const util::ParallelConfig& config) const override;
  int64_t MaxCardinality() const override;

  std::vector<double> FeaturizeQuery(const storage::JoinQuery& query) const;
  storage::JoinQuery DecodeQuery(const std::vector<double>& features) const;

  size_t num_facts() const { return annotator_->schema().facts.size(); }

 private:
  const storage::JoinAnnotator* annotator_;
};

}  // namespace warper::ce

#endif  // WARPER_CE_QUERY_DOMAIN_H_
