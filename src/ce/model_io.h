// Persistence for the MLP-backed estimators (LM-mlp, MSCN parameters are
// reachable through their Mlp members; tree / kernel models re-train cheaply
// and are not serialized). A deployment adapting models periodically wants
// to snapshot M before an update and roll back if the update regresses —
// one of the §3.4 robustness fallbacks.
#ifndef WARPER_CE_MODEL_IO_H_
#define WARPER_CE_MODEL_IO_H_

#include <string>
#include <vector>

#include "nn/mlp.h"
#include "util/status.h"

namespace warper::ce {

// Writes the MLP's parameter vector (with a header of layer sizes) to a
// little-endian binary file.
Status SaveMlp(const nn::Mlp& mlp, const std::string& path);

// Restores parameters into `mlp`; fails when the stored layer sizes do not
// match the target's configuration.
Status LoadMlp(nn::Mlp* mlp, const std::string& path);

// Whole-bundle persistence: the CE model M (when MLP-backed — pass nullptr
// for models that re-train cheaply and need no snapshot) plus the learned
// Warper modules E, G, D in one versioned file, so a deployment restores a
// consistent adaptation state atomically instead of juggling four files.
Status SaveWarperModels(const nn::Mlp* m, const nn::Mlp& e, const nn::Mlp& g,
                        const nn::Mlp& d, const std::string& path);

// Counterpart loader; every non-null target must match the stored shape.
// Passing a null `m` skips the M section (and vice versa: loading a file
// saved without M into a non-null `m` is FailedPrecondition).
Status LoadWarperModels(nn::Mlp* m, nn::Mlp* e, nn::Mlp* g, nn::Mlp* d,
                        const std::string& path);

// In-memory snapshot/rollback helper: capture parameters before a risky
// update, restore them if the update regressed.
class MlpSnapshot {
 public:
  explicit MlpSnapshot(const nn::Mlp& mlp);

  // Restores the captured parameters; FailedPrecondition when `mlp` does
  // not have the captured shape (it never aborts — a shape mismatch during
  // a serving rollback must surface as an error, not kill the process).
  Status RestoreTo(nn::Mlp* mlp) const;

  const std::vector<size_t>& layer_sizes() const { return layer_sizes_; }

 private:
  std::vector<size_t> layer_sizes_;
  std::vector<double> parameters_;
};

}  // namespace warper::ce

#endif  // WARPER_CE_MODEL_IO_H_
