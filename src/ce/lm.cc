#include "ce/lm.h"

#include "util/status.h"

namespace warper::ce {

// --- LmMlp ---

LmMlp::LmMlp(size_t feature_dim, const LmMlpConfig& config, uint64_t seed)
    : feature_dim_(feature_dim), config_(config), rng_(seed) {
  nn::MlpConfig mlp_config;
  mlp_config.layer_sizes.push_back(feature_dim);
  for (size_t h : config.hidden) mlp_config.layer_sizes.push_back(h);
  mlp_config.layer_sizes.push_back(1);
  mlp_config.hidden_activation = nn::Activation::kRelu;
  mlp_ = nn::Mlp(mlp_config, &rng_);
}

void LmMlp::Fit(const nn::Matrix& x, const std::vector<double>& y, int epochs) {
  WARPER_CHECK(x.cols() == feature_dim_);
  nn::Matrix targets(y.size(), 1);
  for (size_t i = 0; i < y.size(); ++i) targets.At(i, 0) = y[i];
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = config_.batch_size;
  tc.optimizer.learning_rate = config_.learning_rate;
  nn::TrainRegressor(&mlp_, x, targets, tc, &rng_);
  trained_ = true;
}

void LmMlp::Train(const nn::Matrix& x, const std::vector<double>& y) {
  Fit(x, y, config_.train_epochs);
}

void LmMlp::Update(const nn::Matrix& x, const std::vector<double>& y) {
  // Fine-tune: a few more epochs on the updated workload (§2).
  Fit(x, y, config_.finetune_epochs);
}

std::vector<double> LmMlp::EstimateTargets(const nn::Matrix& x) const {
  WARPER_CHECK(trained_);
  nn::Matrix out = mlp_.Predict(x);
  std::vector<double> targets(out.rows());
  for (size_t i = 0; i < out.rows(); ++i) targets[i] = out.At(i, 0);
  return targets;
}

std::unique_ptr<CardinalityEstimator> LmMlp::Clone() const {
  return std::make_unique<LmMlp>(*this);
}

Status LmMlp::RestoreFrom(const CardinalityEstimator& other) {
  const auto* src = dynamic_cast<const LmMlp*>(&other);
  if (src == nullptr || src->feature_dim_ != feature_dim_ ||
      src->mlp_.config().layer_sizes != mlp_.config().layer_sizes) {
    return Status::FailedPrecondition(
        "LmMlp::RestoreFrom: source is not an LM-mlp of the same shape");
  }
  *this = *src;
  return Status::OK();
}

// --- LmGbt ---

LmGbt::LmGbt(size_t feature_dim, const LmGbtConfig& config, uint64_t seed)
    : feature_dim_(feature_dim), config_(config), rng_(seed) {}

void LmGbt::Train(const nn::Matrix& x, const std::vector<double>& y) {
  WARPER_CHECK(x.cols() == feature_dim_);
  model_.Fit(x, y, config_.gbt, &rng_);
}

void LmGbt::Update(const nn::Matrix& x, const std::vector<double>& y) {
  // Trees cannot be fine-tuned; re-train from scratch on the given corpus.
  Train(x, y);
}

std::vector<double> LmGbt::EstimateTargets(const nn::Matrix& x) const {
  WARPER_CHECK(model_.fitted());
  std::vector<double> targets(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) targets[i] = model_.Predict(x.Row(i));
  return targets;
}

// --- LmKernel ---

LmKernel::LmKernel(size_t feature_dim, const ml::KernelRidgeConfig& config,
                   uint64_t seed)
    : feature_dim_(feature_dim), config_(config), rng_(seed) {}

std::string LmKernel::Name() const {
  return config_.kernel == ml::KernelKind::kPolynomial ? "LM-ply" : "LM-rbf";
}

void LmKernel::Train(const nn::Matrix& x, const std::vector<double>& y) {
  WARPER_CHECK(x.cols() == feature_dim_);
  model_.Fit(x, y, config_, &rng_);
}

void LmKernel::Update(const nn::Matrix& x, const std::vector<double>& y) {
  Train(x, y);
}

std::vector<double> LmKernel::EstimateTargets(const nn::Matrix& x) const {
  WARPER_CHECK(model_.fitted());
  std::vector<double> targets(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) targets[i] = model_.Predict(x.Row(i));
  return targets;
}

std::unique_ptr<CardinalityEstimator> LmGbt::Clone() const {
  return std::make_unique<LmGbt>(*this);
}

Status LmGbt::RestoreFrom(const CardinalityEstimator& other) {
  const auto* src = dynamic_cast<const LmGbt*>(&other);
  if (src == nullptr || src->feature_dim_ != feature_dim_) {
    return Status::FailedPrecondition(
        "LmGbt::RestoreFrom: source is not an LM-gbt of the same shape");
  }
  *this = *src;
  return Status::OK();
}

std::unique_ptr<CardinalityEstimator> LmKernel::Clone() const {
  return std::make_unique<LmKernel>(*this);
}

Status LmKernel::RestoreFrom(const CardinalityEstimator& other) {
  const auto* src = dynamic_cast<const LmKernel*>(&other);
  if (src == nullptr || src->feature_dim_ != feature_dim_ ||
      src->Name() != Name()) {
    return Status::FailedPrecondition(
        "LmKernel::RestoreFrom: source is not the same kernel model");
  }
  *this = *src;
  return Status::OK();
}

std::unique_ptr<CardinalityEstimator> MakeLmPly(size_t feature_dim,
                                                uint64_t seed) {
  ml::KernelRidgeConfig config;
  config.kernel = ml::KernelKind::kPolynomial;
  config.degree = 5;
  config.gamma = 0.5;
  config.ridge = 1e-2;
  return std::make_unique<LmKernel>(feature_dim, config, seed);
}

std::unique_ptr<CardinalityEstimator> MakeLmRbf(size_t feature_dim,
                                                uint64_t seed) {
  ml::KernelRidgeConfig config;
  config.kernel = ml::KernelKind::kRbf;
  config.gamma = 2.0;
  config.ridge = 1e-3;
  return std::make_unique<LmKernel>(feature_dim, config, seed);
}

}  // namespace warper::ce
