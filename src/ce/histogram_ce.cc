#include "ce/histogram_ce.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::ce {

HistogramEstimator::HistogramEstimator(const storage::Table& table,
                                       size_t buckets_per_column)
    : table_(&table), buckets_(buckets_per_column) {
  WARPER_CHECK(buckets_per_column > 0);
  WARPER_CHECK(table.NumRows() > 0);
  size_t n = table.NumRows();

  histograms_.resize(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    std::vector<double> values = table.column(c).values();
    std::sort(values.begin(), values.end());

    ColumnHistogram& h = histograms_[c];
    h.min = values.front();
    h.max = values.back();
    size_t buckets = std::min(buckets_, n);
    h.edges.reserve(buckets + 1);
    h.counts.assign(buckets, 0.0);
    // Equi-depth edges at the value quantiles.
    h.edges.push_back(h.min);
    for (size_t b = 1; b < buckets; ++b) {
      size_t idx = b * n / buckets;
      h.edges.push_back(values[idx]);
    }
    h.edges.push_back(h.max);
    // Count rows per bucket (duplicated edges make buckets uneven; counts
    // reflect the actual data rather than assuming perfect equi-depth).
    for (double v : values) {
      size_t b = static_cast<size_t>(
          std::upper_bound(h.edges.begin() + 1, h.edges.end() - 1, v) -
          (h.edges.begin() + 1));
      h.counts[b] += 1.0;
    }
  }
}

double HistogramEstimator::ColumnSelectivity(size_t col, double low,
                                             double high) const {
  WARPER_CHECK(col < histograms_.size());
  const ColumnHistogram& h = histograms_[col];
  if (high < low || high < h.min || low > h.max) return 0.0;
  low = std::max(low, h.min);
  high = std::min(high, h.max);

  double rows = 0.0;
  double total = static_cast<double>(table_->NumRows());
  for (size_t b = 0; b < h.counts.size(); ++b) {
    double b_lo = h.edges[b];
    double b_hi = h.edges[b + 1];
    if (b_hi < low || b_lo > high) continue;
    double width = b_hi - b_lo;
    if (width <= 0.0) {
      // Degenerate bucket (repeated value): in or out as a whole.
      if (b_lo >= low && b_lo <= high) rows += h.counts[b];
      continue;
    }
    // Uniform-within-bucket interpolation.
    double overlap = std::min(high, b_hi) - std::max(low, b_lo);
    rows += h.counts[b] * std::clamp(overlap / width, 0.0, 1.0);
  }
  return std::clamp(rows / total, 0.0, 1.0);
}

double HistogramEstimator::Estimate(const storage::RangePredicate& pred) const {
  WARPER_CHECK(pred.NumColumns() == table_->NumColumns());
  double selectivity = 1.0;
  for (size_t c = 0; c < pred.NumColumns(); ++c) {
    if (!pred.Constrains(*table_, c)) continue;
    selectivity *= ColumnSelectivity(c, pred.low[c], pred.high[c]);
    if (selectivity == 0.0) break;
  }
  return selectivity * static_cast<double>(table_->NumRows());
}

}  // namespace warper::ce
