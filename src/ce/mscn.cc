#include "ce/mscn.h"

#include <algorithm>

#include "nn/losses.h"
#include "nn/trainer.h"
#include "util/status.h"

namespace warper::ce {

MscnConfig MscnConfig::SingleTable(size_t num_cols) {
  MscnConfig config;
  config.segments.push_back({0, num_cols});
  config.feature_dim = 2 * num_cols;
  return config;
}

MscnConfig MscnConfig::StarJoin(size_t center_cols,
                                const std::vector<size_t>& fact_cols) {
  MscnConfig config;
  config.join_offset = 0;
  config.num_join_bits = fact_cols.size();
  size_t offset = fact_cols.size();
  config.segments.push_back({offset, center_cols});
  offset += 2 * center_cols;
  for (size_t cols : fact_cols) {
    config.segments.push_back({offset, cols});
    offset += 2 * cols;
  }
  config.feature_dim = offset;
  return config;
}

Mscn::Mscn(const MscnConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  WARPER_CHECK(!config.segments.empty());
  WARPER_CHECK(config.feature_dim > 0);
  for (const auto& seg : config_.segments) {
    max_segment_cols_ = std::max(max_segment_cols_, seg.num_cols);
  }

  nn::MlpConfig pred_config;
  pred_config.layer_sizes = {ElementDim(), config.hidden_units,
                             config.hidden_units};
  pred_config.hidden_activation = nn::Activation::kRelu;
  pred_config.output_activation = nn::Activation::kRelu;
  predicate_module_ = nn::Mlp(pred_config, &rng_);

  size_t concat = config.hidden_units;
  if (has_join_module()) {
    nn::MlpConfig join_config;
    join_config.layer_sizes = {config.num_join_bits + 1, config.hidden_units / 2,
                               config.hidden_units / 2};
    join_config.hidden_activation = nn::Activation::kRelu;
    join_config.output_activation = nn::Activation::kRelu;
    join_module_ = nn::Mlp(join_config, &rng_);
    concat += config.hidden_units / 2;
  }

  nn::MlpConfig out_config;
  out_config.layer_sizes = {concat, config.hidden_units, 1};
  out_config.hidden_activation = nn::Activation::kRelu;
  output_module_ = nn::Mlp(out_config, &rng_);
}

size_t Mscn::PredicateSetSize() const {
  size_t n = 0;
  for (const auto& seg : config_.segments) n += seg.num_cols;
  return n;
}

size_t Mscn::ElementDim() const {
  // [segment one-hot | column one-hot | low | high]
  return config_.segments.size() + max_segment_cols_ + 2;
}

nn::Matrix Mscn::BuildPredicateElements(const nn::Matrix& x) const {
  size_t set_size = PredicateSetSize();
  nn::Matrix elems(x.rows() * set_size, ElementDim());
  for (size_t b = 0; b < x.rows(); ++b) {
    size_t e = 0;
    for (size_t s = 0; s < config_.segments.size(); ++s) {
      const MscnSegment& seg = config_.segments[s];
      for (size_t c = 0; c < seg.num_cols; ++c, ++e) {
        size_t row = b * set_size + e;
        elems.At(row, s) = 1.0;
        elems.At(row, config_.segments.size() + c) = 1.0;
        elems.At(row, ElementDim() - 2) = x.At(b, seg.offset + c);
        elems.At(row, ElementDim() - 1) = x.At(b, seg.offset + seg.num_cols + c);
      }
    }
  }
  return elems;
}

nn::Matrix Mscn::BuildJoinElements(const nn::Matrix& x) const {
  // One element per join condition: [join one-hot | participation bit].
  size_t f = config_.num_join_bits;
  nn::Matrix elems(x.rows() * f, f + 1);
  for (size_t b = 0; b < x.rows(); ++b) {
    for (size_t j = 0; j < f; ++j) {
      size_t row = b * f + j;
      elems.At(row, j) = 1.0;
      elems.At(row, f) = x.At(b, config_.join_offset + j);
    }
  }
  return elems;
}

namespace {

// Average-pools `set_size` consecutive rows of `elements` into one row per
// query.
nn::Matrix MeanPool(const nn::Matrix& elements, size_t set_size) {
  WARPER_CHECK(set_size > 0 && elements.rows() % set_size == 0);
  size_t batch = elements.rows() / set_size;
  nn::Matrix pooled(batch, elements.cols());
  double inv = 1.0 / static_cast<double>(set_size);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t e = 0; e < set_size; ++e) {
      for (size_t c = 0; c < elements.cols(); ++c) {
        pooled.At(b, c) += elements.At(b * set_size + e, c) * inv;
      }
    }
  }
  return pooled;
}

// Inverse of MeanPool for gradients: each element row receives grad/set_size.
nn::Matrix UnpoolGrad(const nn::Matrix& pooled_grad, size_t set_size) {
  nn::Matrix grad(pooled_grad.rows() * set_size, pooled_grad.cols());
  double inv = 1.0 / static_cast<double>(set_size);
  for (size_t b = 0; b < pooled_grad.rows(); ++b) {
    for (size_t e = 0; e < set_size; ++e) {
      for (size_t c = 0; c < pooled_grad.cols(); ++c) {
        grad.At(b * set_size + e, c) = pooled_grad.At(b, c) * inv;
      }
    }
  }
  return grad;
}

nn::Matrix ConcatCols(const nn::Matrix& a, const nn::Matrix& b) {
  WARPER_CHECK(a.rows() == b.rows());
  nn::Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out.At(r, c) = a.At(r, c);
    for (size_t c = 0; c < b.cols(); ++c) out.At(r, a.cols() + c) = b.At(r, c);
  }
  return out;
}

}  // namespace

std::vector<double> Mscn::ForwardBatch(const nn::Matrix& x, bool cache) const {
  WARPER_CHECK(x.cols() == config_.feature_dim);
  size_t set_size = PredicateSetSize();
  nn::Matrix pred_elems = BuildPredicateElements(x);
  nn::Matrix pred_out = cache ? predicate_module_.Forward(pred_elems)
                              : predicate_module_.Predict(pred_elems);
  nn::Matrix pooled = MeanPool(pred_out, set_size);

  nn::Matrix concat;
  if (has_join_module()) {
    nn::Matrix join_elems = BuildJoinElements(x);
    nn::Matrix join_out = cache ? join_module_.Forward(join_elems)
                                : join_module_.Predict(join_elems);
    nn::Matrix join_pooled = MeanPool(join_out, config_.num_join_bits);
    concat = ConcatCols(pooled, join_pooled);
  } else {
    concat = std::move(pooled);
  }

  nn::Matrix out = cache ? output_module_.Forward(concat)
                         : output_module_.Predict(concat);
  std::vector<double> targets(out.rows());
  for (size_t i = 0; i < out.rows(); ++i) targets[i] = out.At(i, 0);
  return targets;
}

void Mscn::Fit(const nn::Matrix& x, const std::vector<double>& y, int epochs) {
  WARPER_CHECK(x.rows() == y.size() && x.rows() > 0);
  nn::OptimizerConfig opt;
  opt.learning_rate = config_.learning_rate;

  std::vector<size_t> order(x.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t set_size = PredicateSetSize();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(&order);
    double lr = nn::ScheduledLearningRate(opt, epoch);
    for (size_t start = 0; start < order.size(); start += config_.batch_size) {
      size_t end = std::min(start + config_.batch_size, order.size());
      nn::Matrix xb(end - start, x.cols());
      nn::Matrix yb(end - start, 1);
      for (size_t i = start; i < end; ++i) {
        xb.CopyRowFrom(i - start, x, order[i]);
        yb.At(i - start, 0) = y[order[i]];
      }

      predicate_module_.ZeroGrad();
      if (has_join_module()) join_module_.ZeroGrad();
      output_module_.ZeroGrad();

      // Forward with caching on every module.
      std::vector<double> pred = ForwardBatch(xb, /*cache=*/true);
      nn::Matrix pred_mat(pred.size(), 1);
      for (size_t i = 0; i < pred.size(); ++i) pred_mat.At(i, 0) = pred[i];
      nn::Matrix grad;
      nn::MseLoss(pred_mat, yb, &grad);

      // Backward through the output module, then split the concat gradient.
      nn::Matrix concat_grad = output_module_.Backward(grad);
      size_t pred_width = config_.hidden_units;
      nn::Matrix pool_grad(concat_grad.rows(), pred_width);
      for (size_t r = 0; r < concat_grad.rows(); ++r) {
        for (size_t c = 0; c < pred_width; ++c) {
          pool_grad.At(r, c) = concat_grad.At(r, c);
        }
      }
      predicate_module_.Backward(UnpoolGrad(pool_grad, set_size));
      if (has_join_module()) {
        size_t join_width = config_.hidden_units / 2;
        nn::Matrix join_pool_grad(concat_grad.rows(), join_width);
        for (size_t r = 0; r < concat_grad.rows(); ++r) {
          for (size_t c = 0; c < join_width; ++c) {
            join_pool_grad.At(r, c) = concat_grad.At(r, pred_width + c);
          }
        }
        join_module_.Backward(UnpoolGrad(join_pool_grad, config_.num_join_bits));
      }

      predicate_module_.Step(opt, lr);
      if (has_join_module()) join_module_.Step(opt, lr);
      output_module_.Step(opt, lr);
    }
  }
  trained_ = true;
}

void Mscn::Train(const nn::Matrix& x, const std::vector<double>& y) {
  Fit(x, y, config_.train_epochs);
}

void Mscn::Update(const nn::Matrix& x, const std::vector<double>& y) {
  Fit(x, y, config_.finetune_epochs);
}

std::vector<double> Mscn::EstimateTargets(const nn::Matrix& x) const {
  WARPER_CHECK(trained_);
  return ForwardBatch(x, /*cache=*/false);
}

std::unique_ptr<CardinalityEstimator> Mscn::Clone() const {
  return std::make_unique<Mscn>(*this);
}

Status Mscn::RestoreFrom(const CardinalityEstimator& other) {
  const auto* src = dynamic_cast<const Mscn*>(&other);
  if (src == nullptr || src->config_.feature_dim != config_.feature_dim ||
      src->config_.segments.size() != config_.segments.size() ||
      src->config_.num_join_bits != config_.num_join_bits ||
      src->config_.hidden_units != config_.hidden_units) {
    return Status::FailedPrecondition(
        "Mscn::RestoreFrom: source is not an MSCN of the same shape");
  }
  *this = *src;
  return Status::OK();
}

}  // namespace warper::ce
