#include "ce/query_domain.h"

#include <algorithm>
#include <cmath>

#include "storage/parallel_annotator.h"
#include "util/status.h"

namespace warper::ce {

// --- QueryDomain ---

std::vector<int64_t> QueryDomain::AnnotateBatch(
    const std::vector<std::vector<double>>& features) const {
  return annotation_strategy_->AnnotateBatch(*this, features);
}

void QueryDomain::SetAnnotationStrategy(
    std::shared_ptr<const AnnotationStrategy> strategy) {
  annotation_strategy_ =
      strategy ? std::move(strategy) : SerialAnnotation::Instance();
}

std::vector<int64_t> QueryDomain::AnnotateBatchParallel(
    const std::vector<std::vector<double>>& features,
    const util::ParallelConfig& config) const {
  (void)config;  // domains without a parallel substrate stay serial
  return AnnotateBatchSerial(features);
}

// --- SingleTableDomain ---

SingleTableDomain::SingleTableDomain(const storage::Annotator* annotator)
    : annotator_(annotator) {
  WARPER_CHECK(annotator != nullptr);
}

std::string SingleTableDomain::Name() const {
  return "single_table:" + table().name();
}

size_t SingleTableDomain::FeatureDim() const {
  return 2 * table().NumColumns();
}

std::vector<double> SingleTableDomain::FeaturizePredicate(
    const storage::RangePredicate& pred) const {
  return pred.Featurize(table());
}

storage::RangePredicate SingleTableDomain::DecodePredicate(
    const std::vector<double>& features) const {
  return storage::RangePredicate::FromFeatures(table(), features);
}

std::vector<double> SingleTableDomain::CanonicalizeFeatures(
    const std::vector<double>& features) const {
  return FeaturizePredicate(DecodePredicate(features));
}

int64_t SingleTableDomain::Annotate(const std::vector<double>& features) const {
  return annotator_->Count(DecodePredicate(features));
}

std::vector<int64_t> SingleTableDomain::AnnotateBatchSerial(
    const std::vector<std::vector<double>>& features) const {
  std::vector<storage::RangePredicate> preds;
  preds.reserve(features.size());
  for (const auto& f : features) preds.push_back(DecodePredicate(f));
  return annotator_->BatchCount(preds);
}

std::vector<int64_t> SingleTableDomain::AnnotateBatchParallel(
    const std::vector<std::vector<double>>& features,
    const util::ParallelConfig& config) const {
  std::vector<storage::RangePredicate> preds;
  preds.reserve(features.size());
  for (const auto& f : features) preds.push_back(DecodePredicate(f));
  annotator_->RecordAnnotations(static_cast<int64_t>(preds.size()));
  return storage::ParallelAnnotator(&table(), config).BatchCount(preds);
}

int64_t SingleTableDomain::MaxCardinality() const {
  return static_cast<int64_t>(table().NumRows());
}

// --- StarJoinDomain ---

StarJoinDomain::StarJoinDomain(const storage::JoinAnnotator* annotator)
    : annotator_(annotator) {
  WARPER_CHECK(annotator != nullptr);
  WARPER_CHECK(annotator->schema().facts.size() <= 31);
}

std::string StarJoinDomain::Name() const {
  return "star_join:" + annotator_->schema().center->name();
}

size_t StarJoinDomain::FeatureDim() const {
  const storage::StarSchema& s = annotator_->schema();
  size_t dim = s.facts.size() + 2 * s.center->NumColumns();
  for (const auto& fact : s.facts) dim += 2 * fact.table->NumColumns();
  return dim;
}

std::vector<double> StarJoinDomain::FeaturizeQuery(
    const storage::JoinQuery& query) const {
  const storage::StarSchema& s = annotator_->schema();
  WARPER_CHECK(query.fact_preds.size() == s.facts.size());
  std::vector<double> out;
  out.reserve(FeatureDim());
  for (size_t f = 0; f < s.facts.size(); ++f) {
    out.push_back(((query.join_mask >> f) & 1) ? 1.0 : 0.0);
  }
  std::vector<double> center = query.center_pred.Featurize(*s.center);
  out.insert(out.end(), center.begin(), center.end());
  for (size_t f = 0; f < s.facts.size(); ++f) {
    std::vector<double> fact = query.fact_preds[f].Featurize(*s.facts[f].table);
    out.insert(out.end(), fact.begin(), fact.end());
  }
  WARPER_CHECK(out.size() == FeatureDim());
  return out;
}

storage::JoinQuery StarJoinDomain::DecodeQuery(
    const std::vector<double>& features) const {
  const storage::StarSchema& s = annotator_->schema();
  WARPER_CHECK(features.size() == FeatureDim());
  storage::JoinQuery q;
  size_t pos = 0;
  // Snap the join bits; force at least one join so the query stays a join
  // query (generated vectors can land below the 0.5 threshold everywhere).
  uint32_t mask = 0;
  double best_bit = -1.0;
  size_t best_f = 0;
  for (size_t f = 0; f < s.facts.size(); ++f) {
    double bit = features[pos++];
    if (bit >= 0.5) mask |= 1u << f;
    if (bit > best_bit) {
      best_bit = bit;
      best_f = f;
    }
  }
  if (mask == 0) mask = 1u << best_f;
  q.join_mask = mask;

  auto take = [&](const storage::Table& table) {
    size_t d = table.NumColumns();
    std::vector<double> slice(features.begin() + static_cast<long>(pos),
                              features.begin() + static_cast<long>(pos + 2 * d));
    pos += 2 * d;
    return storage::RangePredicate::FromFeatures(table, slice);
  };
  q.center_pred = take(*s.center);
  for (const auto& fact : s.facts) q.fact_preds.push_back(take(*fact.table));
  return q;
}

std::vector<double> StarJoinDomain::CanonicalizeFeatures(
    const std::vector<double>& features) const {
  return FeaturizeQuery(DecodeQuery(features));
}

int64_t StarJoinDomain::Annotate(const std::vector<double>& features) const {
  return annotator_->Count(DecodeQuery(features));
}

std::vector<int64_t> StarJoinDomain::AnnotateBatchSerial(
    const std::vector<std::vector<double>>& features) const {
  std::vector<storage::JoinQuery> queries;
  queries.reserve(features.size());
  for (const auto& f : features) queries.push_back(DecodeQuery(f));
  return annotator_->BatchCount(queries);
}

std::vector<int64_t> StarJoinDomain::AnnotateBatchParallel(
    const std::vector<std::vector<double>>& features,
    const util::ParallelConfig& config) const {
  std::vector<storage::JoinQuery> queries;
  queries.reserve(features.size());
  for (const auto& f : features) queries.push_back(DecodeQuery(f));
  return annotator_->BatchCountParallel(queries, config);
}

int64_t StarJoinDomain::MaxCardinality() const {
  // Loose upper bound: center rows × product of max per-key fact fan-outs is
  // expensive to maintain; the estimators only need a positive cap, so use
  // the full-join cardinality bound of center × total fact rows.
  const storage::StarSchema& s = annotator_->schema();
  int64_t bound = static_cast<int64_t>(s.center->NumRows());
  for (const auto& fact : s.facts) {
    bound = std::max<int64_t>(bound, static_cast<int64_t>(fact.table->NumRows()));
  }
  return bound * bound;
}

}  // namespace warper::ce
