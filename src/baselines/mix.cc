#include "baselines/mix.h"

#include <algorithm>

namespace warper::baselines {

MixAdapter::MixAdapter(const AdapterContext& context)
    : Adapter(context), rng_(context.seed) {}

StepStats MixAdapter::Step(const std::vector<ce::LabeledExample>& arrived,
                           const StepInfo& info) {
  StepStats stats;
  std::vector<ce::LabeledExample> batch = arrived;
  rng_.Shuffle(&batch);
  stats.annotated = Annotate(&batch, info.annotation_budget);
  for (const auto& q : batch) {
    if (q.cardinality >= 0) new_labeled_.push_back(q);
  }
  if (new_labeled_.empty()) return stats;

  // Fine-tune on new ∪ (a matched-size sample of) train so the update sees
  // both distributions; re-training models get the full union via base.
  std::vector<ce::LabeledExample> mixture = new_labeled_;
  size_t take = std::min(context_.train_corpus->size(), new_labeled_.size());
  std::vector<size_t> idx =
      rng_.SampleWithoutReplacement(context_.train_corpus->size(), take);
  for (size_t i : idx) mixture.push_back((*context_.train_corpus)[i]);

  UpdateModel(mixture, *context_.train_corpus);
  stats.model_updated = true;
  return stats;
}

}  // namespace warper::baselines
