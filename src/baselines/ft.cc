#include "baselines/ft.h"

namespace warper::baselines {

FtAdapter::FtAdapter(const AdapterContext& context)
    : Adapter(context), rng_(context.seed) {}

std::string FtAdapter::Name() const {
  return context_.model->update_mode() == ce::UpdateMode::kFineTune ? "FT"
                                                                    : "RT";
}

StepStats FtAdapter::Step(const std::vector<ce::LabeledExample>& arrived,
                          const StepInfo& info) {
  StepStats stats;
  std::vector<ce::LabeledExample> batch = arrived;
  // Uniform-random annotation within budget (the paper's FT counterpart for
  // picker-based methods in c1/c3).
  rng_.Shuffle(&batch);
  stats.annotated = Annotate(&batch, info.annotation_budget);
  for (const auto& q : batch) {
    if (q.cardinality >= 0) new_labeled_.push_back(q);
  }
  if (new_labeled_.empty()) return stats;
  UpdateModel(new_labeled_, *context_.train_corpus);
  stats.model_updated = true;
  return stats;
}

}  // namespace warper::baselines
