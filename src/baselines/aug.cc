#include "baselines/aug.h"

#include "util/status.h"

namespace warper::baselines {

std::vector<ce::LabeledExample> SynthesizeNoisy(
    const ce::QueryDomain& domain, const std::vector<ce::LabeledExample>& seeds,
    size_t count, double noise_stddev, util::Rng* rng) {
  WARPER_CHECK(!seeds.empty());
  std::vector<ce::LabeledExample> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const ce::LabeledExample& seed = seeds[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
    std::vector<double> features = seed.features;
    for (double& f : features) f += rng->Normal(0.0, noise_stddev);
    out.push_back({domain.CanonicalizeFeatures(features), -1});
  }
  return out;
}

AugAdapter::AugAdapter(const AdapterContext& context, double gen_fraction)
    : Adapter(context), gen_fraction_(gen_fraction), rng_(context.seed) {}

StepStats AugAdapter::Step(const std::vector<ce::LabeledExample>& arrived,
                           const StepInfo& info) {
  StepStats stats;
  size_t budget = info.annotation_budget;

  std::vector<ce::LabeledExample> batch = arrived;
  rng_.Shuffle(&batch);
  size_t used = Annotate(&batch, budget);
  stats.annotated += used;
  budget -= used;

  std::vector<ce::LabeledExample> labeled_batch;
  for (const auto& q : batch) {
    if (q.cardinality >= 0) labeled_batch.push_back(q);
  }

  // Synthesize noisy copies of this step's arrivals and annotate them.
  size_t n_g = static_cast<size_t>(gen_fraction_ *
                                   static_cast<double>(arrived.size()));
  if (n_g >= 1 && !arrived.empty()) {
    std::vector<ce::LabeledExample> synthetic =
        SynthesizeNoisy(*context_.domain, arrived, n_g, /*noise_stddev=*/0.1,
                        &rng_);
    stats.synthesized = synthetic.size();
    used = Annotate(&synthetic, budget);
    stats.annotated += used;
    for (const auto& q : synthetic) {
      if (q.cardinality >= 0) labeled_batch.push_back(q);
    }
  }

  new_labeled_.insert(new_labeled_.end(), labeled_batch.begin(),
                      labeled_batch.end());
  if (new_labeled_.empty()) return stats;
  // Match Warper's update volume (§4.1): an n_p-sized uniform sample with
  // replacement over the accumulated new + synthetic labeled queries.
  std::vector<ce::LabeledExample> sample(kUpdateSampleSize);
  for (size_t i = 0; i < kUpdateSampleSize; ++i) {
    sample[i] = new_labeled_[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(new_labeled_.size()) - 1))];
  }
  UpdateModel(sample, *context_.train_corpus);
  stats.model_updated = true;
  return stats;
}

}  // namespace warper::baselines
