#include "baselines/hem.h"

#include <cmath>

#include "baselines/aug.h"
#include "ce/metrics.h"
#include "util/status.h"

namespace warper::baselines {

HemAdapter::HemAdapter(const AdapterContext& context, double gen_fraction)
    : Adapter(context), gen_fraction_(gen_fraction), rng_(context.seed) {}

StepStats HemAdapter::Step(const std::vector<ce::LabeledExample>& arrived,
                           const StepInfo& info) {
  StepStats stats;
  size_t budget = info.annotation_budget;

  std::vector<ce::LabeledExample> batch = arrived;
  rng_.Shuffle(&batch);
  size_t used = Annotate(&batch, budget);
  stats.annotated += used;
  budget -= used;

  std::vector<ce::LabeledExample> labeled_batch;
  for (const auto& q : batch) {
    if (q.cardinality >= 0) labeled_batch.push_back(q);
  }

  if (!labeled_batch.empty()) {
    // Weight by the model's q-error and resample the hard examples.
    std::vector<double> weights(labeled_batch.size());
    for (size_t i = 0; i < labeled_batch.size(); ++i) {
      double est =
          context_.model->EstimateCardinality(labeled_batch[i].features);
      weights[i] = std::log(
          ce::QError(est, static_cast<double>(labeled_batch[i].cardinality)));
    }
    std::vector<ce::LabeledExample> mined;
    for (size_t i = 0; i < labeled_batch.size(); ++i) {
      mined.push_back(labeled_batch[rng_.Categorical(weights)]);
    }
    labeled_batch = std::move(mined);

    // AUG-style noisy synthetic copies of the mined hard examples.
    size_t n_g = static_cast<size_t>(gen_fraction_ *
                                     static_cast<double>(arrived.size()));
    if (n_g >= 1) {
      std::vector<ce::LabeledExample> synthetic = SynthesizeNoisy(
          *context_.domain, labeled_batch, n_g, /*noise_stddev=*/0.1, &rng_);
      stats.synthesized = synthetic.size();
      used = Annotate(&synthetic, budget);
      stats.annotated += used;
      for (const auto& q : synthetic) {
        if (q.cardinality >= 0) labeled_batch.push_back(q);
      }
    }
  }

  new_labeled_.insert(new_labeled_.end(), labeled_batch.begin(),
                      labeled_batch.end());
  if (new_labeled_.empty()) return stats;
  // n_p-sized uniform resample over the mined + synthetic labeled queries
  // (the error-weighting already happened at mining time).
  std::vector<ce::LabeledExample> sample(kUpdateSampleSize);
  for (size_t i = 0; i < kUpdateSampleSize; ++i) {
    sample[i] = new_labeled_[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(new_labeled_.size()) - 1))];
  }
  UpdateModel(sample, *context_.train_corpus);
  stats.model_updated = true;
  return stats;
}

}  // namespace warper::baselines
