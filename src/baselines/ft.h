// FT: fine-tuning (or re-training, when the model cannot fine-tune) on the
// newly arrived queries — the reference baseline every speedup is measured
// against (§4.1). When labels are withheld (c1/c3 scenarios), FT annotates a
// uniformly random subset within the step's budget.
#ifndef WARPER_BASELINES_FT_H_
#define WARPER_BASELINES_FT_H_

#include "baselines/adapter.h"
#include "util/rng.h"

namespace warper::baselines {

class FtAdapter : public Adapter {
 public:
  explicit FtAdapter(const AdapterContext& context);

  std::string Name() const override;
  StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                 const StepInfo& info) override;

 private:
  util::Rng rng_;
  // Cumulative labeled queries from the new workload this episode.
  std::vector<ce::LabeledExample> new_labeled_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_FT_H_
