// AUG: heuristic data augmentation (§4.1) — "adds a Gaussian noise (with a
// standard deviation of 10% of each column's value range) to the value in
// each clause", then computes ground truth for the synthetic queries.
#ifndef WARPER_BASELINES_AUG_H_
#define WARPER_BASELINES_AUG_H_

#include "baselines/adapter.h"
#include "util/rng.h"

namespace warper::baselines {

// Synthesizes `count` noisy copies of (uniformly sampled) `seeds` by adding
// N(0, noise_stddev²) in the normalized feature space (0.1 ≙ 10% of each
// column's value range) and re-canonicalizing through the domain. Shared by
// AUG, HEM, and the G→AUG ablation.
std::vector<ce::LabeledExample> SynthesizeNoisy(
    const ce::QueryDomain& domain, const std::vector<ce::LabeledExample>& seeds,
    size_t count, double noise_stddev, util::Rng* rng);

class AugAdapter : public Adapter {
 public:
  // n_g = gen_fraction · n_t synthetic queries per step, matching Warper's
  // generation volume (§4.1 "Warper, AUG and HEM synthesize n_g = 10% n_t").
  AugAdapter(const AdapterContext& context, double gen_fraction = 0.1);

  std::string Name() const override { return "AUG"; }
  StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                 const StepInfo& info) override;

 private:
  double gen_fraction_;
  util::Rng rng_;
  std::vector<ce::LabeledExample> new_labeled_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_AUG_H_
