#include "baselines/warper_adapter.h"

#include "util/status.h"

namespace warper::baselines {

WarperAdapter::WarperAdapter(const AdapterContext& context,
                             const core::WarperConfig& config)
    : Adapter(context) {
  core::WarperConfig seeded = config;
  seeded.seed = context.seed;
  warper_ = std::make_unique<core::Warper>(context.domain, context.model,
                                           seeded);
  // The harness wires a trained model and a validated corpus; a failure
  // here is a bug in the experiment setup, not recoverable input.
  Status st = warper_->Initialize(*context.train_corpus);
  WARPER_CHECK_MSG(st.ok(), st.ToString());
}

std::string WarperAdapter::Name() const {
  const core::WarperConfig& c = warper_->config();
  if (c.picker_variant == core::PickerVariant::kRandom) {
    return "Warper(P->rnd)";
  }
  if (c.picker_variant == core::PickerVariant::kEntropy) {
    return "Warper(P->entropy)";
  }
  if (c.generator_variant == core::GeneratorVariant::kNoiseAug) {
    return "Warper(G->AUG)";
  }
  return "Warper";
}

StepStats WarperAdapter::Step(const std::vector<ce::LabeledExample>& arrived,
                              const StepInfo& info) {
  core::Warper::Invocation invocation;
  invocation.new_queries = arrived;
  invocation.data_changed_fraction = info.data_changed_fraction;
  invocation.canary_shift = info.canary_shift;
  invocation.annotation_budget = info.annotation_budget;
  Result<core::Warper::InvocationResult> result = warper_->Invoke(invocation);
  WARPER_CHECK_MSG(result.ok(), result.status().ToString());
  last_result_ = result.MoveValueOrDie();

  StepStats stats;
  stats.annotated = last_result_.annotated;
  stats.synthesized = last_result_.generated;
  stats.model_updated = last_result_.model_updated;
  return stats;
}

}  // namespace warper::baselines
