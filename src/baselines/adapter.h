// The adaptation-method interface shared by Warper and every baseline of
// §4.1: FT (fine-tuning / re-training), MIX (train+new mixture), AUG
// (Gaussian-noise augmentation), HEM (hard example mining). The experiment
// harness drives all methods through Step() so their adaptation curves are
// directly comparable.
#ifndef WARPER_BASELINES_ADAPTER_H_
#define WARPER_BASELINES_ADAPTER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ce/estimator.h"
#include "ce/query_domain.h"

namespace warper::baselines {

// Everything an adapter needs about its environment. The referenced objects
// must outlive the adapter.
struct AdapterContext {
  const ce::QueryDomain* domain = nullptr;
  ce::CardinalityEstimator* model = nullptr;
  // I_train with its (possibly stale, under data drift) original labels.
  const std::vector<ce::LabeledExample>* train_corpus = nullptr;
  uint64_t seed = 0;
};

// Per-step inputs beyond the arrived queries.
struct StepInfo {
  // Annotator calls the method may spend this step (the slow-labeling
  // constraint of c1/c3 scenarios).
  size_t annotation_budget = std::numeric_limits<size_t>::max();
  // Data-drift telemetry (only Warper reacts to it; baselines re-annotate
  // whatever they were going to use anyway).
  double data_changed_fraction = 0.0;
  double canary_shift = 0.0;
};

struct StepStats {
  size_t annotated = 0;
  size_t synthesized = 0;
  bool model_updated = false;
};

// Update-sample volume for augmentation methods, matching the paper's
// n_p = 1K picker volume (§4.1: "AUG and HEM randomly sample the same number
// of queries from different distributions to match Warper").
inline constexpr size_t kUpdateSampleSize = 1000;

class Adapter {
 public:
  explicit Adapter(const AdapterContext& context);
  virtual ~Adapter() = default;

  virtual std::string Name() const = 0;

  // One adaptation step: `arrived` are the queries that appeared since the
  // last step (cardinality = -1 when the scenario withholds labels).
  virtual StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                         const StepInfo& info) = 0;

 protected:
  // Annotates (at most `budget`) examples in place; returns how many.
  size_t Annotate(std::vector<ce::LabeledExample>* examples, size_t budget);

  // Runs the model's own update rule: fine-tuning models update on
  // `incremental`; re-training models re-fit on base ∪ incremental where
  // `base` is the corpus a re-train should start from.
  void UpdateModel(const std::vector<ce::LabeledExample>& incremental,
                   const std::vector<ce::LabeledExample>& base);

  AdapterContext context_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_ADAPTER_H_
