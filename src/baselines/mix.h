// MIX: updates the model on a mixture of the original training workload and
// the newly arrived queries (§4.1). No synthetic queries, no extra labels —
// it "can be helpful based on the similarity between the training and the
// testing distributions".
#ifndef WARPER_BASELINES_MIX_H_
#define WARPER_BASELINES_MIX_H_

#include "baselines/adapter.h"
#include "util/rng.h"

namespace warper::baselines {

class MixAdapter : public Adapter {
 public:
  explicit MixAdapter(const AdapterContext& context);

  std::string Name() const override { return "MIX"; }
  StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                 const StepInfo& info) override;

 private:
  util::Rng rng_;
  std::vector<ce::LabeledExample> new_labeled_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_MIX_H_
