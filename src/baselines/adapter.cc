#include "baselines/adapter.h"

#include <algorithm>

#include "util/status.h"

namespace warper::baselines {

Adapter::Adapter(const AdapterContext& context) : context_(context) {
  WARPER_CHECK(context.domain != nullptr);
  WARPER_CHECK(context.model != nullptr);
  WARPER_CHECK(context.train_corpus != nullptr);
}

size_t Adapter::Annotate(std::vector<ce::LabeledExample>* examples,
                         size_t budget) {
  std::vector<size_t> missing;
  for (size_t i = 0; i < examples->size(); ++i) {
    if ((*examples)[i].cardinality < 0) missing.push_back(i);
  }
  size_t n = std::min(missing.size(), budget);
  if (n == 0) return 0;
  std::vector<std::vector<double>> features;
  features.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    features.push_back((*examples)[missing[i]].features);
  }
  std::vector<int64_t> counts = context_.domain->AnnotateBatch(features);
  for (size_t i = 0; i < n; ++i) {
    (*examples)[missing[i]].cardinality = counts[i];
  }
  return n;
}

void Adapter::UpdateModel(const std::vector<ce::LabeledExample>& incremental,
                          const std::vector<ce::LabeledExample>& base) {
  std::vector<ce::LabeledExample> corpus;
  if (context_.model->update_mode() == ce::UpdateMode::kFineTune) {
    corpus = incremental;
  } else {
    corpus = base;
    corpus.insert(corpus.end(), incremental.begin(), incremental.end());
  }
  // Drop anything still unlabeled.
  corpus.erase(std::remove_if(corpus.begin(), corpus.end(),
                              [](const ce::LabeledExample& e) {
                                return e.cardinality < 0;
                              }),
               corpus.end());
  if (corpus.empty()) return;
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(corpus, &x, &y);
  context_.model->Update(x, y);
}

}  // namespace warper::baselines
