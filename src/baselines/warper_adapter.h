// Wraps the core::Warper controller in the Adapter interface so the
// experiment harness drives Warper and the baselines identically.
#ifndef WARPER_BASELINES_WARPER_ADAPTER_H_
#define WARPER_BASELINES_WARPER_ADAPTER_H_

#include <memory>

#include "baselines/adapter.h"
#include "core/warper.h"

namespace warper::baselines {

class WarperAdapter : public Adapter {
 public:
  // Builds and initializes a Warper instance around the context's model and
  // domain (the model must already be trained).
  WarperAdapter(const AdapterContext& context,
                const core::WarperConfig& config);

  std::string Name() const override;
  StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                 const StepInfo& info) override;

  core::Warper& warper() { return *warper_; }
  const core::Warper::InvocationResult& last_result() const {
    return last_result_;
  }

 private:
  std::unique_ptr<core::Warper> warper_;
  core::Warper::InvocationResult last_result_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_WARPER_ADAPTER_H_
