// HEM: hard example mining (§4.1) — evaluates the model on the newly
// arrived queries and updates it "using the queries weighted by evaluation
// error", with the AUG random noise applied "to robustly build HEM".
#ifndef WARPER_BASELINES_HEM_H_
#define WARPER_BASELINES_HEM_H_

#include "baselines/adapter.h"
#include "util/rng.h"

namespace warper::baselines {

class HemAdapter : public Adapter {
 public:
  HemAdapter(const AdapterContext& context, double gen_fraction = 0.1);

  std::string Name() const override { return "HEM"; }
  StepStats Step(const std::vector<ce::LabeledExample>& arrived,
                 const StepInfo& info) override;

 private:
  double gen_fraction_;
  util::Rng rng_;
  std::vector<ce::LabeledExample> new_labeled_;
};

}  // namespace warper::baselines

#endif  // WARPER_BASELINES_HEM_H_
