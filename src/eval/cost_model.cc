#include "eval/cost_model.h"

#include "util/status.h"
#include "util/timer.h"

namespace warper::eval {

double AverageCpuUtilization(const CostInputs& inputs) {
  WARPER_CHECK(inputs.period_seconds > 0.0);
  double annotations = inputs.rate_qps * inputs.period_seconds *
                       inputs.annotations_per_arrival;
  double total_seconds =
      annotations * inputs.annotation_seconds_per_query +
      inputs.constant_seconds;
  return total_seconds / inputs.period_seconds;
}

double MeasureAnnotationSecondsPerQuery(
    const ce::QueryDomain& domain,
    const std::vector<std::vector<double>>& features) {
  WARPER_CHECK(!features.empty());
  util::WallTimer timer;
  domain.AnnotateBatch(features);
  return timer.Seconds() / static_cast<double>(features.size());
}

}  // namespace warper::eval
