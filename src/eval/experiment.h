// The drift-experiment harness behind every table and figure of §4.1/§4.3:
// build a dataset, train a CE model on the pre-drift workload, replay a
// drift::DriftSchedule (the paper's c1/c2/c3 are presets; intensity, cadence
// and the correlated/oscillating families generalize them), stream newly
// arriving queries to each adaptation method, and record GMQ-vs-queries
// adaptation curves on a held-out post-drift test set.
#ifndef WARPER_EVAL_EXPERIMENT_H_
#define WARPER_EVAL_EXPERIMENT_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/adapter.h"
#include "ce/estimator.h"
#include "ce/query_domain.h"
#include "core/config.h"
#include "drift/spec.h"
#include "eval/speedup.h"
#include "storage/datasets.h"
#include "storage/table.h"
#include "util/annotations.h"
#include "workload/spec.h"

namespace warper::eval {

// Adaptation methods, including the Table-10 ablation variants.
enum class Method {
  kFt,
  kMix,
  kAug,
  kHem,
  kWarper,
  kWarperPickRandom,
  kWarperPickEntropy,
  kWarperGenAug,
};
const char* MethodName(Method method);

// Builds a fresh, trained-from-scratch estimator for `feature_dim` inputs.
using ModelFactory = std::function<std::unique_ptr<ce::CardinalityEstimator>(
    size_t feature_dim, uint64_t seed)>;

// Factories for the paper's estimators with their §4.1 settings.
ModelFactory LmMlpFactory();
ModelFactory LmGbtFactory();
ModelFactory LmPlyFactory();
ModelFactory LmRbfFactory();
ModelFactory MscnSingleTableFactory();

struct ExperimentConfig {
  size_t train_size = 1200;
  size_t test_size = 200;
  // Adaptation steps after the 0% point; x-axis advances queries_per_step
  // per step (the paper's "0, 20%, ..., 100% of the test period").
  size_t steps = 5;
  size_t queries_per_step = 72;
  // What drifts, how hard and how fast. DriftSpec::C1()/C2()/C3() reproduce
  // the retired DriftKind enum's scenarios bit-for-bit.
  drift::DriftSpec drift = drift::DriftSpec::C2();
  size_t annotation_budget_per_step = std::numeric_limits<size_t>::max();
  int repeats = 3;
  uint64_t seed = 1;
  // Train the β reference model (converged GMQ)? Skipping it saves a full
  // model training per repeat without perturbing any RNG stream — grid
  // benches that only need curves turn it off.
  bool compute_beta = true;
  core::WarperConfig warper;
  workload::GeneratorOptions gen_opts;
};

struct MethodResult {
  std::string name;
  // Median and quartile adaptation curves over the repeats.
  AdaptationCurve median;
  AdaptationCurve q1;
  AdaptationCurve q3;
  // Mean per-run totals.
  double annotations = 0.0;
  double synthesized = 0.0;
  double adapt_seconds = 0.0;  // wall time spent inside Step() calls
  // Relative speedups vs FT.
  Deltas deltas;
};

struct DriftExperimentResult {
  double alpha = 0.0;     // GMQ right after the drift, no adaptation
  double beta = 0.0;      // converged GMQ (model trained on new workload)
  double delta_m = 0.0;   // α − β, the blind drift-severity metric
  double delta_js = 0.0;  // workload JS divergence
  std::vector<MethodResult> methods;
};

// --- Single-table experiments (LM / single-table MSCN) ---

struct SingleTableDriftSpec {
  // Fresh table per repeat (the c1 drift mutates it).
  std::function<storage::Table(uint64_t seed)> table_factory;
  workload::WorkloadSpec workload;
  ModelFactory model_factory;
  std::vector<Method> methods;
  ExperimentConfig config;
};

WARPER_DETERMINISTIC DriftExperimentResult RunSingleTableDrift(
    const SingleTableDriftSpec& spec);

// --- Star-join experiments (join MSCN, Table 7d) ---

struct StarJoinDriftSpec {
  std::function<storage::ImdbTables(uint64_t seed)> tables_factory;
  workload::GenMethod train_method = workload::GenMethod::kW4;
  workload::GenMethod drifted_method = workload::GenMethod::kW1;
  std::vector<Method> methods;
  ExperimentConfig config;
};

WARPER_DETERMINISTIC DriftExperimentResult RunStarJoinDrift(
    const StarJoinDriftSpec& spec);

// Builds an adapter for `method` (Warper variants get `warper_config` with
// the matching ablation switches).
std::unique_ptr<baselines::Adapter> MakeAdapter(
    Method method, const baselines::AdapterContext& context,
    const core::WarperConfig& warper_config);

}  // namespace warper::eval

#endif  // WARPER_EVAL_EXPERIMENT_H_
