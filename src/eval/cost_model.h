// Cost accounting for Table 6 / Table 11 (§4.1, §4.3): the paper models a
// Warper adaptation step's cost as c_gt + C — a per-annotation term plus a
// constant model-update term — and reports the average single-core CPU
// utilization over the test period at different query arrival rates.
#ifndef WARPER_EVAL_COST_MODEL_H_
#define WARPER_EVAL_COST_MODEL_H_

#include <cstddef>

#include "ce/query_domain.h"

namespace warper::eval {

struct CostInputs {
  // New-query arrival rate and test period.
  double rate_qps = 0.2;
  double period_seconds = 1800.0;
  // Measured single-thread cost to annotate one query (c_gt).
  double annotation_seconds_per_query = 0.0;
  // Queries the method annotates per arriving query (e.g. 0.1 when
  // n_g = 10% n_t synthetic queries are labeled per step).
  double annotations_per_arrival = 0.0;
  // Constant per-period cost C: module updates, model update, etc.
  double constant_seconds = 0.0;
};

// Average utilization of one core over the period, in [0, ∞) (1.0 = a full
// core; values > 1 mean the method cannot keep up, §4.1).
double AverageCpuUtilization(const CostInputs& inputs);

// Measures c_gt for a domain by timing a batch of annotations.
double MeasureAnnotationSecondsPerQuery(
    const ce::QueryDomain& domain,
    const std::vector<std::vector<double>>& features);

}  // namespace warper::eval

#endif  // WARPER_EVAL_COST_MODEL_H_
