// Adaptation curves and the relative speedup metric Δ (§4.1):
//   Δ(A, λ) = #queries method A needs to reach GMQ ≤ β + λ(α − β),
// reported as the ratio Δ(FT, λ) / Δ(A, λ) for λ ∈ {0.5, 0.8, 1.0},
// where α is the GMQ right after the drift and β the converged GMQ.
#ifndef WARPER_EVAL_SPEEDUP_H_
#define WARPER_EVAL_SPEEDUP_H_

#include <vector>

namespace warper::eval {

// GMQ as a function of the number of new-workload queries consumed.
struct AdaptationCurve {
  std::vector<double> queries;  // monotonically increasing x-axis
  std::vector<double> gmq;

  bool Valid() const;
};

// Number of queries at which the curve first reaches `target` GMQ, linearly
// interpolated between points; +infinity when it never does.
double QueriesToReach(const AdaptationCurve& curve, double target);

struct Deltas {
  double d50 = 1.0;
  double d80 = 1.0;
  double d100 = 1.0;
};

// Relative speedups of `method` over `ft` with drift endpoints α, β. When a
// curve never reaches a target, its query count is capped at `cap_queries`
// (the total queries available in the test period), matching how a bounded
// experiment can report the metric.
Deltas RelativeSpeedups(const AdaptationCurve& ft,
                        const AdaptationCurve& method, double alpha,
                        double beta, double cap_queries);

}  // namespace warper::eval

#endif  // WARPER_EVAL_SPEEDUP_H_
