#include "eval/experiment.h"

#include <algorithm>
#include <cmath>

#include "baselines/aug.h"
#include "baselines/ft.h"
#include "baselines/hem.h"
#include "baselines/mix.h"
#include "baselines/warper_adapter.h"
#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/mscn.h"
#include "core/drift.h"
#include "drift/schedule.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "storage/parallel_annotator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"
#include "workload/generator.h"
#include "workload/join_workload.h"

namespace warper::eval {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kFt:
      return "FT";
    case Method::kMix:
      return "MIX";
    case Method::kAug:
      return "AUG";
    case Method::kHem:
      return "HEM";
    case Method::kWarper:
      return "Warper";
    case Method::kWarperPickRandom:
      return "Warper(P->rnd)";
    case Method::kWarperPickEntropy:
      return "Warper(P->entropy)";
    case Method::kWarperGenAug:
      return "Warper(G->AUG)";
  }
  return "?";
}

ModelFactory LmMlpFactory() {
  return [](size_t feature_dim, uint64_t seed) {
    return std::make_unique<ce::LmMlp>(feature_dim, ce::LmMlpConfig{}, seed);
  };
}

ModelFactory LmGbtFactory() {
  return [](size_t feature_dim, uint64_t seed) {
    return std::make_unique<ce::LmGbt>(feature_dim, ce::LmGbtConfig{}, seed);
  };
}

ModelFactory LmPlyFactory() {
  return [](size_t feature_dim, uint64_t seed) {
    return ce::MakeLmPly(feature_dim, seed);
  };
}

ModelFactory LmRbfFactory() {
  return [](size_t feature_dim, uint64_t seed) {
    return ce::MakeLmRbf(feature_dim, seed);
  };
}

ModelFactory MscnSingleTableFactory() {
  return [](size_t feature_dim, uint64_t seed) {
    WARPER_CHECK(feature_dim % 2 == 0);
    return std::make_unique<ce::Mscn>(
        ce::MscnConfig::SingleTable(feature_dim / 2), seed);
  };
}

std::unique_ptr<baselines::Adapter> MakeAdapter(
    Method method, const baselines::AdapterContext& context,
    const core::WarperConfig& warper_config) {
  switch (method) {
    case Method::kFt:
      return std::make_unique<baselines::FtAdapter>(context);
    case Method::kMix:
      return std::make_unique<baselines::MixAdapter>(context);
    case Method::kAug:
      return std::make_unique<baselines::AugAdapter>(context);
    case Method::kHem:
      return std::make_unique<baselines::HemAdapter>(context);
    case Method::kWarper:
      return std::make_unique<baselines::WarperAdapter>(context, warper_config);
    case Method::kWarperPickRandom: {
      core::WarperConfig c = warper_config;
      c.picker_variant = core::PickerVariant::kRandom;
      return std::make_unique<baselines::WarperAdapter>(context, c);
    }
    case Method::kWarperPickEntropy: {
      core::WarperConfig c = warper_config;
      c.picker_variant = core::PickerVariant::kEntropy;
      return std::make_unique<baselines::WarperAdapter>(context, c);
    }
    case Method::kWarperGenAug: {
      core::WarperConfig c = warper_config;
      c.generator_variant = core::GeneratorVariant::kNoiseAug;
      return std::make_unique<baselines::WarperAdapter>(context, c);
    }
  }
  WARPER_CHECK_MSG(false, "unknown method");
  return nullptr;
}

namespace {

// Everything one repeat of an experiment needs, independent of the query
// class (single-table vs join).
struct PreparedRepeat {
  const ce::QueryDomain* domain = nullptr;
  std::vector<ce::LabeledExample> train_corpus;  // labels as of training time
  std::vector<std::vector<ce::LabeledExample>> arrival_batches;
  std::vector<ce::LabeledExample> test_set;        // fresh post-drift labels
  std::vector<ce::LabeledExample> reference_corpus;  // for the β model
  // Per-step adapter inputs (annotation budget + data-drift telemetry of any
  // mutation event landing at that step), aligned with arrival_batches.
  std::vector<baselines::StepInfo> step_infos;
  // When mid-run data events re-mutate the table, step_test_sets[s] carries
  // the test set re-annotated against the table state after step s (same
  // predicates and features; only the ground-truth counts refresh). Empty
  // for single-onset schedules — evaluation then sticks to test_set.
  std::vector<std::vector<ce::LabeledExample>> step_test_sets;
};

struct RepeatOutcome {
  double alpha = 0.0;
  double beta = 0.0;
  double delta_js = 0.0;
  // Per method, aligned with the spec's method list.
  std::vector<AdaptationCurve> curves;
  std::vector<double> annotations;
  std::vector<double> synthesized;
  std::vector<double> adapt_seconds;
};

RepeatOutcome RunRepeat(const PreparedRepeat& prepared,
                        const ModelFactory& model_factory,
                        const std::vector<Method>& methods,
                        const ExperimentConfig& config,
                        const drift::DriftSchedule& schedule, uint64_t seed) {
  WARPER_CHECK(!prepared.train_corpus.empty());
  WARPER_CHECK(!prepared.test_set.empty());
  WARPER_CHECK(prepared.step_infos.size() == prepared.arrival_batches.size());
  size_t feature_dim = prepared.train_corpus[0].features.size();

  RepeatOutcome outcome;

  // δ_js between the arriving and the training workloads.
  {
    std::vector<std::vector<double>> new_features, train_features;
    for (const auto& batch : prepared.arrival_batches) {
      for (const auto& q : batch) new_features.push_back(q.features);
    }
    for (const auto& q : prepared.train_corpus) {
      train_features.push_back(q.features);
    }
    outcome.delta_js = core::WorkloadJsDivergence(
        new_features, train_features, config.warper.js_pca_dims,
        config.warper.js_bins);
  }

  // β: a model trained exclusively on the new workload and data.
  if (config.compute_beta) {
    std::unique_ptr<ce::CardinalityEstimator> reference =
        model_factory(feature_dim, seed ^ 0xBEEFULL);
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(prepared.reference_corpus, &x, &y);
    reference->Train(x, y);
    outcome.beta = ce::ModelGmq(*reference, prepared.test_set);
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    // Fresh, identically-seeded model per method.
    std::unique_ptr<ce::CardinalityEstimator> model =
        model_factory(feature_dim, seed);
    {
      nn::Matrix x;
      std::vector<double> y;
      ce::ExamplesToMatrix(prepared.train_corpus, &x, &y);
      model->Train(x, y);
    }

    baselines::AdapterContext context;
    context.domain = prepared.domain;
    context.model = model.get();
    context.train_corpus = &prepared.train_corpus;
    context.seed = seed ^ (0x1000ULL * (m + 1));
    std::unique_ptr<baselines::Adapter> adapter =
        MakeAdapter(methods[m], context, config.warper);

    AdaptationCurve curve;
    curve.queries.push_back(0.0);
    curve.gmq.push_back(ce::ModelGmq(*model, prepared.test_set));

    double annotations = 0.0, synthesized = 0.0, adapt_seconds = 0.0;
    for (size_t step = 0; step < prepared.arrival_batches.size(); ++step) {
      schedule.PublishStepTelemetry(step);
      util::WallTimer timer;
      baselines::StepStats stats =
          adapter->Step(prepared.arrival_batches[step], prepared.step_infos[step]);
      adapt_seconds += timer.Seconds();
      annotations += static_cast<double>(stats.annotated);
      synthesized += static_cast<double>(stats.synthesized);

      const std::vector<ce::LabeledExample>& eval_set =
          prepared.step_test_sets.empty() ? prepared.test_set
                                          : prepared.step_test_sets[step];
      curve.queries.push_back(static_cast<double>((step + 1) *
                                                  config.queries_per_step));
      curve.gmq.push_back(ce::ModelGmq(*model, eval_set));
    }

    if (m == 0) outcome.alpha = curve.gmq[0];
    outcome.curves.push_back(std::move(curve));
    outcome.annotations.push_back(annotations);
    outcome.synthesized.push_back(synthesized);
    outcome.adapt_seconds.push_back(adapt_seconds);
  }
  return outcome;
}

DriftExperimentResult Aggregate(const std::vector<RepeatOutcome>& repeats,
                                const std::vector<Method>& methods,
                                const ExperimentConfig& config) {
  WARPER_CHECK(!repeats.empty());
  DriftExperimentResult result;
  {
    std::vector<double> alphas, betas, js;
    for (const auto& r : repeats) {
      alphas.push_back(r.alpha);
      betas.push_back(r.beta);
      js.push_back(r.delta_js);
    }
    result.alpha = util::Mean(alphas);
    result.beta = util::Mean(betas);
    result.delta_m = result.alpha - result.beta;
    result.delta_js = util::Mean(js);
  }

  double cap = static_cast<double>(config.steps * config.queries_per_step);
  size_t ft_index = 0;
  for (size_t m = 0; m < methods.size(); ++m) {
    if (methods[m] == Method::kFt) ft_index = m;
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    MethodResult mr;
    mr.name = MethodName(methods[m]);
    size_t points = repeats[0].curves[m].queries.size();
    mr.median.queries = repeats[0].curves[m].queries;
    mr.q1.queries = mr.median.queries;
    mr.q3.queries = mr.median.queries;
    for (size_t p = 0; p < points; ++p) {
      std::vector<double> values;
      for (const auto& r : repeats) values.push_back(r.curves[m].gmq[p]);
      mr.median.gmq.push_back(util::Median(values));
      mr.q1.gmq.push_back(util::Percentile(values, 25.0));
      mr.q3.gmq.push_back(util::Percentile(values, 75.0));
    }
    std::vector<double> ann, synth, secs;
    for (const auto& r : repeats) {
      ann.push_back(r.annotations[m]);
      synth.push_back(r.synthesized[m]);
      secs.push_back(r.adapt_seconds[m]);
    }
    mr.annotations = util::Mean(ann);
    mr.synthesized = util::Mean(synth);
    mr.adapt_seconds = util::Mean(secs);
    result.methods.push_back(std::move(mr));
  }

  // Speedups vs FT on per-repeat curves, averaged (medians of ratios are
  // more robust than ratios of medians).
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<double> d50, d80, d100;
    for (const auto& r : repeats) {
      Deltas d = RelativeSpeedups(r.curves[ft_index], r.curves[m], r.alpha,
                                  r.beta, cap);
      d50.push_back(d.d50);
      d80.push_back(d.d80);
      d100.push_back(d.d100);
    }
    result.methods[m].deltas.d50 = util::Median(d50);
    result.methods[m].deltas.d80 = util::Median(d80);
    result.methods[m].deltas.d100 = util::Median(d100);
  }
  return result;
}

std::vector<ce::LabeledExample> ToExamples(
    const std::vector<std::vector<double>>& features,
    const std::vector<int64_t>& counts, bool with_labels) {
  WARPER_CHECK(features.size() == counts.size());
  std::vector<ce::LabeledExample> out(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    out[i].features = features[i];
    out[i].cardinality = with_labels ? counts[i] : -1;
  }
  return out;
}

}  // namespace

DriftExperimentResult RunSingleTableDrift(const SingleTableDriftSpec& spec) {
  const ExperimentConfig& config = spec.config;
  std::vector<RepeatOutcome> outcomes;

  for (int repeat = 0; repeat < config.repeats; ++repeat) {
    uint64_t seed = config.seed + 7919ULL * static_cast<uint64_t>(repeat);
    util::Rng rng(seed);

    storage::Table table = spec.table_factory(seed);
    storage::Annotator annotator(&table);
    ce::SingleTableDomain domain(&annotator);

    // Each repeat replays its own mutation stream (repeat 0 keeps the spec's
    // seed verbatim, so a single-repeat run is the spec's canonical replay).
    drift::DriftSpec drift_spec = config.drift;
    drift_spec.seed ^= 0x5851F42D4C957F2DULL * static_cast<uint64_t>(repeat);
    drift::DriftSchedule schedule(drift_spec, spec.workload, config.steps);

    PreparedRepeat prepared;
    prepared.domain = &domain;
    prepared.step_infos.assign(config.steps, baselines::StepInfo{});
    for (auto& info : prepared.step_infos) {
      info.annotation_budget = config.annotation_budget_per_step;
    }

    auto featurize = [&](const std::vector<storage::RangePredicate>& preds) {
      std::vector<std::vector<double>> features;
      features.reserve(preds.size());
      for (const auto& p : preds) {
        features.push_back(domain.FeaturizePredicate(p));
      }
      return features;
    };

    // Training corpus, annotated pre-drift.
    {
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          table, spec.workload.train, config.train_size, &rng, config.gen_opts);
      std::vector<int64_t> counts = annotator.BatchCount(preds);
      prepared.train_corpus = ToExamples(featurize(preds), counts, true);
    }

    // Data-drift machinery: canaries are drawn once, before any mutation;
    // every event then brackets itself with a canary re-count and a change-
    // counter snapshot so the adapter's StepInfo telemetry sees each shock.
    std::vector<storage::RangePredicate> canaries;
    auto apply_event = [&](size_t s, baselines::StepInfo* info) {
      std::vector<int64_t> baseline = annotator.BatchCount(canaries);
      uint64_t snapshot = table.ChangeCounter();
      schedule.ApplyDataEventAt(&table, s);
      info->data_changed_fraction = table.ChangedFractionSince(snapshot);
      // Canary re-counting is pure telemetry; run it on the shared pool
      // (bit-identical to the serial pass).
      info->canary_shift = storage::CanaryShift(
          storage::ParallelAnnotator(&table), canaries, baseline);
    };

    // The onset event lands "overnight", before the post-drift test set is
    // drawn (the c1 preset: one sort+truncate-half, same RNG stream as the
    // retired DriftKind path).
    if (schedule.HasDataEventAt(0)) {
      canaries = storage::MakeCanaryPredicates(table, 16, &rng);
      apply_event(0, &prepared.step_infos[0]);
    }

    // Post-drift test set and reference corpus (fresh labels).
    workload::WeightedMix eval_mix = schedule.EvalMix();
    std::vector<storage::RangePredicate> test_preds = workload::GenerateWorkload(
        table, eval_mix, config.test_size, &rng, config.gen_opts);
    prepared.test_set = ToExamples(featurize(test_preds),
                                   annotator.BatchCount(test_preds), true);
    {
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          table, eval_mix, config.train_size, &rng, config.gen_opts);
      std::vector<int64_t> counts(preds.size(), -1);
      if (config.compute_beta) counts = annotator.BatchCount(preds);
      prepared.reference_corpus =
          ToExamples(featurize(preds), counts, config.compute_beta);
    }

    // Arrival batches, mixed per step by the schedule. Unlabeled arrivals
    // (c1/c3 and every `+labels`-less spec) make the adapters spend their
    // own annotation budget. Mid-run data events mutate the table right
    // before the step's arrivals and refresh the test set's ground truth
    // (features stay fixed — only the counts go stale).
    bool track_test = schedule.HasMidRunDataEvents();
    std::vector<ce::LabeledExample> current_test = prepared.test_set;
    for (size_t step = 0; step < config.steps; ++step) {
      if (step > 0 && schedule.HasDataEventAt(step)) {
        apply_event(step, &prepared.step_infos[step]);
        std::vector<int64_t> counts = annotator.BatchCount(test_preds);
        for (size_t i = 0; i < current_test.size(); ++i) {
          current_test[i].cardinality = counts[i];
        }
      }
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          table, schedule.ArrivalMixAt(step), config.queries_per_step, &rng,
          config.gen_opts);
      std::vector<int64_t> counts(preds.size(), -1);
      if (schedule.arrivals_labeled()) counts = annotator.BatchCount(preds);
      prepared.arrival_batches.push_back(
          ToExamples(featurize(preds), counts, schedule.arrivals_labeled()));
      if (track_test) prepared.step_test_sets.push_back(current_test);
    }

    outcomes.push_back(RunRepeat(prepared, spec.model_factory, spec.methods,
                                 config, schedule, seed));
  }
  return Aggregate(outcomes, spec.methods, config);
}

DriftExperimentResult RunStarJoinDrift(const StarJoinDriftSpec& spec) {
  const ExperimentConfig& config = spec.config;
  WARPER_CHECK_MSG(!config.drift.DriftsData(),
                   "star-join harness supports workload drift only");
  std::vector<RepeatOutcome> outcomes;

  for (int repeat = 0; repeat < config.repeats; ++repeat) {
    uint64_t seed = config.seed + 104729ULL * static_cast<uint64_t>(repeat);
    util::Rng rng(seed);

    storage::ImdbTables tables = spec.tables_factory(seed);
    storage::StarSchema schema = tables.Schema();
    storage::JoinAnnotator annotator(&schema);
    ce::StarJoinDomain domain(&annotator);

    workload::WorkloadSpec wspec;
    wspec.train = {spec.train_method};
    wspec.drifted = {spec.drifted_method};
    drift::DriftSchedule schedule(config.drift, wspec, config.steps);

    PreparedRepeat prepared;
    prepared.domain = &domain;
    prepared.step_infos.assign(config.steps, baselines::StepInfo{});
    for (auto& info : prepared.step_infos) {
      info.annotation_budget = config.annotation_budget_per_step;
    }

    // A degenerate (single-method) mixture replays the legacy RNG stream;
    // partial weights draw each query's method from the mixture.
    auto gen_queries = [&](const workload::WeightedMix& mix, size_t n) {
      std::vector<workload::GenMethod> methods;
      std::vector<double> weights;
      for (size_t i = 0; i < mix.methods.size(); ++i) {
        if (mix.weights[i] > 0.0) {
          methods.push_back(mix.methods[i]);
          weights.push_back(mix.weights[i]);
        }
      }
      WARPER_CHECK_MSG(!methods.empty(), "empty join-workload mixture");
      if (methods.size() == 1) {
        return workload::GenerateJoinWorkload(schema, methods[0], n, &rng,
                                              config.gen_opts);
      }
      std::vector<storage::JoinQuery> queries;
      queries.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        workload::GenMethod m = methods[rng.Categorical(weights)];
        std::vector<storage::JoinQuery> one =
            workload::GenerateJoinWorkload(schema, m, 1, &rng, config.gen_opts);
        queries.push_back(std::move(one[0]));
      }
      return queries;
    };

    auto make_examples = [&](const workload::WeightedMix& mix, size_t n,
                             bool with_labels) {
      std::vector<storage::JoinQuery> queries = gen_queries(mix, n);
      std::vector<ce::LabeledExample> out(queries.size());
      std::vector<int64_t> counts;
      if (with_labels) counts = annotator.BatchCount(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        out[i].features = domain.FeaturizeQuery(queries[i]);
        out[i].cardinality = with_labels ? counts[i] : -1;
      }
      return out;
    };

    prepared.train_corpus =
        make_examples(wspec.MixtureAt(0.0), config.train_size, true);
    workload::WeightedMix eval_mix = schedule.EvalMix();
    prepared.test_set = make_examples(eval_mix, config.test_size, true);
    prepared.reference_corpus =
        make_examples(eval_mix, config.train_size, config.compute_beta);
    for (size_t step = 0; step < config.steps; ++step) {
      prepared.arrival_batches.push_back(
          make_examples(schedule.ArrivalMixAt(step), config.queries_per_step,
                        schedule.arrivals_labeled()));
    }

    // MSCN configured for the star layout.
    ModelFactory factory = [&](size_t feature_dim, uint64_t model_seed) {
      std::vector<size_t> fact_cols;
      for (const auto& fact : schema.facts) {
        fact_cols.push_back(fact.table->NumColumns());
      }
      ce::MscnConfig mscn_config =
          ce::MscnConfig::StarJoin(schema.center->NumColumns(), fact_cols);
      WARPER_CHECK(mscn_config.feature_dim == feature_dim);
      return std::make_unique<ce::Mscn>(mscn_config, model_seed);
    };

    outcomes.push_back(
        RunRepeat(prepared, factory, spec.methods, config, schedule, seed));
  }
  return Aggregate(outcomes, spec.methods, config);
}

}  // namespace warper::eval
