#include "eval/speedup.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace warper::eval {

bool AdaptationCurve::Valid() const {
  if (queries.size() != gmq.size() || queries.empty()) return false;
  for (size_t i = 1; i < queries.size(); ++i) {
    if (queries[i] < queries[i - 1]) return false;
  }
  return true;
}

double QueriesToReach(const AdaptationCurve& curve, double target) {
  WARPER_CHECK(curve.Valid());
  for (size_t i = 0; i < curve.gmq.size(); ++i) {
    if (curve.gmq[i] <= target) {
      if (i == 0) return curve.queries[0];
      // Linear interpolation between the bracketing points.
      double g0 = curve.gmq[i - 1];
      double g1 = curve.gmq[i];
      double q0 = curve.queries[i - 1];
      double q1 = curve.queries[i];
      if (g0 <= g1) return q1;  // non-improving segment: credit the endpoint
      double frac = (g0 - target) / (g0 - g1);
      return q0 + frac * (q1 - q0);
    }
  }
  return std::numeric_limits<double>::infinity();
}

namespace {

double OneSpeedup(const AdaptationCurve& ft, const AdaptationCurve& method,
                  double target, double cap_queries) {
  double ft_q = std::min(QueriesToReach(ft, target), cap_queries);
  double m_q = std::min(QueriesToReach(method, target), cap_queries);
  // Floor at one query: reaching the target before consuming any new query
  // would otherwise divide by zero.
  ft_q = std::max(ft_q, 1.0);
  m_q = std::max(m_q, 1.0);
  return ft_q / m_q;
}

}  // namespace

Deltas RelativeSpeedups(const AdaptationCurve& ft,
                        const AdaptationCurve& method, double alpha,
                        double beta, double cap_queries) {
  WARPER_CHECK(cap_queries > 0.0);
  Deltas deltas;
  deltas.d50 = OneSpeedup(ft, method, beta + 0.5 * (alpha - beta), cap_queries);
  deltas.d80 = OneSpeedup(ft, method, beta + 0.2 * (alpha - beta), cap_queries);
  deltas.d100 = OneSpeedup(ft, method, beta, cap_queries);
  return deltas;
}

}  // namespace warper::eval
