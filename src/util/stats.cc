#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::util {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    WARPER_CHECK_MSG(x > 0.0, "GeometricMean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  WARPER_CHECK(!xs.empty());
  WARPER_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

NormalizedHistogram::NormalizedHistogram(size_t num_buckets)
    : freq_(num_buckets, 0.0) {
  WARPER_CHECK(num_buckets > 0);
}

void NormalizedHistogram::Add(size_t bucket, double weight) {
  WARPER_CHECK(bucket < freq_.size());
  WARPER_CHECK(!normalized_);
  freq_[bucket] += weight;
  total_ += weight;
}

void NormalizedHistogram::Normalize() {
  if (normalized_) return;
  normalized_ = true;
  if (total_ <= 0.0) return;
  for (double& f : freq_) f /= total_;
}

double JensenShannonDivergence(const NormalizedHistogram& a,
                               const NormalizedHistogram& b) {
  WARPER_CHECK(a.num_buckets() == b.num_buckets());
  constexpr double kEps = 1e-9;
  size_t n = a.num_buckets();
  // Re-normalize with epsilon smoothing.
  double za = 0.0, zb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    za += a.frequency(i) + kEps;
    zb += b.frequency(i) + kEps;
  }
  double kl_am = 0.0, kl_bm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pa = (a.frequency(i) + kEps) / za;
    double pb = (b.frequency(i) + kEps) / zb;
    double pm = 0.5 * (pa + pb);
    kl_am += pa * (std::log(pa) - std::log(pm));
    kl_bm += pb * (std::log(pb) - std::log(pm));
  }
  double js = 0.5 * (kl_am + kl_bm);
  // Rescale from nats (max ln 2) into [0, 1].
  return std::min(1.0, std::max(0.0, js / std::log(2.0)));
}

}  // namespace warper::util
