// Per-key running error statistics — the pg_track_optimizer-style substrate
// behind core::TemplateTracker.
//
// An ErrorLog maps an opaque 64-bit key (a predicate-template fingerprint)
// to RunningErrorStats: count, mean and RMS of the absolute log q-error, a
// time-decayed EWMA, a cost-weighted average and the last-seen tick. The
// store follows the metrics-registry hot-path shape: keys are sharded by
// hash across independently locked maps, so concurrent writers (the
// adaptation thread plus serving-path feedback) contend only when they hit
// the same shard, and readers (TopOffenders, export) never stop the writers
// for more than one shard at a time.
//
// Export: a log registered under a name (see NewRegisteredErrorLog) is
// picked up by the WARPER_ERRLOG=<path> at-exit dump — the errlog twin of
// WARPER_TRACE — and by the bench binaries' BENCH_*.json embedding.
#ifndef WARPER_UTIL_ERRLOG_H_
#define WARPER_UTIL_ERRLOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace warper::util {

struct ErrorLogOptions {
  // EWMA factor per observation: ewma ← alpha·err + (1−alpha)·ewma. Larger
  // alpha forgets faster (tracks drift sooner, noisier).
  double ewma_alpha = 0.2;
  // Lock shards. More shards = less writer contention, slightly costlier
  // snapshots.
  size_t shards = 8;
};

// One key's cumulative error statistics. Sums (not derived means) are
// stored so two stats can be merged exactly — see Merge().
struct RunningErrorStats {
  uint64_t count = 0;
  double sum_err = 0.0;     // Σ |log q-error|
  double sum_sq_err = 0.0;  // Σ err²
  double ewma_err = 0.0;    // time-decayed (per-observation EWMA)
  double sum_cost = 0.0;    // Σ cost (e.g. true cardinality)
  double sum_cost_err = 0.0;  // Σ cost·err
  uint64_t last_seen_tick = 0;

  double MeanErr() const {
    return count == 0 ? 0.0 : sum_err / static_cast<double>(count);
  }
  double RmsErr() const;
  // Σ cost·err / Σ cost — queries that touch more rows weigh more, the
  // pg_track_optimizer "wca" reading of error impact.
  double CostWeightedErr() const {
    return sum_cost <= 0.0 ? MeanErr() : sum_cost_err / sum_cost;
  }

  void Observe(double err, double cost, uint64_t tick, double ewma_alpha);
  // Exact for the cumulative fields (count/sums); the EWMA — which has no
  // exact order-independent merge — becomes the count-weighted average of
  // the two inputs' EWMAs.
  void Merge(const RunningErrorStats& other);
};

class ErrorLog {
 public:
  explicit ErrorLog(const ErrorLogOptions& options = ErrorLogOptions());

  ErrorLog(const ErrorLog&) = delete;
  ErrorLog& operator=(const ErrorLog&) = delete;

  // Records one observation under `key`. Lock-cheap: one shard mutex, no
  // allocation after the key's first observation.
  void Record(uint64_t key, double err, double cost, uint64_t tick);

  // Copies `key`'s stats; false when the key was never recorded.
  bool Lookup(uint64_t key, RunningErrorStats* out) const;

  struct Entry {
    uint64_t key = 0;
    RunningErrorStats stats;
  };

  // The k keys with the highest EWMA error, worst first (ties broken by
  // key for determinism).
  std::vector<Entry> TopOffenders(size_t k) const;
  // Every key's stats, unordered.
  std::vector<Entry> Snapshot() const;
  // All keys merged into one (fleet-/tenant-level rollup).
  RunningErrorStats Aggregate() const;

  size_t NumKeys() const;
  uint64_t Observations() const {
    return observations_.load(std::memory_order_relaxed);
  }
  // Drops every key (e.g. a data drift invalidated the error history).
  void Clear();

  double ewma_alpha() const { return options_.ewma_alpha; }

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, RunningErrorStats> stats
        WARPER_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key) const {
    // splitmix-style scramble so sequential or masked keys still spread.
    uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    return *shards_[(h >> 32) % shards_.size()];
  }

  ErrorLogOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> observations_{0};
};

// --- Named registry: the WARPER_ERRLOG export surface. ---
//
// Creates an ErrorLog registered under `name` (deduplicated with a "#n"
// suffix if the name is taken by a live log). The registry holds weak
// references — a log dies with its owner — except when WARPER_ERRLOG is
// set, in which case logs are retained so the at-exit dump still sees work
// done by objects that main() already destroyed. Pass an empty name to get
// an unregistered, export-invisible log.
std::shared_ptr<ErrorLog> NewRegisteredErrorLog(
    const std::string& name, const ErrorLogOptions& options = ErrorLogOptions());

// {"logs": [{"name", "observations", "templates": [...]}]}, templates worst
// EWMA first. `indent` shifts the whole document (for embedding).
std::string ErrLogsToJson(int indent = 0);

// Human-readable per-log offender tables (worst `top_k` per log).
std::string ErrLogsTextDump(size_t top_k = 10);

// Writes ErrLogsToJson to `path` (the WARPER_ERRLOG at-exit hook calls
// this; tests may too).
Status ExportErrLogs(const std::string& path);

}  // namespace warper::util

#endif  // WARPER_UTIL_ERRLOG_H_
