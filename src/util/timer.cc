#include "util/timer.h"

#include <ctime>

namespace warper::util {

double ThreadCpuTimer::Now() {
  WARPER_ANALYZER_SUPPRESS("determinism-purity",
                           "thread-CPU clock feeds the Table 6/11 cost "
                           "accounting only, never computed bytes #10");
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  // Fallback: process CPU time — an overstatement with concurrent threads,
  // but every supported platform (Linux, glibc/musl) takes the branch above.
  return static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

}  // namespace warper::util
