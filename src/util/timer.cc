#include "util/timer.h"

// Header-only at the moment; this TU anchors the library target.
