// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible given its seed. The core generator is xoshiro256**, seeded via
// splitmix64 — fast, high quality, and identical across platforms (unlike
// std::mt19937 distributions, whose outputs are implementation-defined).
#ifndef WARPER_UTIL_RNG_H_
#define WARPER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace warper::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box–Muller.
  double Normal();
  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  // Exponential with the given rate.
  double Exponential(double rate);
  // Zipf-distributed integer in [0, n) with exponent s (via rejection-free
  // inverse-CDF over precomputed weights for small n, or approximation).
  int64_t Zipf(int64_t n, double s);
  // True with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Non-positive weights are treated as zero; if all are zero, samples
  // uniformly.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent child generator; used to give parallel experiment
  // arms decorrelated streams.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace warper::util

#endif  // WARPER_UTIL_RNG_H_
