#include "util/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/status.h"

namespace warper::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  WARPER_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  WARPER_CHECK_MSG(row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void PrintSeries(std::ostream& os, const std::string& name,
                 const std::vector<double>& xs, const std::vector<double>& ys,
                 int precision) {
  WARPER_CHECK(xs.size() == ys.size());
  os << name << ":";
  for (size_t i = 0; i < xs.size(); ++i) {
    os << " " << FormatDouble(xs[i], 0) << "=" << FormatDouble(ys[i], precision);
  }
  os << "\n";
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace warper::util
