#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/status.h"

namespace warper::util {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  WARPER_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WARPER_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller.
  double u1 = 0.0;
  while (u1 <= 0.0) u1 = Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  WARPER_CHECK(rate > 0.0);
  double u = 0.0;
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / rate;
}

int64_t Rng::Zipf(int64_t n, double s) {
  WARPER_CHECK(n > 0);
  // Inverse-CDF over the harmonic weights; O(n) but n is small in practice
  // (categorical domains), and results are exact.
  double h = 0.0;
  for (int64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = Uniform() * h;
  double acc = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  WARPER_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0.0 ? weights[i] : 0.0;
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  WARPER_CHECK(k <= n);
  // Partial Fisher–Yates over an index array; O(n) memory is fine at the
  // scales used here.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace warper::util
