// Plain-text table and series printers used by the bench binaries to emit
// the paper's tables and figure series in a uniform format.
#ifndef WARPER_UTIL_REPORT_H_
#define WARPER_UTIL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace warper::util {

// Accumulates rows and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 2);

// Prints a named series as "name: x1=y1 x2=y2 ..." rows — the textual
// equivalent of one line in a paper figure.
void PrintSeries(std::ostream& os, const std::string& name,
                 const std::vector<double>& xs, const std::vector<double>& ys,
                 int precision = 2);

// Prints a banner like "=== Figure 6: ... ===".
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace warper::util

#endif  // WARPER_UTIL_REPORT_H_
