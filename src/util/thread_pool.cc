#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "util/metrics.h"
#include "util/timer.h"

namespace warper::util {
namespace {

thread_local bool t_on_pool_worker = false;

// Pool health metrics. `pool.busy_us` over (`pool.workers`+1) × elapsed wall
// time gives worker utilization; `pool.queue_depth` is a point-in-time gauge
// sampled at every enqueue/dequeue.
struct PoolMetrics {
  Counter* tasks_executed = Metrics().GetCounter("pool.tasks_executed");
  Counter* busy_us = Metrics().GetCounter("pool.busy_us");
  Counter* parallel_for_calls = Metrics().GetCounter("pool.parallel_for.calls");
  Counter* parallel_for_serial =
      Metrics().GetCounter("pool.parallel_for.serial");
  Gauge* queue_depth = Metrics().GetGauge("pool.queue_depth");
  Gauge* workers = Metrics().GetGauge("pool.workers");
};

PoolMetrics& GetPoolMetrics() {
  WARPER_ANALYZER_SUPPRESS("hot-path-purity",
                           "function-static handle cache: the allocation and "
                           "registry locks run once, on the first call #10");
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

// Runs one task with busy-time accounting.
void RunTask(std::packaged_task<void()>* task) {
  PoolMetrics& m = GetPoolMetrics();
  WallTimer timer;
  (*task)();  // exceptions land in the packaged_task's future
  m.busy_us->Increment(static_cast<uint64_t>(timer.Seconds() * 1e6));
  m.tasks_executed->Increment();
}

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Guards the global pool instance against concurrent Configure calls.
Mutex g_global_mutex;
std::unique_ptr<ThreadPool>& GlobalSlot() WARPER_REQUIRES(g_global_mutex) {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ParallelConfig::ResolvedThreads() const {
  return threads <= 0 ? HardwareThreads() : threads;
}

Status ParallelConfig::Validate() const {
  if (threads < 0) {
    return Status::InvalidArgument("parallel.threads must be >= 0, got " +
                                   std::to_string(threads));
  }
  if (grain == 0) {
    return Status::InvalidArgument("parallel.grain must be > 0");
  }
  if (simd == SimdMode::kAvx2 &&
      BestSupportedSimdLevel() != SimdLevel::kAvx2) {
    return Status::InvalidArgument(
        "parallel.simd = avx2 but this CPU lacks AVX2+FMA support");
  }
  return Status::OK();
}

bool OnPoolWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads <= 0 ? HardwareThreads() : num_threads;
  // The submitting thread participates in ParallelFor, so a pool of n-1
  // workers saturates n cores; a "1-thread" pool spawns no workers at all.
  workers_.reserve(static_cast<size_t>(std::max(0, n - 1)));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  GetPoolMetrics().workers->Set(static_cast<double>(workers_.size()));
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stop_ && tasks_.empty()) cv_.Wait(&mutex_);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
      GetPoolMetrics().queue_depth->Set(static_cast<double>(tasks_.size()));
    }
    RunTask(&task);
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    // No workers: run inline so a 1-thread pool still makes progress.
    RunTask(&task);
    return future;
  }
  {
    MutexLock lock(&mutex_);
    tasks_.push(std::move(task));
    GetPoolMetrics().queue_depth->Set(static_cast<double>(tasks_.size()));
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  size_t n = end - begin;
  grain = std::max<size_t>(1, grain);
  size_t max_chunks = static_cast<size_t>(size()) + 1;
  size_t chunks = std::min(max_chunks, n / grain);
  PoolMetrics& metrics = GetPoolMetrics();
  metrics.parallel_for_calls->Increment();
  // Serial when the range is too small to split, the pool has no workers, or
  // we are already on a pool worker (nested ParallelFor must not block on the
  // queue it is supposed to drain).
  if (chunks <= 1 || workers_.empty() || OnPoolWorkerThread()) {
    metrics.parallel_for_serial->Increment();
    fn(begin, end);
    return;
  }

  // Fixed contiguous partition: chunk boundaries depend only on (n, chunks),
  // which keeps per-chunk work deterministic for ordered reductions.
  size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // The calling thread takes the first chunk.
  std::exception_ptr first_error;
  try {
    fn(begin, std::min(end, begin + chunk_size));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(&g_global_mutex);
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::Configure(const ParallelConfig& config) {
  int want = config.ResolvedThreads();
  MutexLock lock(&g_global_mutex);
  auto& slot = GlobalSlot();
  if (slot && slot->size() == want - 1) return;
  slot.reset();  // join old workers before spawning the new set
  slot = std::make_unique<ThreadPool>(want);
}

}  // namespace warper::util
