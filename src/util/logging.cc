#include "util/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace warper::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes sink installation and every delivery: the whole point of the
// mutex is that two pool threads destroying LogMessage concurrently cannot
// interleave partial lines in the default stderr sink.
Mutex& SinkMutex() {
  static Mutex* mutex = new Mutex();
  return *mutex;
}

LogSink& SinkSlot() WARPER_REQUIRES(SinkMutex()) {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogSink SetLogSink(LogSink sink) {
  MutexLock lock(&SinkMutex());
  LogSink previous = std::move(SinkSlot());
  SinkSlot() = std::move(sink);
  return previous;
}

CapturingLogSink::CapturingLogSink() {
  previous_ = SetLogSink([this](LogLevel, const std::string& line) {
    MutexLock lock(&mutex_);
    lines_.push_back(line);
  });
}

CapturingLogSink::~CapturingLogSink() { SetLogSink(std::move(previous_)); }

std::vector<std::string> CapturingLogSink::lines() const {
  MutexLock lock(&mutex_);
  return lines_;
}

std::string CapturingLogSink::str() const {
  MutexLock lock(&mutex_);
  std::string out;
  for (const std::string& line : lines_) out += line;
  return out;
}

void CapturingLogSink::Clear() {
  MutexLock lock(&mutex_);
  lines_.clear();
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  MutexLock lock(&SinkMutex());
  const LogSink& sink = SinkSlot();
  if (sink) {
    sink(level_, stream_.str());
  } else {
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace warper::util
