// Small statistics helpers shared across modules.
#ifndef WARPER_UTIL_STATS_H_
#define WARPER_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace warper::util {

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& xs);

// Geometric mean; requires all inputs > 0. 0 for empty input.
double GeometricMean(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> xs, double p);

// Median (50th percentile).
double Median(std::vector<double> xs);

// A histogram with normalized bucket frequencies; used by the
// Jensen–Shannon divergence in drift detection.
class NormalizedHistogram {
 public:
  explicit NormalizedHistogram(size_t num_buckets);

  void Add(size_t bucket, double weight = 1.0);
  // Normalizes counts to frequencies summing to 1 (no-op if empty).
  void Normalize();

  size_t num_buckets() const { return freq_.size(); }
  double frequency(size_t bucket) const { return freq_[bucket]; }

 private:
  std::vector<double> freq_;
  double total_ = 0.0;
  bool normalized_ = false;
};

// Symmetric discrete Jensen–Shannon divergence between two normalized
// histograms over the same bucket space, in [0, 1] (natural-log base,
// rescaled). A small epsilon is added to each bucket to avoid log(0),
// following the paper (§3.1 fn. 8).
double JensenShannonDivergence(const NormalizedHistogram& a,
                               const NormalizedHistogram& b);

}  // namespace warper::util

#endif  // WARPER_UTIL_STATS_H_
