// Wall-clock and CPU timers used by the cost accounting in the benches.
#ifndef WARPER_UTIL_TIMER_H_
#define WARPER_UTIL_TIMER_H_

#include <chrono>

namespace warper::util {

// Measures elapsed wall-clock seconds.
class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Accumulates CPU seconds across scoped measurement regions. Used to report
// the paper's Table 6 / Table 11 "CPU usage over the test period" numbers:
// accumulated single-thread CPU time divided by simulated wall time.
class CpuAccumulator {
 public:
  void Add(double seconds) { total_ += seconds; }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

  // Average utilization (0..1) of one core over `period_seconds`.
  double UtilizationOver(double period_seconds) const {
    return period_seconds > 0.0 ? total_ / period_seconds : 0.0;
  }

 private:
  double total_ = 0.0;
};

// RAII helper: adds elapsed wall seconds of the scope to an accumulator.
// (Single-threaded workloads: wall time == CPU time for compute-bound code.)
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(CpuAccumulator* acc) : acc_(acc) {}
  ~ScopedCpuTimer() { acc_->Add(timer_.Seconds()); }

  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  CpuAccumulator* acc_;
  WallTimer timer_;
};

}  // namespace warper::util

#endif  // WARPER_UTIL_TIMER_H_
