// Wall-clock and CPU timers used by the cost accounting in the benches.
#ifndef WARPER_UTIL_TIMER_H_
#define WARPER_UTIL_TIMER_H_

#include <chrono>

#include "util/annotations.h"

namespace warper::util {

// Measures elapsed wall-clock seconds.
class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart() {
    WARPER_ANALYZER_SUPPRESS("determinism-purity",
                             "latency telemetry feeds cost accounting only, "
                             "never computed bytes #10");
    start_ = std::chrono::steady_clock::now();
  }
  double Seconds() const {
    WARPER_ANALYZER_SUPPRESS("determinism-purity",
                             "latency telemetry feeds cost accounting only, "
                             "never computed bytes #10");
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Measures CPU seconds consumed by the *calling thread* between Restart()
// and Seconds() (CLOCK_THREAD_CPUTIME_ID). Unlike wall time this does not
// advance while the thread is blocked or preempted, and it does not include
// work other threads (e.g. pool workers) performed on the caller's behalf —
// pair it with a WallTimer when both views matter.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }
  void Restart() { start_ = Now(); }
  double Seconds() const { return Now() - start_; }

  // Current thread-CPU clock reading in seconds (arbitrary epoch).
  static double Now();

 private:
  double start_ = 0.0;
};

// Accumulates CPU seconds across scoped measurement regions. Used to report
// the paper's Table 6 / Table 11 "CPU usage over the test period" numbers:
// accumulated single-thread CPU time divided by simulated wall time.
class CpuAccumulator {
 public:
  void Add(double seconds) { total_ += seconds; }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

  // Average utilization (0..1) of one core over `period_seconds`.
  double UtilizationOver(double period_seconds) const {
    return period_seconds > 0.0 ? total_ / period_seconds : 0.0;
  }

 private:
  double total_ = 0.0;
};

// RAII helper: adds the scope's *thread CPU* seconds to `cpu` and, when
// given, its wall seconds to `wall`. (Before the thread pool existed this
// class fed wall time into the CPU accumulator — indistinguishable for
// single-threaded compute-bound scopes, an overstatement once scopes block
// on pool workers; the thread-CPU clock keeps the "CPU seconds" accounting
// honest either way.)
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(CpuAccumulator* cpu, CpuAccumulator* wall = nullptr)
      : cpu_(cpu), wall_(wall) {}
  ~ScopedCpuTimer() {
    cpu_->Add(cpu_timer_.Seconds());
    if (wall_ != nullptr) wall_->Add(wall_timer_.Seconds());
  }

  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  CpuAccumulator* cpu_;
  CpuAccumulator* wall_;
  ThreadCpuTimer cpu_timer_;
  WallTimer wall_timer_;
};

}  // namespace warper::util

#endif  // WARPER_UTIL_TIMER_H_
