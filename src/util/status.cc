#include "util/status.h"

namespace warper {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::cerr << "WARPER_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) std::cerr << " — " << extra;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace warper
