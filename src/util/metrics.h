// Process-wide metrics: named counters, gauges and fixed-bucket histograms.
//
// The registry exists so every later perf / scaling PR can be judged against
// measured behaviour instead of end-metrics alone: the adaptation loop, the
// trainer, the thread pool and the annotators all publish here, and the
// bench binaries attach a snapshot to their BENCH_*.json output.
//
// Hot-path contract: a metric handle is looked up once (by name, under a
// mutex) and then incremented lock-free forever after. Counters shard their
// state across cache-line-padded atomic slots indexed by a per-thread id, so
// pool workers hammering the same counter never contend on one cache line.
// Callers cache the handle in a function-local static:
//
//   static util::Counter* calls = util::Metrics().GetCounter("a.calls");
//   calls->Increment();
//
// Handles are never invalidated: the registry owns every metric for the
// process lifetime (there is no unregister), so a cached pointer stays valid
// even across Reset(), which zeroes values but keeps the objects.
#ifndef WARPER_UTIL_METRICS_H_
#define WARPER_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace warper::util {

// A monotonically increasing integer metric, sharded for write-heavy use.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  // Sums the shards; concurrent increments may or may not be included.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  // Enough slots that the pool's handful of workers rarely collide; each
  // shard owns its own cache line so false sharing cannot creep back in.
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static size_t ShardIndex();

  Shard shards_[kShards];
};

// A last-write-wins floating-point metric (pool size, δ_m, queue depth...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(expected, Encode(Decode(expected) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

// A histogram over fixed, caller-supplied upper bounds. A sample lands in
// the first bucket whose bound is >= the sample; samples above every bound
// land in the implicit +inf overflow bucket. Bounds are fixed at first
// registration — re-registering the same name returns the existing
// histogram and ignores the bounds argument.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double sample);

  const std::vector<double>& bounds() const { return bounds_; }
  // The p-quantile (p ∈ [0, 1]) interpolated from the fixed buckets:
  // locates the bucket holding the ⌈p·count⌉-th sample and interpolates
  // linearly between its bounds (the first bucket's lower edge is 0 for
  // non-negative bounds — the latency/error case these histograms serve).
  // Samples in the +inf overflow bucket report the last finite bound.
  // Returns 0 on an empty histogram. Concurrent Observe calls may or may
  // not be included, like every other reader.
  double Quantile(double p) const;
  // Count in bucket `i` (i == bounds().size() is the overflow bucket).
  uint64_t BucketCount(size_t i) const;
  uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  Gauge sum_;  // reuses the CAS-add encoding
};

// A point-in-time copy of every registered metric, safe to serialize while
// the hot paths keep running.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} — the object
  // the bench binaries embed under their "metrics" key.
  std::string ToJson(int indent = 0) const;
};

// The process-wide registry. Registration is mutex-guarded; returned
// pointers are stable for the process lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  // "name value" lines sorted by name — the debugging / logging dump.
  std::string TextDump() const;
  // Zeroes every metric's value; registered handles stay valid.
  void Reset();

 private:
  mutable Mutex mutex_;
  // The maps are guarded; the metric objects they own are not — handles are
  // handed out and hammered lock-free by design (see the hot-path contract
  // above), and each metric type is internally atomic.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      WARPER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      WARPER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      WARPER_GUARDED_BY(mutex_);
};

// The global registry every subsystem publishes to.
MetricsRegistry& Metrics();

}  // namespace warper::util

#endif  // WARPER_UTIL_METRICS_H_
