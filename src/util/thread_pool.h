// A shared fixed-size thread pool.
//
// The paper's tech report notes that "many calls [of Alg. 1] can be
// parallelized"; this pool is the single substrate behind every parallel
// kernel in the tree — blocked MatMul in nn::Matrix, batch annotation in
// storage::ParallelAnnotator, and the per-query passes of the star-join
// domain — so the process never oversubscribes cores no matter how many
// layers go parallel at once.
//
// Determinism: ParallelFor partitions [begin, end) into fixed contiguous
// chunks that depend only on the range, the grain and the worker count —
// never on scheduling — so any caller that keeps per-chunk state separate
// and combines it in chunk order gets bit-identical results to a serial run.
#ifndef WARPER_UTIL_THREAD_POOL_H_
#define WARPER_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/cpu_features.h"
#include "util/mutex.h"
#include "util/status.h"

namespace warper::util {

// Process-wide parallelism knobs, threaded through WarperConfig so a single
// struct controls every parallel layer.
struct ParallelConfig {
  // Worker threads; 0 = hardware concurrency, 1 = fully serial execution.
  int threads = 0;
  // Minimum items per ParallelFor task. Small ranges stay serial.
  size_t grain = 256;
  // When true every parallel kernel must produce bit-identical results to
  // its serial counterpart (fixed partitioning, ordered reductions). All
  // kernels in this tree honor it; turning it off only licenses unordered
  // reductions — and, in the nn kernel layer, SIMD kernels whose FMA /
  // blocked accumulation rounds differently from the scalar reference.
  bool deterministic = true;
  // Which dense-kernel instruction set nn::Matrix dispatches to. kAuto uses
  // the scalar reference kernels when deterministic (bit-exact, portable)
  // and the best CPU-supported SIMD set otherwise; kScalar / kAvx2 pin a
  // path for testing. See util::SimdMode for the full contract.
  SimdMode simd = SimdMode::kAuto;

  // Threads resolved against the hardware (never 0).
  int ResolvedThreads() const;

  // InvalidArgument when threads < 0 or grain == 0.
  Status Validate() const;
};

class ThreadPool {
 public:
  // `num_threads` ≤ 0 uses the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; the future rethrows any exception the task raised.
  WARPER_BLOCKING std::future<void> Submit(std::function<void()> fn);

  // Runs fn(chunk_begin, chunk_end) over a fixed partition of [begin, end)
  // with at least `grain` items per chunk, blocking until every chunk
  // finished. The calling thread works too, so a pool of N workers yields
  // N+1-way parallelism. Ranges smaller than 2·grain — and any call made
  // from inside a pool worker (nested parallelism) — run serially inline.
  // The first exception any chunk throws is rethrown here.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  // The process-wide shared pool. Starts with hardware concurrency; resized
  // by Configure(). Thread-safe.
  static ThreadPool& Global();

  // Resizes the global pool to `config.ResolvedThreads()` workers (no-op
  // when the size already matches). Existing tasks finish first.
  static void Configure(const ParallelConfig& config);

 private:
  void WorkerLoop();

  // Immutable after the constructor returns; WorkerLoop and ParallelFor read
  // it without the lock.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::packaged_task<void()>> tasks_ WARPER_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ WARPER_GUARDED_BY(mutex_) = false;
};

// True on threads owned by any ThreadPool; used to keep nested ParallelFor
// calls serial instead of deadlocking on the shared queue.
bool OnPoolWorkerThread();

}  // namespace warper::util

#endif  // WARPER_UTIL_THREAD_POOL_H_
