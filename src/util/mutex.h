// Annotated mutex / condition-variable wrappers: the compile-time face of
// every locking contract in the tree.
//
// Every mutex in this codebase is a util::Mutex (the invariant linter,
// tools/lint_invariants.py, rejects naked std::mutex outside util/), and
// every field a mutex guards carries WARPER_GUARDED_BY(mu_). Under Clang
// the macros below expand to the thread-safety capability attributes, so a
// -DWARPER_STATIC_ANALYSIS=ON build proves on every compile that no guarded
// field is touched without its lock and no annotated function is called
// without the capabilities it requires — the interleavings TSan can only
// sample become a build-time property. Under GCC (and any compiler without
// the analysis) the macros are no-ops and the wrappers cost exactly a
// std::mutex plus one relaxed atomic store per lock/unlock for owner
// tracking.
//
// Owner tracking is always compiled in: Mutex records the locking thread's
// id so AssertHeld() can turn a violated lock contract into an immediate
// WARPER_CHECK abort at runtime even in builds where the static analysis
// never ran. Bulk mutators of single-writer structures (core::QueryPool)
// call it at their entry points.
//
// Annotation conventions (see DESIGN.md §10 for the full guide):
//   - fields:        int depth_ WARPER_GUARDED_BY(mu_);
//   - entry points:  void Push(T) WARPER_EXCLUDES(mu_);   // takes the lock
//   - internals:     void PushLocked(T) WARPER_REQUIRES(mu_);
//   - capability accessors: Mutex& mu() WARPER_RETURN_CAPABILITY(mu_);
#ifndef WARPER_UTIL_MUTEX_H_
#define WARPER_UTIL_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/annotations.h"
#include "util/status.h"

// ---------------------------------------------------------------------------
// Capability attribute macros. Clang-only; no-ops everywhere else.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define WARPER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WARPER_THREAD_ANNOTATION(x)
#endif

// Declares a type to be a capability ("mutex" in diagnostics).
#define WARPER_CAPABILITY(x) WARPER_THREAD_ANNOTATION(capability(x))
// Declares an RAII type whose constructor acquires and destructor releases.
#define WARPER_SCOPED_CAPABILITY WARPER_THREAD_ANNOTATION(scoped_lockable)
// A field that may only be read/written while holding `x`.
#define WARPER_GUARDED_BY(x) WARPER_THREAD_ANNOTATION(guarded_by(x))
// A pointer field whose *pointee* is guarded by `x`.
#define WARPER_PT_GUARDED_BY(x) WARPER_THREAD_ANNOTATION(pt_guarded_by(x))
// The function acquires / releases the listed capabilities.
#define WARPER_ACQUIRE(...) \
  WARPER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WARPER_RELEASE(...) \
  WARPER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define WARPER_TRY_ACQUIRE(...) \
  WARPER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// The caller must already hold / must NOT hold the listed capabilities.
#define WARPER_REQUIRES(...) \
  WARPER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define WARPER_EXCLUDES(...) WARPER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// The function returns a reference to the capability `x` (so callers can
// write REQUIRES(obj.mu()) against a private mutex member).
#define WARPER_RETURN_CAPABILITY(x) WARPER_THREAD_ANNOTATION(lock_returned(x))
// Asserts (at runtime) that the capability is held; tells the analysis so.
#define WARPER_ASSERT_CAPABILITY(x) \
  WARPER_THREAD_ANNOTATION(assert_capability(x))
// Escape hatch for functions that manage locks in ways the analysis cannot
// follow (CondVar wait internals). Use sparingly and leave a comment.
#define WARPER_NO_THREAD_SAFETY_ANALYSIS \
  WARPER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace warper::util {

class CondVar;

// A std::mutex carrying the "mutex" capability plus always-on owner
// tracking. Non-recursive. Prefer MutexLock over manual Lock()/Unlock().
class WARPER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  WARPER_BLOCKING void Lock() WARPER_ACQUIRE() {
    WARPER_ANALYZER_SUPPRESS("determinism-purity",
                             "owner-tracking thread id is lock-debugging "
                             "telemetry, never computed output #10");
    mu_.lock();
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() WARPER_RELEASE() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  bool TryLock() WARPER_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  // True when the calling thread holds this mutex. Best-effort but exact
  // for the asking thread: only the holder writes its own id, so a true
  // answer cannot be stale and a false answer means "not you".
  bool HeldByCurrentThread() const {
    WARPER_ANALYZER_SUPPRESS("determinism-purity",
                             "owner-tracking thread id is lock-debugging "
                             "telemetry, never computed output #10");
    return holder_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  // Aborts (WARPER_CHECK) unless the calling thread holds the mutex — the
  // runtime twin of WARPER_REQUIRES for builds without the static analysis.
  void AssertHeld() const WARPER_ASSERT_CAPABILITY(this) {
    WARPER_CHECK_MSG(HeldByCurrentThread(),
                     "util::Mutex::AssertHeld: calling thread does not hold "
                     "the mutex");
  }

 private:
  friend class CondVar;

  std::mutex mu_;
  // id() (no thread) when unlocked; the holder's id while locked. Relaxed
  // is enough: the mutex itself orders the store against other threads'
  // loads, and HeldByCurrentThread only promises exactness to the holder.
  std::atomic<std::thread::id> holder_{std::thread::id()};
};

// RAII lock for a whole scope. The scoped-capability annotation lets the
// analysis treat construction as acquire and destruction as release.
class WARPER_SCOPED_CAPABILITY MutexLock {
 public:
  WARPER_BLOCKING explicit MutexLock(Mutex* mu) WARPER_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() WARPER_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to util::Mutex. There are deliberately no
// predicate overloads: a predicate lambda would read guarded state from a
// context the analysis cannot prove holds the lock, so callers write the
// canonical loop instead, which analyzes cleanly:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // All waits require the caller to hold *mu; the mutex is released while
  // blocked and re-held (with owner tracking restored) on return.
  WARPER_BLOCKING void Wait(Mutex* mu) WARPER_REQUIRES(mu);
  WARPER_BLOCKING std::cv_status WaitFor(Mutex* mu,
                                         std::chrono::microseconds timeout)
      WARPER_REQUIRES(mu);
  WARPER_BLOCKING std::cv_status WaitUntil(
      Mutex* mu, std::chrono::steady_clock::time_point deadline)
      WARPER_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace warper::util

#endif  // WARPER_UTIL_MUTEX_H_
