#include "util/trace.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/mutex.h"

namespace warper::util {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct Event {
  const char* name;
  int tid;
  uint64_t start_us;
  uint64_t dur_us;
  const char* arg_keys[ScopedSpan::kMaxArgs];
  double arg_values[ScopedSpan::kMaxArgs];
  size_t num_args;
};

// One thread's event log. Only the owning thread appends; readers
// (export / count) see a consistent prefix through the `committed` counter,
// published with release ordering after the event is fully written. A deque
// never relocates existing elements on push_back, so concurrent reads of
// committed events are safe without a lock on the record path.
struct ThreadBuffer {
  int tid;
  std::deque<Event> events;
  std::atomic<size_t> committed{0};
  // Events before this index were dropped by ClearTrace(); the deque itself
  // is only mutated by the owner, so clearing just advances the floor.
  std::atomic<size_t> floor{0};
};

struct BufferRegistry {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers WARPER_GUARDED_BY(mutex);
  int next_tid WARPER_GUARDED_BY(mutex) = 0;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr in the registry keeps the buffer alive after the thread
  // exits, so short-lived pool workers still contribute their spans.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = Registry();
    MutexLock lock(&r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NowMicros() {
  WARPER_ANALYZER_SUPPRESS("determinism-purity",
                           "trace timestamps are telemetry for the span "
                           "viewer, never computed output #10");
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

// WARPER_TRACE=<path>: collect from process start, export at exit. The
// global thread pool is created after this initializer runs, so its workers
// join (static-destruction order) before the atexit export fires.
const char* g_env_trace_path = nullptr;

struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("WARPER_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    g_env_trace_path = path;
    TraceEpoch();  // pin the epoch before any span
    StartTracing();
    std::atexit([] {
      Status st = ExportTrace(g_env_trace_path);
      if (!st.ok()) {
        WARPER_LOG(Error) << "WARPER_TRACE export failed: " << st.ToString();
      } else {
        WARPER_LOG(Info) << "wrote trace to " << g_env_trace_path;
      }
    });
  }
};
EnvTraceInit g_env_trace_init;

void AppendJsonDouble(std::ostringstream* os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  *os << tmp.str();
}

}  // namespace

void StartTracing() {
  TraceEpoch();
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  BufferRegistry& r = Registry();
  MutexLock lock(&r.mutex);
  for (auto& b : r.buffers) {
    b->floor.store(b->committed.load(std::memory_order_acquire),
                   std::memory_order_relaxed);
  }
}

size_t TraceEventCount() {
  BufferRegistry& r = Registry();
  MutexLock lock(&r.mutex);
  size_t n = 0;
  for (const auto& b : r.buffers) {
    n += b->committed.load(std::memory_order_acquire) -
         b->floor.load(std::memory_order_relaxed);
  }
  return n;
}

std::string TraceToJson() {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  BufferRegistry& r = Registry();
  MutexLock lock(&r.mutex);
  for (const auto& b : r.buffers) {
    size_t hi = b->committed.load(std::memory_order_acquire);
    for (size_t i = b->floor.load(std::memory_order_relaxed); i < hi; ++i) {
      const Event& e = b->events[i];
      os << (first ? "\n" : ",\n");
      first = false;
      os << "{\"name\": \"" << e.name << "\", \"cat\": \"warper\", "
         << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
         << ", \"ts\": " << e.start_us << ", \"dur\": " << e.dur_us;
      if (e.num_args > 0) {
        os << ", \"args\": {";
        for (size_t a = 0; a < e.num_args; ++a) {
          if (a > 0) os << ", ";
          os << "\"" << e.arg_keys[a] << "\": ";
          AppendJsonDouble(&os, e.arg_values[a]);
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << (first ? "" : "\n") << "]}\n";
  return os.str();
}

Status ExportTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  out << TraceToJson();
  out.close();
  if (!out) {
    return Status::Internal("failed writing trace output file: " + path);
  }
  return Status::OK();
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  start_us_ = NowMicros();
  armed_ = true;
}

void ScopedSpan::End() {
  uint64_t end_us = NowMicros();
  ThreadBuffer& buffer = LocalBuffer();
  Event e;
  e.name = name_;
  e.tid = buffer.tid;
  e.start_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.num_args = num_args_;
  for (size_t i = 0; i < num_args_; ++i) {
    e.arg_keys[i] = arg_keys_[i];
    e.arg_values[i] = arg_values_[i];
  }
  buffer.events.push_back(e);
  buffer.committed.store(buffer.events.size(), std::memory_order_release);
}

}  // namespace warper::util
