// Aligned heap allocation for numeric buffers.
//
// The SIMD kernels in nn/ issue 32-byte vector loads; giving every Matrix a
// 64-byte-aligned backing store keeps row 0 (and any packed panel buffer)
// cache-line- and vector-aligned so the kernels never straddle a line at the
// start of a buffer. Alignment is a performance property only — the kernels
// use unaligned loads for interior rows, whose offset depends on cols().
#ifndef WARPER_UTIL_ALIGNED_H_
#define WARPER_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace warper::util {

// Minimal C++17 allocator carrying a compile-time alignment. Drop-in for
// std::vector: `std::vector<double, AlignedAllocator<double, 64>>`.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace warper::util

#endif  // WARPER_UTIL_ALIGNED_H_
