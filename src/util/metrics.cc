#include "util/metrics.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/status.h"

namespace warper::util {
namespace {

// Distributes threads round-robin over the counter shards. The id is
// per-thread, not per-(thread, counter): two threads may still share a shard
// once more than kShards threads exist, which only costs contention, never
// correctness.
std::atomic<size_t> g_next_thread_slot{0};

size_t ThreadSlot() {
  thread_local size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void AppendDouble(std::ostringstream* os, double v) {
  // Shortest round-trip-safe form keeps dumps readable and parseable.
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  *os << tmp.str();
}

}  // namespace

size_t Counter::ShardIndex() { return ThreadSlot() % kShards; }

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  WARPER_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted ascending");
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double sample) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), sample) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(sample);
}

double Histogram::Quantile(double p) const {
  p = std::min(1.0, std::max(0.0, p));
  // One consistent pass over the buckets; total is re-derived from the
  // same reads so a racing Observe cannot push the target past the sum.
  std::vector<uint64_t> counts(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  double target = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    if (counts[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds_.size()) {
      // Overflow bucket has no upper edge; the last finite bound is the
      // best defensible answer.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    double hi = bounds_[i];
    double frac = (target - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

uint64_t Histogram::BucketCount(size_t i) const {
  WARPER_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.Value(); }

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.Reset();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.bucket_counts.reserve(hs.bounds.size() + 1);
    for (size_t i = 0; i <= hs.bounds.size(); ++i) {
      hs.bucket_counts.push_back(h->BucketCount(i));
    }
    hs.count = h->TotalCount();
    hs.sum = h->Sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

std::string MetricsRegistry::TextDump() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) os << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges) {
    os << name << " ";
    AppendDouble(&os, v);
    os << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << name << " count=" << h.count << " sum=";
    AppendDouble(&os, h.sum);
    os << " buckets=[";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ",";
      if (i < h.bounds.size()) {
        os << "le";
        AppendDouble(&os, h.bounds[i]);
      } else {
        os << "inf";
      }
      os << ":" << h.bucket_counts[i];
    }
    os << "]\n";
  }
  return os.str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToJson(int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string pad2 = pad + "  ";
  std::string pad3 = pad2 + "  ";
  std::ostringstream os;
  os << "{\n";

  os << pad2 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n") << pad3 << "\"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "},\n";

  os << pad2 << "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n" : ",\n") << pad3 << "\"" << name << "\": ";
    AppendDouble(&os, v);
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "},\n";

  os << pad2 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << pad3 << "\"" << name
       << "\": {\"count\": " << h.count << ", \"sum\": ";
    AppendDouble(&os, h.sum);
    os << ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ", ";
      AppendDouble(&os, h.bounds[i]);
    }
    os << "], \"buckets\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << h.bucket_counts[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad2) << "}\n";

  os << pad << "}";
  return os.str();
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace warper::util
