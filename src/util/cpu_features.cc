#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define WARPER_X86 1
#endif

namespace warper::util {
namespace {

#ifdef WARPER_X86

// XCR0 bits: SSE (1), AVX ymm (2), AVX-512 opmask/zmm (5..7). AVX is only
// usable when the OS context-switches ymm state; same for zmm.
constexpr unsigned long long kXcr0Ymm = 0x6;        // bits 1|2
constexpr unsigned long long kXcr0Zmm = 0xe6;       // bits 1|2|5|6|7

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;

  bool osxsave = (ecx & (1u << 27)) != 0;
  bool cpu_avx = (ecx & (1u << 28)) != 0;
  bool cpu_fma = (ecx & (1u << 12)) != 0;

  // XGETBV via inline asm: the <immintrin.h> _xgetbv wrapper needs -mxsave,
  // which we don't want to require for the whole util library.
  unsigned long long xcr0 = 0;
  if (osxsave) {
    unsigned lo = 0, hi = 0;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    xcr0 = (static_cast<unsigned long long>(hi) << 32) | lo;
  }
  bool ymm_ok = osxsave && (xcr0 & kXcr0Ymm) == kXcr0Ymm;
  bool zmm_ok = osxsave && (xcr0 & kXcr0Zmm) == kXcr0Zmm;

  f.avx = cpu_avx && ymm_ok;
  f.fma = cpu_fma && ymm_ok;

  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    f.avx2 = ymm_ok && (ebx & (1u << 5)) != 0;
    f.avx512f = zmm_ok && (ebx & (1u << 16)) != 0;
  }
  return f;
}

#else

CpuFeatures Detect() { return CpuFeatures{}; }

#endif  // WARPER_X86

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

SimdLevel BestSupportedSimdLevel() {
  const CpuFeatures& f = GetCpuFeatures();
  if (f.avx2 && f.fma) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace warper::util
