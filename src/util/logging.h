// Minimal leveled logger.
//
// Usage: WARPER_LOG(Info) << "adapted in " << n << " steps";
// The level is a global filter; benches set it to WARN to keep output clean.
#ifndef WARPER_UTIL_LOGGING_H_
#define WARPER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace warper::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is filtered out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace warper::util

#define WARPER_LOG(severity)                                                 \
  (::warper::util::LogLevel::k##severity < ::warper::util::GetLogLevel())    \
      ? (void)0                                                              \
      : ::warper::util::internal::LogVoidify() &                             \
            ::warper::util::internal::LogMessage(                            \
                ::warper::util::LogLevel::k##severity, __FILE__, __LINE__)   \
                .stream()

#endif  // WARPER_UTIL_LOGGING_H_
