// Minimal leveled logger with a pluggable sink.
//
// Usage: WARPER_LOG(Info) << "adapted in " << n << " steps";
// The level is a global filter; benches set it to WARN to keep output clean.
//
// Formatted lines are delivered to the installed LogSink. The default sink
// writes to stderr under a global mutex, so concurrent messages from pool
// threads cannot interleave partial lines. Tests install a CapturingLogSink
// to assert on log output without touching stderr.
#ifndef WARPER_UTIL_LOGGING_H_
#define WARPER_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace warper::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Receives each formatted line (terminated with '\n'). Calls are serialized
// by the logger's global mutex, so sinks need no locking of their own.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

// Installs `sink` as the destination for all subsequent messages and returns
// the previously installed sink (empty when the stderr default was active).
// Passing an empty function restores the stderr default.
LogSink SetLogSink(LogSink sink);

// RAII sink that records every line it sees, for tests. Installs itself on
// construction and restores the previous sink on destruction.
class CapturingLogSink {
 public:
  CapturingLogSink();
  ~CapturingLogSink();

  CapturingLogSink(const CapturingLogSink&) = delete;
  CapturingLogSink& operator=(const CapturingLogSink&) = delete;

  std::vector<std::string> lines() const;
  // All captured lines concatenated.
  std::string str() const;
  void Clear();

 private:
  mutable Mutex mutex_;
  std::vector<std::string> lines_ WARPER_GUARDED_BY(mutex_);
  LogSink previous_;
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is filtered out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace warper::util

#define WARPER_LOG(severity)                                                 \
  (::warper::util::LogLevel::k##severity < ::warper::util::GetLogLevel())    \
      ? (void)0                                                              \
      : ::warper::util::internal::LogVoidify() &                             \
            ::warper::util::internal::LogMessage(                            \
                ::warper::util::LogLevel::k##severity, __FILE__, __LINE__)   \
                .stream()

#endif  // WARPER_UTIL_LOGGING_H_
