// Arrow-style Status / Result<T> error handling.
//
// Fallible public APIs return Status (or Result<T> when they produce a value)
// instead of throwing. Internal invariants use WARPER_CHECK, which aborts with
// a diagnostic: an invariant violation is a bug, not an error to handle.
#ifndef WARPER_UTIL_STATUS_H_
#define WARPER_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace warper {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  // Load-shedding: the serving layer refused the request (queue full).
  kUnavailable,
  // The request's deadline elapsed before it could be served.
  kDeadlineExceeded,
};

// Human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error outcome. Cheap to copy on the OK path. [[nodiscard]]:
// silently dropping a Status swallows the error path — callers must check,
// propagate (WARPER_RETURN_NOT_OK), or explicitly void-cast with a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. Mirrors arrow::Result<T>. [[nodiscard]] for the same
// reason as Status: an unexamined Result is a swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                          // NOLINT(google-explicit-constructor)
      : value_(std::move(status)) {
    if (std::get<Status>(value_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& ValueOrDie() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::get<T>(value_);
  }
  T& ValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::get<T>(value_);
  }
  T MoveValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::MoveValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace warper

// Aborts with file/line when `cond` is false. For programmer errors only.
#define WARPER_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::warper::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                   \
  } while (0)

#define WARPER_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream warper_check_oss;                              \
      warper_check_oss << msg;                                          \
      ::warper::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                      warper_check_oss.str());          \
    }                                                                   \
  } while (0)

// Propagates a non-OK Status from an expression.
#define WARPER_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::warper::Status warper_status_ = (expr);       \
    if (!warper_status_.ok()) return warper_status_; \
  } while (0)

#endif  // WARPER_UTIL_STATUS_H_
