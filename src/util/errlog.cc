#include "util/errlog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace warper::util {
namespace {

void AppendDouble(std::ostringstream* os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  *os << tmp.str();
}

std::string HexKey(uint64_t key) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

double RunningErrorStats::RmsErr() const {
  if (count == 0) return 0.0;
  return std::sqrt(std::max(0.0, sum_sq_err / static_cast<double>(count)));
}

void RunningErrorStats::Observe(double err, double cost, uint64_t tick,
                                double ewma_alpha) {
  ewma_err = count == 0 ? err : ewma_alpha * err + (1.0 - ewma_alpha) * ewma_err;
  ++count;
  sum_err += err;
  sum_sq_err += err * err;
  sum_cost += cost;
  sum_cost_err += cost * err;
  last_seen_tick = std::max(last_seen_tick, tick);
}

void RunningErrorStats::Merge(const RunningErrorStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  double total = static_cast<double>(count + other.count);
  ewma_err = (ewma_err * static_cast<double>(count) +
              other.ewma_err * static_cast<double>(other.count)) /
             total;
  count += other.count;
  sum_err += other.sum_err;
  sum_sq_err += other.sum_sq_err;
  sum_cost += other.sum_cost;
  sum_cost_err += other.sum_cost_err;
  last_seen_tick = std::max(last_seen_tick, other.last_seen_tick);
}

ErrorLog::ErrorLog(const ErrorLogOptions& options) : options_(options) {
  size_t n = std::max<size_t>(1, options.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

void ErrorLog::Record(uint64_t key, double err, double cost, uint64_t tick) {
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mu);
    shard.stats[key].Observe(err, cost, tick, options_.ewma_alpha);
  }
  observations_.fetch_add(1, std::memory_order_relaxed);
}

bool ErrorLog::Lookup(uint64_t key, RunningErrorStats* out) const {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.stats.find(key);
  if (it == shard.stats.end()) return false;
  *out = it->second;
  return true;
}

std::vector<ErrorLog::Entry> ErrorLog::Snapshot() const {
  std::vector<Entry> out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [key, stats] : shard->stats) out.push_back({key, stats});
  }
  return out;
}

std::vector<ErrorLog::Entry> ErrorLog::TopOffenders(size_t k) const {
  std::vector<Entry> all = Snapshot();
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.stats.ewma_err != b.stats.ewma_err) {
      return a.stats.ewma_err > b.stats.ewma_err;
    }
    return a.key < b.key;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

RunningErrorStats ErrorLog::Aggregate() const {
  RunningErrorStats total;
  for (const Entry& e : Snapshot()) total.Merge(e.stats);
  return total;
}

size_t ErrorLog::NumKeys() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    n += shard->stats.size();
  }
  return n;
}

void ErrorLog::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->stats.clear();
  }
  observations_.store(0, std::memory_order_relaxed);
}

// --- Registry ---

namespace {

struct ErrLogRegistry {
  Mutex mu;
  struct Entry {
    std::string name;
    std::weak_ptr<ErrorLog> log;
    // Strong reference when WARPER_ERRLOG retention is on, so the at-exit
    // dump sees logs whose owners main() already destroyed.
    std::shared_ptr<ErrorLog> retained;
  };
  std::vector<Entry> entries WARPER_GUARDED_BY(mu);
  bool retain WARPER_GUARDED_BY(mu) = false;
};

ErrLogRegistry& Registry() {
  static ErrLogRegistry* registry = new ErrLogRegistry();
  return *registry;
}

// WARPER_ERRLOG=<path>: retain registered logs from process start, export
// the per-template stats at exit — same lifecycle as WARPER_TRACE.
const char* g_env_errlog_path = nullptr;

struct EnvErrLogInit {
  EnvErrLogInit() {
    const char* path = std::getenv("WARPER_ERRLOG");
    if (path == nullptr || path[0] == '\0') return;
    g_env_errlog_path = path;
    {
      ErrLogRegistry& r = Registry();
      MutexLock lock(&r.mu);
      r.retain = true;
    }
    std::atexit([] {
      Status st = ExportErrLogs(g_env_errlog_path);
      if (!st.ok()) {
        WARPER_LOG(Error) << "WARPER_ERRLOG export failed: " << st.ToString();
      } else {
        WARPER_LOG(Info) << "wrote error log to " << g_env_errlog_path;
      }
    });
  }
};
EnvErrLogInit g_env_errlog_init;

// Live (name, log) pairs in registration order.
std::vector<std::pair<std::string, std::shared_ptr<ErrorLog>>> LiveLogs() {
  std::vector<std::pair<std::string, std::shared_ptr<ErrorLog>>> out;
  ErrLogRegistry& r = Registry();
  MutexLock lock(&r.mu);
  for (const auto& e : r.entries) {
    std::shared_ptr<ErrorLog> log = e.log.lock();
    if (log != nullptr) out.emplace_back(e.name, std::move(log));
  }
  return out;
}

}  // namespace

std::shared_ptr<ErrorLog> NewRegisteredErrorLog(const std::string& name,
                                                const ErrorLogOptions& options) {
  auto log = std::make_shared<ErrorLog>(options);
  if (name.empty()) return log;
  ErrLogRegistry& r = Registry();
  MutexLock lock(&r.mu);
  // Drop dead entries so long-running test processes don't accumulate.
  r.entries.erase(std::remove_if(r.entries.begin(), r.entries.end(),
                                 [](const ErrLogRegistry::Entry& e) {
                                   return e.retained == nullptr &&
                                          e.log.expired();
                                 }),
                  r.entries.end());
  std::string unique = name;
  for (size_t suffix = 2;; ++suffix) {
    bool taken = false;
    for (const auto& e : r.entries) {
      if (e.name == unique) {
        taken = true;
        break;
      }
    }
    if (!taken) break;
    unique = name + "#" + std::to_string(suffix);
  }
  r.entries.push_back(
      {unique, log, r.retain ? log : std::shared_ptr<ErrorLog>()});
  return log;
}

std::string ErrLogsToJson(int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string pad2 = pad + "  ";
  std::string pad3 = pad2 + "  ";
  std::string pad4 = pad3 + "  ";
  std::ostringstream os;
  os << "{\n" << pad2 << "\"logs\": [";
  bool first_log = true;
  for (const auto& [name, log] : LiveLogs()) {
    os << (first_log ? "\n" : ",\n") << pad3 << "{\"name\": \"" << name
       << "\", \"observations\": " << log->Observations()
       << ", \"templates\": [";
    bool first_t = true;
    for (const ErrorLog::Entry& e :
         log->TopOffenders(std::numeric_limits<size_t>::max())) {
      os << (first_t ? "\n" : ",\n") << pad4 << "{\"fingerprint\": \""
         << HexKey(e.key) << "\", \"count\": " << e.stats.count
         << ", \"mean\": ";
      AppendDouble(&os, e.stats.MeanErr());
      os << ", \"rms\": ";
      AppendDouble(&os, e.stats.RmsErr());
      os << ", \"ewma\": ";
      AppendDouble(&os, e.stats.ewma_err);
      os << ", \"cost_weighted\": ";
      AppendDouble(&os, e.stats.CostWeightedErr());
      os << ", \"last_seen_tick\": " << e.stats.last_seen_tick << "}";
      first_t = false;
    }
    os << (first_t ? "" : "\n" + pad3) << "]}";
    first_log = false;
  }
  os << (first_log ? "" : "\n" + pad2) << "]\n" << pad << "}";
  return os.str();
}

std::string ErrLogsTextDump(size_t top_k) {
  std::ostringstream os;
  for (const auto& [name, log] : LiveLogs()) {
    os << name << ": " << log->NumKeys() << " template(s), "
       << log->Observations() << " observation(s)\n";
    char line[160];
    std::snprintf(line, sizeof(line), "  %-18s %8s %8s %8s %8s %8s %6s\n",
                  "template", "count", "mean", "rms", "ewma", "cost-wt",
                  "seen");
    os << line;
    for (const ErrorLog::Entry& e : log->TopOffenders(top_k)) {
      std::snprintf(line, sizeof(line),
                    "  %-18s %8llu %8.3f %8.3f %8.3f %8.3f %6llu\n",
                    HexKey(e.key).c_str(),
                    static_cast<unsigned long long>(e.stats.count),
                    e.stats.MeanErr(), e.stats.RmsErr(), e.stats.ewma_err,
                    e.stats.CostWeightedErr(),
                    static_cast<unsigned long long>(e.stats.last_seen_tick));
      os << line;
    }
  }
  return os.str();
}

Status ExportErrLogs(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("ExportErrLogs: cannot open " + path);
  }
  out << ErrLogsToJson() << "\n";
  out.close();
  if (!out.good()) {
    return Status::Internal("ExportErrLogs: write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace warper::util
