// Runtime CPU feature detection for the SIMD kernel dispatcher.
//
// The nn kernel layer ships several implementations of the same dense
// kernels (scalar, AVX2+FMA) in one binary; at startup the dispatcher picks
// the fastest set the *running* CPU supports, so a binary built on an AVX2
// box still runs (on the scalar path) anywhere. Detection happens once and
// is cached; the config override (`ParallelConfig::simd`) exists so tests
// and benches can pin a specific path.
#ifndef WARPER_UTIL_CPU_FEATURES_H_
#define WARPER_UTIL_CPU_FEATURES_H_

namespace warper::util {

// Raw feature bits as reported by CPUID (x86) — all false elsewhere.
// `avx2` / `avx512f` are only set when the OS also saves the corresponding
// register state (XGETBV), i.e. when the instructions are actually usable.
struct CpuFeatures {
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
};

// Queries CPUID once and caches the result. Thread-safe.
const CpuFeatures& GetCpuFeatures();

// The kernel instruction sets this tree implements, best-last.
enum class SimdLevel {
  kScalar,
  kAvx2,  // AVX2 + FMA
};

// Best level the running CPU can execute (kAvx2 needs both AVX2 and FMA).
// Whether the *binary* contains AVX2 kernels is a separate question answered
// by nn::internal::Avx2KernelsCompiled().
SimdLevel BestSupportedSimdLevel();

const char* SimdLevelName(SimdLevel level);

// Per-config dispatch override, threaded through ParallelConfig::simd.
//  kAuto   — deterministic configs stay on scalar (bit-exact, portable);
//            non-deterministic configs take the best supported level. The
//            WARPER_SIMD env var (scalar|avx2|auto) refines kAuto for
//            testing without a recompile.
//  kScalar — always the scalar reference kernels.
//  kAvx2   — AVX2+FMA kernels even when deterministic=true (explicit
//            override wins); ParallelConfig::Validate rejects it on CPUs
//            without AVX2+FMA.
enum class SimdMode {
  kAuto,
  kScalar,
  kAvx2,
};

const char* SimdModeName(SimdMode mode);

}  // namespace warper::util

#endif  // WARPER_UTIL_CPU_FEATURES_H_
