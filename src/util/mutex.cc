#include "util/mutex.h"

namespace warper::util {

// The wait family adopts the already-locked inner std::mutex into a
// unique_lock for std::condition_variable, then releases the unique_lock
// before returning so ownership stays with the caller's Mutex/MutexLock.
// Owner tracking must be cleared across the blocked window (the mutex is
// genuinely unlocked there) and restored before returning. The analysis
// cannot follow the adopt/release dance, hence the explicit opt-outs —
// the declarations in mutex.h still carry WARPER_REQUIRES(mu), which is
// what callers are checked against.

void CondVar::Wait(Mutex* mu) WARPER_NO_THREAD_SAFETY_ANALYSIS {
  mu->holder_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mu->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

std::cv_status CondVar::WaitFor(Mutex* mu, std::chrono::microseconds timeout)
    WARPER_NO_THREAD_SAFETY_ANALYSIS {
  mu->holder_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  std::cv_status status = cv_.wait_for(lock, timeout);
  lock.release();
  mu->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return status;
}

std::cv_status CondVar::WaitUntil(
    Mutex* mu, std::chrono::steady_clock::time_point deadline)
    WARPER_NO_THREAD_SAFETY_ANALYSIS {
  mu->holder_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  mu->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return status;
}

}  // namespace warper::util
