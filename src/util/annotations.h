#ifndef WARPER_UTIL_ANNOTATIONS_H_
#define WARPER_UTIL_ANNOTATIONS_H_

// Semantic contract annotations, checked by tools/warper_analyzer (see
// DESIGN.md §16). They generate no code: under Clang they lower to
// [[clang::annotate]] attributes the clang frontend reads from the AST;
// under other compilers they vanish (the analyzer's textual frontend
// recognizes the macro tokens themselves).
//
//   WARPER_DETERMINISTIC  The function (and everything it calls) must be a
//                         pure function of its inputs + seeds: no wall
//                         clocks, no ambient randomness, no thread ids, no
//                         pointer-value-as-data. Replays must be exact.
//   WARPER_HOT_PATH       The function (and everything it calls) runs on
//                         the serving fast path: no locks, no heap
//                         allocation, no WARPER_BLOCKING callee.
//   WARPER_BLOCKING       The function may block (locks, condition waits,
//                         queue handoffs). Reaching one from a
//                         WARPER_HOT_PATH function is a finding; an RCU
//                         snapshot borrow must not live across a call to
//                         one.
//
// Place them at the start of the declaration:
//   WARPER_HOT_PATH std::shared_ptr<const ModelSnapshot> Current() const;
//
// WARPER_ANALYZER_SUPPRESS("rule", "reason #NNN") is a statement placed
// inside a function body. It suppresses that rule for the function AND for
// everything only reachable through it (a barrier), so a deliberately
// amortized slow path (e.g. a function-static handle cache) does not leak
// findings into every caller. The reason must cite an issue number; the
// analyzer reports an unbaselinable `bad-suppression` finding otherwise.

#if defined(__clang__)
#define WARPER_DETERMINISTIC [[clang::annotate("warper::deterministic")]]
#define WARPER_HOT_PATH [[clang::annotate("warper::hot_path")]]
#define WARPER_BLOCKING [[clang::annotate("warper::blocking")]]
#else
#define WARPER_DETERMINISTIC
#define WARPER_HOT_PATH
#define WARPER_BLOCKING
#endif

// The sizeof of the concatenated literals forces both arguments to be
// string literals at compile time; the statement itself compiles away.
#define WARPER_ANALYZER_SUPPRESS(rule, reason) \
  static_assert(sizeof(rule "" reason "") > 0, "suppression args")

#endif  // WARPER_UTIL_ANNOTATIONS_H_
