// Scoped trace spans exportable as Chrome trace-event JSON.
//
// WARPER_SPAN("phase_name") opens an RAII span; on destruction the complete
// event (name, thread, start, duration, args) is appended to a per-thread
// buffer that only its owning thread ever writes — recording takes no locks
// and does not allocate once the thread's buffer chunk exists. Span names
// must be string literals (the buffer stores the pointer, not a copy).
//
// Tracing is off by default. When the WARPER_TRACE=<path> environment
// variable is set, collection starts at process start and the trace is
// written to <path> at exit; programs can also call StartTracing() /
// ExportTrace() explicitly. With tracing disabled a span is two relaxed
// atomic loads and no clock reads — cheap enough to leave in every phase of
// the adaptation loop.
//
// Load the exported file in chrome://tracing or https://ui.perfetto.dev.
#ifndef WARPER_UTIL_TRACE_H_
#define WARPER_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace warper::util {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

// True while spans are being recorded. Branch-cheap: one relaxed load.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Starts / stops collection. Stopping keeps already-recorded events so they
// can still be exported; StartTracing does not clear them either — call
// ClearTrace() for a fresh run.
void StartTracing();
void StopTracing();

// Drops every recorded event (all thread buffers).
void ClearTrace();

// Number of events recorded so far across all threads.
size_t TraceEventCount();

// Serializes every recorded event as a Chrome trace-event JSON document.
std::string TraceToJson();

// Writes TraceToJson() to `path`; a non-OK Status when it cannot be written.
Status ExportTrace(const std::string& path);

// RAII span. The name must outlive the program (use string literals). Up to
// kMaxArgs numeric args may be attached; extra ones are dropped.
class ScopedSpan {
 public:
  static constexpr size_t kMaxArgs = 4;

  explicit ScopedSpan(const char* name) {
    if (TraceEnabled()) Begin(name);
  }
  ~ScopedSpan() {
    if (armed_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches "key": value to the span's args. Key must be a string literal.
  void Arg(const char* key, double value) {
    if (armed_ && num_args_ < kMaxArgs) {
      arg_keys_[num_args_] = key;
      arg_values_[num_args_] = value;
      ++num_args_;
    }
  }

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  const char* arg_keys_[kMaxArgs] = {};
  double arg_values_[kMaxArgs] = {};
  size_t num_args_ = 0;
  bool armed_ = false;
};

}  // namespace warper::util

// Span over the rest of the enclosing scope. The variable name embeds the
// line so two spans can coexist in one scope.
#define WARPER_SPAN_CONCAT2(a, b) a##b
#define WARPER_SPAN_CONCAT(a, b) WARPER_SPAN_CONCAT2(a, b)
#define WARPER_SPAN(name) \
  ::warper::util::ScopedSpan WARPER_SPAN_CONCAT(warper_span_, __LINE__)(name)

#endif  // WARPER_UTIL_TRACE_H_
