// Scalar reference kernels — the deterministic dispatch path.
//
// The GEMM-family loops are carried over verbatim from the pre-dispatch
// Matrix implementation (i-k-j order, k blocked at 256, zero-skip on A), and
// the epilogue kernels replicate the exact per-element expressions the MLP
// used before fusion, so this table reproduces the historical results bit
// for bit. Do not "optimize" these loops: they are the portability and
// reproducibility baseline the SIMD tables are tested against.
#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/annotations.h"

namespace warper::nn::internal {
namespace {

// B-row block height: one block of B rows stays L2-resident while every
// output row of the slice streams over it.
constexpr size_t kKBlock = 256;

WARPER_DETERMINISTIC void MatMulRangeScalar(const double* a, size_t a_cols, const double* b,
                       size_t b_cols, double* out, size_t r0, size_t r1) {
  for (size_t kb = 0; kb < a_cols; kb += kKBlock) {
    size_t kend = std::min(a_cols, kb + kKBlock);
    for (size_t i = r0; i < r1; ++i) {
      double* orow = &out[i * b_cols];
      for (size_t k = kb; k < kend; ++k) {
        double av = a[i * a_cols + k];
        if (av == 0.0) continue;
        const double* brow = &b[k * b_cols];
        for (size_t j = 0; j < b_cols; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

WARPER_DETERMINISTIC void TransposeMatMulRangeScalar(const double* a, size_t a_rows, size_t a_cols,
                                const double* b, size_t b_cols, double* out,
                                size_t i0, size_t i1) {
  for (size_t kb = 0; kb < a_rows; kb += kKBlock) {
    size_t kend = std::min(a_rows, kb + kKBlock);
    for (size_t k = kb; k < kend; ++k) {
      const double* arow = &a[k * a_cols];
      const double* brow = &b[k * b_cols];
      for (size_t i = i0; i < i1; ++i) {
        double av = arow[i];
        if (av == 0.0) continue;
        double* orow = &out[i * b_cols];
        for (size_t j = 0; j < b_cols; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

WARPER_DETERMINISTIC void MatMulTransposeRangeScalar(const double* a, size_t a_cols,
                                const double* b, size_t b_rows, double* out,
                                size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const double* arow = &a[i * a_cols];
    for (size_t j = 0; j < b_rows; ++j) {
      const double* brow = &b[j * a_cols];
      double acc = 0.0;
      for (size_t k = 0; k < a_cols; ++k) acc += arow[k] * brow[k];
      out[i * b_rows + j] = acc;
    }
  }
}

WARPER_DETERMINISTIC void BiasActRangeScalar(double* out, size_t cols, const double* bias,
                        Activation act, size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    double* row = &out[r * cols];
    for (size_t c = 0; c < cols; ++c) {
      double v = row[c] + bias[c];
      switch (act) {
        case Activation::kIdentity:
          break;
        case Activation::kRelu:
          v = v > 0.0 ? v : 0.0;
          break;
        case Activation::kLeakyRelu:
          v = v > 0.0 ? v : kLeakyReluSlope * v;
          break;
        case Activation::kSigmoid:
          v = 1.0 / (1.0 + std::exp(-v));
          break;
        case Activation::kTanh:
          v = std::tanh(v);
          break;
      }
      row[c] = v;
    }
  }
}

WARPER_DETERMINISTIC void ActGradScalar(Activation act, const double* post, double* grad,
                   size_t n) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) grad[i] *= post[i] > 0.0 ? 1.0 : 0.0;
      return;
    case Activation::kLeakyRelu:
      for (size_t i = 0; i < n; ++i) {
        grad[i] *= post[i] > 0.0 ? 1.0 : kLeakyReluSlope;
      }
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) grad[i] *= post[i] * (1.0 - post[i]);
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) grad[i] *= 1.0 - post[i] * post[i];
      return;
  }
}

WARPER_DETERMINISTIC void AddRowBroadcastScalar(double* data, size_t rows, size_t cols,
                           const double* bias) {
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) data[r * cols + c] += bias[c];
  }
}

WARPER_DETERMINISTIC void ColumnSumsScalar(const double* data, size_t rows, size_t cols,
                      double* sums) {
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) sums[c] += data[r * cols + c];
  }
}

WARPER_DETERMINISTIC void ScaleScalar(double* data, size_t n, double s) {
  for (size_t i = 0; i < n; ++i) data[i] *= s;
}

WARPER_DETERMINISTIC double SquaredNormScalar(const double* data, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += data[i] * data[i];
  return acc;
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      "scalar",
      MatMulRangeScalar,
      TransposeMatMulRangeScalar,
      MatMulTransposeRangeScalar,
      BiasActRangeScalar,
      ActGradScalar,
      AddRowBroadcastScalar,
      ColumnSumsScalar,
      ScaleScalar,
      SquaredNormScalar,
  };
  return table;
}

}  // namespace warper::nn::internal
