// Internal dense-kernel table for nn::Matrix.
//
// Every numeric inner loop behind the Matrix API lives in one of these
// tables; Matrix methods only handle shape checks and row-range dispatch
// onto the shared thread pool, then call through the installed table. Two
// implementations ship in the binary:
//
//   ScalarKernels() — the reference loops, arithmetic-identical to the
//     pre-SIMD tree. This is the deterministic path: results are bit-exact
//     across machines and across PR generations.
//   Avx2Kernels()   — AVX2+FMA micro-kernels with a cache-blocked packed
//     B panel for the main GEMM. FMA contraction and register-blocked
//     accumulation round differently from the scalar loops, so this path
//     agrees with scalar only to a relative tolerance (~1e-12 at the MLP's
//     shapes; see DESIGN.md "Kernel dispatch & SIMD").
//
// The *range* kernels own a contiguous slice of output rows, so any row
// partition (serial or ParallelFor) produces the same bits for a given
// table: parallel-vs-serial determinism holds on both paths; only
// scalar-vs-SIMD equality is approximate.
//
// Callers outside src/nn should use the Matrix API, not this header.
#ifndef WARPER_NN_KERNELS_H_
#define WARPER_NN_KERNELS_H_

#include <cstddef>

#include "nn/matrix.h"

namespace warper::nn::internal {

struct KernelTable {
  // Dispatch-table name as reported by ActiveKernelName().
  const char* name;

  // out[r0..r1) += A[r0..r1) × B; out is rows(A)×b_cols, zeroed by caller.
  void (*matmul_range)(const double* a, size_t a_cols, const double* b,
                       size_t b_cols, double* out, size_t r0, size_t r1);

  // out[i0..i1) += Aᵀ[i0..i1) × B, where i indexes columns of A (rows of
  // the a_cols×b_cols output). A is a_rows×a_cols, B is a_rows×b_cols.
  void (*transpose_matmul_range)(const double* a, size_t a_rows,
                                 size_t a_cols, const double* b, size_t b_cols,
                                 double* out, size_t i0, size_t i1);

  // out[r0..r1) = A[r0..r1) × Bᵀ; B is b_rows×a_cols.
  void (*matmul_transpose_range)(const double* a, size_t a_cols,
                                 const double* b, size_t b_rows, double* out,
                                 size_t r0, size_t r1);

  // Fused MLP epilogue over rows [r0, r1): out[r][c] = act(out[r][c] +
  // bias[c]). Runs inside the same row-range task as matmul_range so each
  // output slice gets bias+activation applied while still cache-hot.
  void (*bias_act_range)(double* out, size_t cols, const double* bias,
                         Activation act, size_t r0, size_t r1);

  // grad[i] *= act'(post[i]) over n elements, with the derivative expressed
  // through the post-activation value (all supported activations admit it).
  void (*act_grad)(Activation act, const double* post, double* grad, size_t n);

  // data[r][c] += bias[c] for every row.
  void (*add_row_broadcast)(double* data, size_t rows, size_t cols,
                            const double* bias);

  // sums[c] = Σ_r data[r][c]; sums is zeroed by the caller.
  void (*column_sums)(const double* data, size_t rows, size_t cols,
                      double* sums);

  // data[i] *= s.
  void (*scale)(double* data, size_t n, double s);

  // Σ data[i]².
  double (*squared_norm)(const double* data, size_t n);
};

const KernelTable& ScalarKernels();

// The AVX2+FMA table. When the binary was built without AVX2 support (non-
// x86 target or a compiler lacking -mavx2/-mfma) this aliases the scalar
// table; Avx2KernelsCompiled() tells the dispatcher which case it got.
const KernelTable& Avx2Kernels();
bool Avx2KernelsCompiled();

}  // namespace warper::nn::internal

#endif  // WARPER_NN_KERNELS_H_
