#include "nn/mlp.h"

#include <cmath>

#include "util/status.h"

namespace warper::nn {

Mlp::Mlp(const MlpConfig& config, util::Rng* rng) : config_(config) {
  WARPER_CHECK_MSG(config.layer_sizes.size() >= 2,
                   "MLP needs at least input and output sizes");
  for (size_t i = 0; i + 1 < config.layer_sizes.size(); ++i) {
    size_t in = config.layer_sizes[i];
    size_t out = config.layer_sizes[i + 1];
    Layer layer;
    layer.w = Matrix::Xavier(in, out, rng);
    layer.b.assign(out, 0.0);
    layer.gw = Matrix(in, out);
    layer.gb.assign(out, 0.0);
    layer.mw = Matrix(in, out);
    layer.vw = Matrix(in, out);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

Matrix Mlp::Forward(const Matrix& input) {
  WARPER_CHECK_MSG(input.cols() == input_size(),
                   "MLP forward: got " << input.cols() << " features, expect "
                                       << input_size());
  cached_inputs_.clear();
  cached_outputs_.clear();
  Matrix x = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    cached_inputs_.push_back(x);
    Activation act = (i + 1 == layers_.size()) ? config_.output_activation
                                               : config_.hidden_activation;
    // Fused GEMM + bias + activation: one pass over the layer output.
    Matrix y = x.MatMulBiasAct(layers_[i].w, layers_[i].b, act);
    cached_outputs_.push_back(y);
    x = std::move(y);
  }
  return x;
}

Matrix Mlp::Predict(const Matrix& input) const {
  WARPER_CHECK(input.cols() == input_size());
  Matrix x = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Activation act = (i + 1 == layers_.size()) ? config_.output_activation
                                               : config_.hidden_activation;
    x = x.MatMulBiasAct(layers_[i].w, layers_[i].b, act);
  }
  return x;
}

Matrix Mlp::Backward(const Matrix& grad_output) {
  WARPER_CHECK_MSG(cached_outputs_.size() == layers_.size(),
                   "Backward called without a preceding Forward");
  Matrix grad = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    Activation act = (i + 1 == layers_.size()) ? config_.output_activation
                                               : config_.hidden_activation;
    ActivationGradInPlace(act, cached_outputs_[i], &grad);
    // dW += Xᵀ · dY; db += colsum(dY); dX = dY · Wᵀ.
    Matrix gw = cached_inputs_[i].TransposeMatMul(grad);
    layers_[i].gw.Add(gw);
    std::vector<double> gb = grad.ColumnSums();
    for (size_t c = 0; c < gb.size(); ++c) layers_[i].gb[c] += gb[c];
    grad = grad.MatMulTranspose(layers_[i].w);
  }
  return grad;
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) {
    layer.gw.Scale(0.0);
    for (double& g : layer.gb) g = 0.0;
  }
}

void Mlp::Step(const OptimizerConfig& opt, double learning_rate) {
  if (opt.kind == OptimizerKind::kSgd) {
    for (auto& layer : layers_) {
      for (size_t i = 0; i < layer.w.data().size(); ++i) {
        layer.w.data()[i] -= learning_rate * layer.gw.data()[i];
      }
      for (size_t i = 0; i < layer.b.size(); ++i) {
        layer.b[i] -= learning_rate * layer.gb[i];
      }
    }
  } else {
    ++adam_step_;
    double bc1 = 1.0 - std::pow(opt.beta1, static_cast<double>(adam_step_));
    double bc2 = 1.0 - std::pow(opt.beta2, static_cast<double>(adam_step_));
    for (auto& layer : layers_) {
      for (size_t i = 0; i < layer.w.data().size(); ++i) {
        double g = layer.gw.data()[i];
        double& m = layer.mw.data()[i];
        double& v = layer.vw.data()[i];
        m = opt.beta1 * m + (1.0 - opt.beta1) * g;
        v = opt.beta2 * v + (1.0 - opt.beta2) * g * g;
        layer.w.data()[i] -=
            learning_rate * (m / bc1) / (std::sqrt(v / bc2) + opt.epsilon);
      }
      for (size_t i = 0; i < layer.b.size(); ++i) {
        double g = layer.gb[i];
        double& m = layer.mb[i];
        double& v = layer.vb[i];
        m = opt.beta1 * m + (1.0 - opt.beta1) * g;
        v = opt.beta2 * v + (1.0 - opt.beta2) * g * g;
        layer.b[i] -=
            learning_rate * (m / bc1) / (std::sqrt(v / bc2) + opt.epsilon);
      }
    }
  }
  cached_inputs_.clear();
  cached_outputs_.clear();
}

size_t Mlp::ParameterCount() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.w.rows() * layer.w.cols() + layer.b.size();
  }
  return n;
}

std::vector<double> Mlp::GetParameters() const {
  std::vector<double> params;
  params.reserve(ParameterCount());
  for (const auto& layer : layers_) {
    params.insert(params.end(), layer.w.data().begin(), layer.w.data().end());
    params.insert(params.end(), layer.b.begin(), layer.b.end());
  }
  return params;
}

void Mlp::SetParameters(const std::vector<double>& params) {
  WARPER_CHECK(params.size() == ParameterCount());
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (double& v : layer.w.data()) v = params[offset++];
    for (double& v : layer.b) v = params[offset++];
  }
}

}  // namespace warper::nn
