#include "nn/losses.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::nn {

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  WARPER_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  WARPER_CHECK(pred.rows() > 0);
  *grad = Matrix(pred.rows(), pred.cols());
  double loss = 0.0;
  double inv_n = 1.0 / static_cast<double>(pred.rows());
  for (size_t i = 0; i < pred.data().size(); ++i) {
    double d = pred.data()[i] - target.data()[i];
    loss += d * d;
    grad->data()[i] = 2.0 * d * inv_n;
  }
  return loss * inv_n;
}

double L1Loss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  WARPER_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  WARPER_CHECK(pred.rows() > 0);
  *grad = Matrix(pred.rows(), pred.cols());
  double loss = 0.0;
  double inv_n = 1.0 / static_cast<double>(pred.rows());
  for (size_t i = 0; i < pred.data().size(); ++i) {
    double d = pred.data()[i] - target.data()[i];
    loss += std::abs(d);
    grad->data()[i] = (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) * inv_n;
  }
  return loss * inv_n;
}

Matrix Softmax(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    double max_logit = logits.At(r, 0);
    for (size_t c = 1; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, logits.At(r, c));
    }
    double z = 0.0;
    for (size_t c = 0; c < logits.cols(); ++c) {
      double e = std::exp(logits.At(r, c) - max_logit);
      probs.At(r, c) = e;
      z += e;
    }
    for (size_t c = 0; c < logits.cols(); ++c) probs.At(r, c) /= z;
  }
  return probs;
}

double SoftmaxCrossEntropyLoss(const Matrix& logits,
                               const std::vector<size_t>& labels,
                               Matrix* grad) {
  WARPER_CHECK(logits.rows() == labels.size());
  WARPER_CHECK(logits.rows() > 0);
  Matrix probs = Softmax(logits);
  *grad = probs;
  double loss = 0.0;
  double inv_n = 1.0 / static_cast<double>(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    WARPER_CHECK(labels[r] < logits.cols());
    loss += -std::log(std::max(probs.At(r, labels[r]), 1e-12));
    grad->At(r, labels[r]) -= 1.0;
  }
  grad->Scale(inv_n);
  return loss * inv_n;
}

}  // namespace warper::nn
