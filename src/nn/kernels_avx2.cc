// AVX2+FMA kernels — the fast dispatch path.
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/nn/CMakeLists.txt); everything else in the binary stays baseline
// x86-64, and util::GetCpuFeatures() gates execution at runtime, so the
// binary is portable. When the compiler can't target AVX2 (non-x86 cross
// build) the file degrades to an alias of the scalar table.
//
// GEMM design (C += A×B, row-major, one task owns rows [r0, r1)):
//   - k is blocked at kKc = 256 rows of B; each block of B is packed once
//     per task into a 64-byte-aligned thread_local buffer, laid out as
//     panels of kNr = 8 columns so the micro-kernel streams it with aligned
//     contiguous loads. Ragged right edges are zero-padded in the pack (the
//     extra lanes multiply into accumulators that are never stored).
//   - The micro-kernel computes an MR×8 tile (MR ≤ 4) in registers:
//     2 ymm accumulators per row, one broadcast of A per row per k, FMA
//     contraction — 8 accumulators + 2 B vectors + 1 broadcast = 11 of the
//     16 ymm registers.
//   - Accumulation order is fixed by the blocking alone, never by the
//     thread count, so parallel runs are bit-identical to serial runs on
//     this path too. FMA and register accumulation do round differently
//     from the scalar loops — that is the documented scalar↔SIMD tolerance.
//
// TransposeMatMul reuses the same blocked GEMM by first transposing its
// slice of A into a thread_local buffer (O(m·k) copy vs O(m·k·n) math).
// MatMulTranspose is a row-dot kernel with 4-way split accumulators.
#include "nn/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(WARPER_BUILD_AVX2)
#define WARPER_AVX2_IMPL 1
#endif

#ifdef WARPER_AVX2_IMPL

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/aligned.h"

namespace warper::nn::internal {
namespace {

using Buffer = std::vector<double, util::AlignedAllocator<double, 64>>;

constexpr size_t kKc = 256;  // B-panel rows per k block
constexpr size_t kMr = 4;    // micro-kernel rows
constexpr size_t kNr = 8;    // micro-kernel cols (2 ymm of doubles)

// Per-worker scratch: reused across calls, so steady-state GEMMs allocate
// nothing. thread_local gives every pool worker its own panel.
thread_local Buffer t_pack_b;
thread_local Buffer t_pack_at;

// Packs B[kb..kend) × [0..n) into kNr-column panels: panel p holds columns
// [p·kNr, p·kNr + kNr) contiguously per k, zero-padded past n.
void PackB(const double* b, size_t ldb, size_t kb, size_t kend, size_t n,
           double* packed) {
  size_t kc = kend - kb;
  size_t panel = 0;
  for (size_t j0 = 0; j0 < n; j0 += kNr, ++panel) {
    size_t w = std::min(kNr, n - j0);
    double* dst = packed + panel * kc * kNr;
    for (size_t k = 0; k < kc; ++k) {
      const double* src = b + (kb + k) * ldb + j0;
      size_t j = 0;
      for (; j < w; ++j) dst[k * kNr + j] = src[j];
      for (; j < kNr; ++j) dst[k * kNr + j] = 0.0;
    }
  }
}

// C[0..MR)×[0..w) += A-tile × packed-B-panel over kc contraction steps.
// `a` points at A[row0][kb]; `bp` at the panel; `c` at C[row0][j0].
template <int MR>
void MicroKernel(size_t kc, const double* a, size_t lda, const double* bp,
                 double* c, size_t ldc, size_t w) {
  __m256d acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_setzero_pd();
    acc1[r] = _mm256_setzero_pd();
  }
  for (size_t k = 0; k < kc; ++k) {
    __m256d b0 = _mm256_load_pd(bp + k * kNr);
    __m256d b1 = _mm256_load_pd(bp + k * kNr + 4);
    for (int r = 0; r < MR; ++r) {
      __m256d av = _mm256_broadcast_sd(a + static_cast<size_t>(r) * lda + k);
      acc0[r] = _mm256_fmadd_pd(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_pd(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    double* crow = c + static_cast<size_t>(r) * ldc;
    if (w == kNr) {
      _mm256_storeu_pd(crow,
                       _mm256_add_pd(_mm256_loadu_pd(crow), acc0[r]));
      _mm256_storeu_pd(crow + 4,
                       _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc1[r]));
    } else {
      alignas(32) double tmp[kNr];
      _mm256_store_pd(tmp, acc0[r]);
      _mm256_store_pd(tmp + 4, acc1[r]);
      for (size_t j = 0; j < w; ++j) crow[j] += tmp[j];
    }
  }
}

// C[0..m) += A[0..m) × B with B packed per k block. Strides: A is m×k with
// leading dimension lda, B is k×n with leading dimension ldb, C is m×n with
// leading dimension ldc.
void GemmBlocked(const double* a, size_t lda, size_t m, size_t k,
                 const double* b, size_t ldb, size_t n, double* c,
                 size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  size_t npanels = (n + kNr - 1) / kNr;
  for (size_t kb = 0; kb < k; kb += kKc) {
    size_t kend = std::min(k, kb + kKc);
    size_t kc = kend - kb;
    t_pack_b.resize(npanels * kc * kNr);
    PackB(b, ldb, kb, kend, n, t_pack_b.data());
    for (size_t i0 = 0; i0 < m; i0 += kMr) {
      size_t mr = std::min(kMr, m - i0);
      const double* atile = a + i0 * lda + kb;
      for (size_t panel = 0; panel < npanels; ++panel) {
        size_t j0 = panel * kNr;
        size_t w = std::min(kNr, n - j0);
        const double* bp = t_pack_b.data() + panel * kc * kNr;
        double* ctile = c + i0 * ldc + j0;
        switch (mr) {
          case 4:
            MicroKernel<4>(kc, atile, lda, bp, ctile, ldc, w);
            break;
          case 3:
            MicroKernel<3>(kc, atile, lda, bp, ctile, ldc, w);
            break;
          case 2:
            MicroKernel<2>(kc, atile, lda, bp, ctile, ldc, w);
            break;
          default:
            MicroKernel<1>(kc, atile, lda, bp, ctile, ldc, w);
            break;
        }
      }
    }
  }
}

void MatMulRangeAvx2(const double* a, size_t a_cols, const double* b,
                     size_t b_cols, double* out, size_t r0, size_t r1) {
  GemmBlocked(a + r0 * a_cols, a_cols, r1 - r0, a_cols, b, b_cols, b_cols,
              out + r0 * b_cols, b_cols);
}

void TransposeMatMulRangeAvx2(const double* a, size_t a_rows, size_t a_cols,
                              const double* b, size_t b_cols, double* out,
                              size_t i0, size_t i1) {
  // out[i0..i1) = (Aᵀ)[i0..i1) × B. Transpose the slice of A once so the
  // blocked GEMM sees contiguous contraction rows.
  size_t m = i1 - i0;
  if (m == 0 || a_rows == 0) return;
  t_pack_at.resize(m * a_rows);
  for (size_t k = 0; k < a_rows; ++k) {
    const double* arow = a + k * a_cols;
    for (size_t i = 0; i < m; ++i) t_pack_at[i * a_rows + k] = arow[i0 + i];
  }
  // t_pack_at aliases neither b nor out; GemmBlocked repacks B per k block
  // into the *other* thread_local buffer, so reusing it here is safe.
  GemmBlocked(t_pack_at.data(), a_rows, m, a_rows, b, b_cols, b_cols,
              out + i0 * b_cols, b_cols);
}

void MatMulTransposeRangeAvx2(const double* a, size_t a_cols, const double* b,
                              size_t b_rows, double* out, size_t r0,
                              size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const double* arow = a + i * a_cols;
    for (size_t j = 0; j < b_rows; ++j) {
      const double* brow = b + j * a_cols;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      size_t k = 0;
      for (; k + 16 <= a_cols; k += 16) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k),
                               _mm256_loadu_pd(brow + k), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k + 4),
                               _mm256_loadu_pd(brow + k + 4), acc1);
        acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k + 8),
                               _mm256_loadu_pd(brow + k + 8), acc2);
        acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k + 12),
                               _mm256_loadu_pd(brow + k + 12), acc3);
      }
      for (; k + 4 <= a_cols; k += 4) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k),
                               _mm256_loadu_pd(brow + k), acc0);
      }
      __m256d sum =
          _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, sum);
      double acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
      for (; k < a_cols; ++k) acc += arow[k] * brow[k];
      out[i * b_rows + j] = acc;
    }
  }
}

void BiasActRangeAvx2(double* out, size_t cols, const double* bias,
                      Activation act, size_t r0, size_t r1) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d slope = _mm256_set1_pd(kLeakyReluSlope);
  for (size_t r = r0; r < r1; ++r) {
    double* row = &out[r * cols];
    switch (act) {
      case Activation::kIdentity:
      case Activation::kRelu:
      case Activation::kLeakyRelu: {
        size_t c = 0;
        for (; c + 4 <= cols; c += 4) {
          __m256d v = _mm256_add_pd(_mm256_loadu_pd(row + c),
                                    _mm256_loadu_pd(bias + c));
          if (act == Activation::kRelu) {
            v = _mm256_max_pd(v, zero);
          } else if (act == Activation::kLeakyRelu) {
            __m256d mask = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
            v = _mm256_blendv_pd(_mm256_mul_pd(v, slope), v, mask);
          }
          _mm256_storeu_pd(row + c, v);
        }
        for (; c < cols; ++c) {
          double v = row[c] + bias[c];
          if (act == Activation::kRelu) {
            v = v > 0.0 ? v : 0.0;
          } else if (act == Activation::kLeakyRelu) {
            v = v > 0.0 ? v : kLeakyReluSlope * v;
          }
          row[c] = v;
        }
        break;
      }
      case Activation::kSigmoid:
        for (size_t c = 0; c < cols; ++c) {
          row[c] = 1.0 / (1.0 + std::exp(-(row[c] + bias[c])));
        }
        break;
      case Activation::kTanh:
        for (size_t c = 0; c < cols; ++c) row[c] = std::tanh(row[c] + bias[c]);
        break;
    }
  }
}

void ActGradAvx2(Activation act, const double* post, double* grad, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d slope = _mm256_set1_pd(kLeakyReluSlope);
  size_t i = 0;
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (; i + 4 <= n; i += 4) {
        __m256d p = _mm256_loadu_pd(post + i);
        __m256d g = _mm256_loadu_pd(grad + i);
        __m256d mask = _mm256_cmp_pd(p, zero, _CMP_GT_OQ);
        _mm256_storeu_pd(grad + i, _mm256_and_pd(g, mask));
      }
      for (; i < n; ++i) grad[i] *= post[i] > 0.0 ? 1.0 : 0.0;
      return;
    case Activation::kLeakyRelu:
      for (; i + 4 <= n; i += 4) {
        __m256d p = _mm256_loadu_pd(post + i);
        __m256d g = _mm256_loadu_pd(grad + i);
        __m256d mask = _mm256_cmp_pd(p, zero, _CMP_GT_OQ);
        _mm256_storeu_pd(grad + i,
                         _mm256_blendv_pd(_mm256_mul_pd(g, slope), g, mask));
      }
      for (; i < n; ++i) grad[i] *= post[i] > 0.0 ? 1.0 : kLeakyReluSlope;
      return;
    case Activation::kSigmoid:
      for (; i + 4 <= n; i += 4) {
        __m256d p = _mm256_loadu_pd(post + i);
        __m256d g = _mm256_loadu_pd(grad + i);
        __m256d d = _mm256_mul_pd(p, _mm256_sub_pd(one, p));
        _mm256_storeu_pd(grad + i, _mm256_mul_pd(g, d));
      }
      for (; i < n; ++i) grad[i] *= post[i] * (1.0 - post[i]);
      return;
    case Activation::kTanh:
      for (; i + 4 <= n; i += 4) {
        __m256d p = _mm256_loadu_pd(post + i);
        __m256d g = _mm256_loadu_pd(grad + i);
        __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(p, p));
        _mm256_storeu_pd(grad + i, _mm256_mul_pd(g, d));
      }
      for (; i < n; ++i) grad[i] *= 1.0 - post[i] * post[i];
      return;
  }
}

void AddRowBroadcastAvx2(double* data, size_t rows, size_t cols,
                         const double* bias) {
  for (size_t r = 0; r < rows; ++r) {
    double* row = data + r * cols;
    size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(row + c, _mm256_add_pd(_mm256_loadu_pd(row + c),
                                              _mm256_loadu_pd(bias + c)));
    }
    for (; c < cols; ++c) row[c] += bias[c];
  }
}

// Vectorizing over columns keeps each column's accumulation order identical
// to the scalar kernel (rows ascending), so ColumnSums stays bit-exact.
void ColumnSumsAvx2(const double* data, size_t rows, size_t cols,
                    double* sums) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = data + r * cols;
    size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(sums + c, _mm256_add_pd(_mm256_loadu_pd(sums + c),
                                               _mm256_loadu_pd(row + c)));
    }
    for (; c < cols; ++c) sums[c] += row[c];
  }
}

void ScaleAvx2(double* data, size_t n, double s) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(data + i, _mm256_mul_pd(_mm256_loadu_pd(data + i), sv));
  }
  for (; i < n; ++i) data[i] *= s;
}

double SquaredNormAvx2(const double* data, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d v0 = _mm256_loadu_pd(data + i);
    __m256d v1 = _mm256_loadu_pd(data + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  __m256d sum = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, sum);
  double acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) acc += data[i] * data[i];
  return acc;
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      "avx2",
      MatMulRangeAvx2,
      TransposeMatMulRangeAvx2,
      MatMulTransposeRangeAvx2,
      BiasActRangeAvx2,
      ActGradAvx2,
      AddRowBroadcastAvx2,
      ColumnSumsAvx2,
      ScaleAvx2,
      SquaredNormAvx2,
  };
  return table;
}

bool Avx2KernelsCompiled() { return true; }

}  // namespace warper::nn::internal

#else  // !WARPER_AVX2_IMPL

namespace warper::nn::internal {

// Built without AVX2 support: the dispatcher sees this via
// Avx2KernelsCompiled() and never selects the alias.
const KernelTable& Avx2Kernels() { return ScalarKernels(); }
bool Avx2KernelsCompiled() { return false; }

}  // namespace warper::nn::internal

#endif  // WARPER_AVX2_IMPL
