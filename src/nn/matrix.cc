#include "nn/matrix.h"

#include <cmath>

#include "util/status.h"

namespace warper::nn {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  WARPER_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    WARPER_CHECK(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  WARPER_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  WARPER_CHECK(r < rows_ && values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

Matrix Matrix::MatMul(const Matrix& other) const {
  WARPER_CHECK_MSG(cols_ == other.rows_, "MatMul shape mismatch: (" << rows_
                       << "x" << cols_ << ") x (" << other.rows_ << "x"
                       << other.cols_ << ")");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for cache-friendly access of row-major operands.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  WARPER_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const double* arow = &data_[k * cols_];
    const double* brow = &other.data_[k * other.cols_];
    for (size_t i = 0; i < cols_; ++i) {
      double a = arow[i];
      if (a == 0.0) continue;
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  WARPER_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = &data_[i * cols_];
    for (size_t j = 0; j < other.rows_; ++j) {
      const double* brow = &other.data_[j * other.cols_];
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
      out.data_[i * other.rows_ + j] = acc;
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::MulElem(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  WARPER_CHECK(bias.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += bias[c];
  }
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) sums[c] += data_[r * cols_ + c];
  }
  return sums;
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

}  // namespace warper::nn
