#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::nn {
namespace {

MatrixParallelPolicy g_policy;

// True when an (m × n × k) product is worth dispatching to the pool.
bool UseParallel(size_t out_rows, size_t madds) {
  return g_policy.threads != 1 && madds >= g_policy.min_madds &&
         out_rows >= 2 * g_policy.grain_rows && !util::OnPoolWorkerThread();
}

// Row-range dispatch: each task owns a contiguous slice of output rows, so
// no two tasks write the same element and per-element accumulation order
// matches the serial kernel exactly (bit-identical results).
void ForOutputRows(size_t rows, const std::function<void(size_t, size_t)>& fn) {
  util::ThreadPool::Global().ParallelFor(0, rows, g_policy.grain_rows, fn);
}

}  // namespace

void SetMatrixParallelism(const util::ParallelConfig& config) {
  g_policy.threads = config.ResolvedThreads();
  g_policy.grain_rows = std::max<size_t>(1, config.grain / 32);
}

const MatrixParallelPolicy& matrix_parallel_policy() { return g_policy; }

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  WARPER_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    WARPER_CHECK(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  WARPER_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  WARPER_CHECK(r < rows_ && values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

namespace {

// B-row block height for the k-blocked kernels: one block of B rows stays
// L2-resident while every output row of the slice streams over it.
constexpr size_t kKBlock = 256;

// out[r0..r1) += A[r0..r1) × B, i-k-j order with k blocked. Per-element
// accumulation order is k ascending — identical for any row partition.
void MatMulRange(const std::vector<double>& a, size_t a_cols,
                 const std::vector<double>& b, size_t b_cols,
                 std::vector<double>* out, size_t r0, size_t r1) {
  for (size_t kb = 0; kb < a_cols; kb += kKBlock) {
    size_t kend = std::min(a_cols, kb + kKBlock);
    for (size_t i = r0; i < r1; ++i) {
      double* orow = &(*out)[i * b_cols];
      for (size_t k = kb; k < kend; ++k) {
        double av = a[i * a_cols + k];
        if (av == 0.0) continue;
        const double* brow = &b[k * b_cols];
        for (size_t j = 0; j < b_cols; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

// out[i0..i1) += Aᵀ[i0..i1) × B where i indexes columns of A; the reduction
// over A's rows k stays ascending per element.
void TransposeMatMulRange(const std::vector<double>& a, size_t a_rows,
                          size_t a_cols, const std::vector<double>& b,
                          size_t b_cols, std::vector<double>* out, size_t i0,
                          size_t i1) {
  for (size_t kb = 0; kb < a_rows; kb += kKBlock) {
    size_t kend = std::min(a_rows, kb + kKBlock);
    for (size_t k = kb; k < kend; ++k) {
      const double* arow = &a[k * a_cols];
      const double* brow = &b[k * b_cols];
      for (size_t i = i0; i < i1; ++i) {
        double av = arow[i];
        if (av == 0.0) continue;
        double* orow = &(*out)[i * b_cols];
        for (size_t j = 0; j < b_cols; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

// out[r0..r1) = A[r0..r1) × Bᵀ (independent dot products per element).
void MatMulTransposeRange(const std::vector<double>& a, size_t a_cols,
                          const std::vector<double>& b, size_t b_rows,
                          std::vector<double>* out, size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const double* arow = &a[i * a_cols];
    for (size_t j = 0; j < b_rows; ++j) {
      const double* brow = &b[j * a_cols];
      double acc = 0.0;
      for (size_t k = 0; k < a_cols; ++k) acc += arow[k] * brow[k];
      (*out)[i * b_rows + j] = acc;
    }
  }
}

}  // namespace

Matrix Matrix::MatMul(const Matrix& other) const {
  WARPER_CHECK_MSG(cols_ == other.rows_, "MatMul shape mismatch: (" << rows_
                       << "x" << cols_ << ") x (" << other.rows_ << "x"
                       << other.cols_ << ")");
  Matrix out(rows_, other.cols_);
  auto kernel = [&](size_t r0, size_t r1) {
    MatMulRange(data_, cols_, other.data_, other.cols_, &out.data_, r0, r1);
  };
  if (UseParallel(rows_, rows_ * cols_ * other.cols_)) {
    ForOutputRows(rows_, kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  WARPER_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  auto kernel = [&](size_t i0, size_t i1) {
    TransposeMatMulRange(data_, rows_, cols_, other.data_, other.cols_,
                         &out.data_, i0, i1);
  };
  if (UseParallel(cols_, rows_ * cols_ * other.cols_)) {
    ForOutputRows(cols_, kernel);
  } else {
    kernel(0, cols_);
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  WARPER_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  auto kernel = [&](size_t r0, size_t r1) {
    MatMulTransposeRange(data_, cols_, other.data_, other.rows_, &out.data_,
                         r0, r1);
  };
  if (UseParallel(rows_, rows_ * cols_ * other.rows_)) {
    ForOutputRows(rows_, kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::MulElem(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  WARPER_CHECK(bias.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += bias[c];
  }
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) sums[c] += data_[r * cols_ + c];
  }
  return sums;
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

}  // namespace warper::nn
