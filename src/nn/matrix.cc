#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "nn/kernels.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::nn {
namespace {

MatrixParallelPolicy g_policy;

// The installed dispatch table. Scalar until SetMatrixParallelism says
// otherwise, matching the deterministic default ParallelConfig.
const internal::KernelTable* g_kernels = &internal::ScalarKernels();

// Resolves the config (plus the WARPER_SIMD env refinement of kAuto) to a
// kernel table. kAvx2 on hardware without AVX2+FMA falls back to scalar with
// a warning — ParallelConfig::Validate already rejects that combination on
// the API path, so this only triggers for callers that skip validation.
const internal::KernelTable* ResolveKernels(const util::ParallelConfig& c) {
  util::SimdMode mode = c.simd;
  if (mode == util::SimdMode::kAuto) {
    if (const char* env = std::getenv("WARPER_SIMD")) {
      std::string value(env);
      if (value == "scalar") {
        mode = util::SimdMode::kScalar;
      } else if (value == "avx2") {
        mode = util::SimdMode::kAvx2;
      } else if (!value.empty() && value != "auto") {
        WARPER_LOG(Warn) << "ignoring unknown WARPER_SIMD value '" << value
                         << "' (want scalar|avx2|auto)";
      }
    }
  }
  switch (mode) {
    case util::SimdMode::kScalar:
      return &internal::ScalarKernels();
    case util::SimdMode::kAvx2:
      if (util::BestSupportedSimdLevel() != util::SimdLevel::kAvx2 ||
          !internal::Avx2KernelsCompiled()) {
        WARPER_LOG(Warn) << "simd=avx2 requested but unavailable ("
                         << (internal::Avx2KernelsCompiled()
                                 ? "CPU lacks AVX2+FMA"
                                 : "binary built without AVX2 kernels")
                         << "); using scalar kernels";
        return &internal::ScalarKernels();
      }
      return &internal::Avx2Kernels();
    case util::SimdMode::kAuto:
      break;
  }
  if (c.deterministic) return &internal::ScalarKernels();
  if (util::BestSupportedSimdLevel() == util::SimdLevel::kAvx2 &&
      internal::Avx2KernelsCompiled()) {
    return &internal::Avx2Kernels();
  }
  return &internal::ScalarKernels();
}

// True when an (m × n × k) product is worth dispatching to the pool.
bool UseParallel(size_t out_rows, size_t madds) {
  return g_policy.threads != 1 && madds >= g_policy.min_madds &&
         out_rows >= 2 * g_policy.grain_rows && !util::OnPoolWorkerThread();
}

// Row-range dispatch: each task owns a contiguous slice of output rows, so
// no two tasks write the same element and per-element accumulation order
// matches the serial kernel exactly (bit-identical results).
void ForOutputRows(size_t rows, const std::function<void(size_t, size_t)>& fn) {
  util::ThreadPool::Global().ParallelFor(0, rows, g_policy.grain_rows, fn);
}

}  // namespace

void SetMatrixParallelism(const util::ParallelConfig& config) {
  g_policy.threads = config.ResolvedThreads();
  g_policy.grain_rows = std::max<size_t>(1, config.grain / 32);
  g_kernels = ResolveKernels(config);
}

const MatrixParallelPolicy& matrix_parallel_policy() { return g_policy; }

const char* ActiveKernelName() { return g_kernels->name; }

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  WARPER_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    WARPER_CHECK(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  WARPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  WARPER_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  WARPER_CHECK(r < rows_ && values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

void Matrix::CopyRowFrom(size_t dst_row, const Matrix& src, size_t src_row) {
  WARPER_CHECK(dst_row < rows_ && src_row < src.rows_ && cols_ == src.cols_);
  if (cols_ == 0) return;
  std::memcpy(&data_[dst_row * cols_], &src.data_[src_row * cols_],
              cols_ * sizeof(double));
}

Matrix Matrix::MatMul(const Matrix& other) const {
  WARPER_CHECK_MSG(cols_ == other.rows_, "MatMul shape mismatch: (" << rows_
                       << "x" << cols_ << ") x (" << other.rows_ << "x"
                       << other.cols_ << ")");
  Matrix out(rows_, other.cols_);
  const internal::KernelTable* kernels = g_kernels;
  auto kernel = [&](size_t r0, size_t r1) {
    kernels->matmul_range(data_.data(), cols_, other.data_.data(), other.cols_,
                          out.data_.data(), r0, r1);
  };
  if (UseParallel(rows_, rows_ * cols_ * other.cols_)) {
    ForOutputRows(rows_, kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::MatMulBiasAct(const Matrix& w, const std::vector<double>& bias,
                             Activation act) const {
  WARPER_CHECK_MSG(cols_ == w.rows_, "MatMulBiasAct shape mismatch: ("
                       << rows_ << "x" << cols_ << ") x (" << w.rows_ << "x"
                       << w.cols_ << ")");
  WARPER_CHECK(bias.size() == w.cols_);
  Matrix out(rows_, w.cols_);
  const internal::KernelTable* kernels = g_kernels;
  auto kernel = [&](size_t r0, size_t r1) {
    kernels->matmul_range(data_.data(), cols_, w.data_.data(), w.cols_,
                          out.data_.data(), r0, r1);
    kernels->bias_act_range(out.data_.data(), w.cols_, bias.data(), act, r0,
                            r1);
  };
  if (UseParallel(rows_, rows_ * cols_ * w.cols_)) {
    ForOutputRows(rows_, kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  WARPER_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  const internal::KernelTable* kernels = g_kernels;
  auto kernel = [&](size_t i0, size_t i1) {
    kernels->transpose_matmul_range(data_.data(), rows_, cols_,
                                    other.data_.data(), other.cols_,
                                    out.data_.data(), i0, i1);
  };
  if (UseParallel(cols_, rows_ * cols_ * other.cols_)) {
    ForOutputRows(cols_, kernel);
  } else {
    kernel(0, cols_);
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  WARPER_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  const internal::KernelTable* kernels = g_kernels;
  auto kernel = [&](size_t r0, size_t r1) {
    kernels->matmul_transpose_range(data_.data(), cols_, other.data_.data(),
                                    other.rows_, out.data_.data(), r0, r1);
  };
  if (UseParallel(rows_, rows_ * cols_ * other.rows_)) {
    ForOutputRows(rows_, kernel);
  } else {
    kernel(0, rows_);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::MulElem(const Matrix& other) {
  WARPER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::Scale(double s) {
  g_kernels->scale(data_.data(), data_.size(), s);
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  WARPER_CHECK(bias.size() == cols_);
  g_kernels->add_row_broadcast(data_.data(), rows_, cols_, bias.data());
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  g_kernels->column_sums(data_.data(), rows_, cols_, sums.data());
  return sums;
}

double Matrix::SquaredNorm() const {
  return g_kernels->squared_norm(data_.data(), data_.size());
}

void ActivationGradInPlace(Activation act, const Matrix& post, Matrix* grad) {
  WARPER_CHECK(post.rows() == grad->rows() && post.cols() == grad->cols());
  g_kernels->act_grad(act, post.data().data(), grad->data().data(),
                      grad->data().size());
}

}  // namespace warper::nn
