#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/losses.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace warper::nn {

double ScheduledLearningRate(const OptimizerConfig& opt, int epoch) {
  if (opt.decay_every_epochs <= 0) return opt.learning_rate;
  int decays = epoch / opt.decay_every_epochs;
  return opt.learning_rate * std::pow(opt.decay_factor, decays);
}

namespace {

// Shared epoch loop: `run_batch` computes the loss for the given row indices
// and performs backward; the loop handles shuffling, stepping, the LR
// schedule and early stopping.
// Per-epoch visibility into every training loop in the tree (CE updates,
// autoencoder / multi-task module refreshes): counters accumulate across
// calls, gauges hold the most recent epoch's values.
struct TrainerMetrics {
  util::Counter* calls = util::Metrics().GetCounter("trainer.calls");
  util::Counter* epochs = util::Metrics().GetCounter("trainer.epochs");
  util::Counter* early_stops = util::Metrics().GetCounter("trainer.early_stops");
  util::Gauge* last_loss = util::Metrics().GetGauge("trainer.last_loss");
  util::Gauge* last_lr = util::Metrics().GetGauge("trainer.last_lr");
  util::Histogram* epochs_per_call = util::Metrics().GetHistogram(
      "trainer.epochs_per_call", {1, 2, 5, 10, 20, 50, 100, 200});
};

TrainerMetrics& GetTrainerMetrics() {
  static TrainerMetrics* metrics = new TrainerMetrics();
  return *metrics;
}

TrainStats RunEpochs(
    Mlp* mlp, size_t num_rows, const TrainConfig& config, util::Rng* rng,
    const std::function<double(const std::vector<size_t>&)>& run_batch) {
  WARPER_CHECK(num_rows > 0);
  TrainerMetrics& metrics = GetTrainerMetrics();
  metrics.calls->Increment();
  util::ScopedSpan span("trainer.run_epochs");
  span.Arg("rows", static_cast<double>(num_rows));
  TrainStats stats;
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;

  double prev_loss = std::numeric_limits<double>::infinity();
  int stagnant = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Shuffle(&order);
    double lr = ScheduledLearningRate(config.optimizer, epoch);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < num_rows; start += config.batch_size) {
      size_t end = std::min(start + config.batch_size, num_rows);
      std::vector<size_t> batch(order.begin() + static_cast<long>(start),
                                order.begin() + static_cast<long>(end));
      mlp->ZeroGrad();
      epoch_loss += run_batch(batch);
      mlp->Step(config.optimizer, lr);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    stats.epochs_run = epoch + 1;
    stats.final_loss = epoch_loss;
    metrics.epochs->Increment();
    metrics.last_loss->Set(epoch_loss);
    metrics.last_lr->Set(lr);
    if (config.early_stop_rel_tol > 0.0 && std::isfinite(prev_loss)) {
      double rel_gain = (prev_loss - epoch_loss) / std::max(prev_loss, 1e-12);
      stagnant = rel_gain < config.early_stop_rel_tol ? stagnant + 1 : 0;
      if (stagnant >= config.early_stop_patience) {
        metrics.early_stops->Increment();
        break;
      }
    }
    prev_loss = epoch_loss;
  }
  metrics.epochs_per_call->Observe(static_cast<double>(stats.epochs_run));
  span.Arg("epochs", static_cast<double>(stats.epochs_run));
  span.Arg("final_loss", stats.final_loss);
  return stats;
}

// Runs once per minibatch per epoch: copy rows buffer-to-buffer instead of
// materializing a temporary std::vector per row.
Matrix GatherRows(const Matrix& m, const std::vector<size_t>& rows) {
  Matrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) out.CopyRowFrom(i, m, rows[i]);
  return out;
}

}  // namespace

TrainStats TrainRegressor(Mlp* mlp, const Matrix& inputs, const Matrix& targets,
                          const TrainConfig& config, util::Rng* rng,
                          RegressionLoss loss) {
  WARPER_CHECK(inputs.rows() == targets.rows());
  return RunEpochs(mlp, inputs.rows(), config, rng,
                   [&](const std::vector<size_t>& batch) {
                     Matrix x = GatherRows(inputs, batch);
                     Matrix y = GatherRows(targets, batch);
                     Matrix pred = mlp->Forward(x);
                     Matrix grad;
                     double batch_loss = loss == RegressionLoss::kMse
                                             ? MseLoss(pred, y, &grad)
                                             : L1Loss(pred, y, &grad);
                     mlp->Backward(grad);
                     return batch_loss;
                   });
}

TrainStats TrainClassifier(Mlp* mlp, const Matrix& inputs,
                           const std::vector<size_t>& labels,
                           const TrainConfig& config, util::Rng* rng) {
  WARPER_CHECK(inputs.rows() == labels.size());
  return RunEpochs(mlp, inputs.rows(), config, rng,
                   [&](const std::vector<size_t>& batch) {
                     Matrix x = GatherRows(inputs, batch);
                     std::vector<size_t> y(batch.size());
                     for (size_t i = 0; i < batch.size(); ++i) {
                       y[i] = labels[batch[i]];
                     }
                     Matrix logits = mlp->Forward(x);
                     Matrix grad;
                     double batch_loss =
                         SoftmaxCrossEntropyLoss(logits, y, &grad);
                     mlp->Backward(grad);
                     return batch_loss;
                   });
}

}  // namespace warper::nn
