// A multi-layer perceptron with manual backpropagation and an Adam / SGD
// optimizer. This backs every learned component in the reproduction: the
// Warper Encoder / Generator / Discriminator (Table 3 of the paper), the
// LM-mlp estimator, and the MSCN sub-networks.
#ifndef WARPER_NN_MLP_H_
#define WARPER_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace warper::nn {

// nn::Activation lives in matrix.h (the kernel layer fuses it into the GEMM
// epilogue) and is re-exported here unchanged for existing call sites.

struct MlpConfig {
  // Sizes including input and output, e.g. {in, 128, 128, 128, out}.
  std::vector<size_t> layer_sizes;
  // Activation between hidden layers.
  Activation hidden_activation = Activation::kLeakyRelu;
  // Activation after the final layer (usually identity for regression /
  // logits, sigmoid for outputs constrained to [0, 1]).
  Activation output_activation = Activation::kIdentity;
};

enum class OptimizerKind { kSgd, kAdam };

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kAdam;
  double learning_rate = 1e-3;  // paper §3.5
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  // Multiplicative learning-rate decay applied every `decay_every_epochs`
  // epochs; the paper halves the LR every 10 epochs.
  double decay_factor = 0.5;
  int decay_every_epochs = 10;
};

class Mlp {
 public:
  Mlp() = default;
  Mlp(const MlpConfig& config, util::Rng* rng);

  // Forward pass; caches intermediate activations for Backward().
  Matrix Forward(const Matrix& input);
  // Forward pass without caching (inference only; const).
  Matrix Predict(const Matrix& input) const;

  // Backpropagates the loss gradient w.r.t. the output of the last Forward()
  // call; accumulates parameter gradients and returns the gradient w.r.t. the
  // input (needed to chain networks, e.g. G → E → D in the GAN update).
  Matrix Backward(const Matrix& grad_output);

  void ZeroGrad();
  // Applies one optimizer step with the given learning rate and clears the
  // cached activations.
  void Step(const OptimizerConfig& opt, double learning_rate);

  size_t input_size() const { return config_.layer_sizes.front(); }
  size_t output_size() const { return config_.layer_sizes.back(); }
  // Total number of trainable parameters.
  size_t ParameterCount() const;

  // Flat copies of all parameters; used by tests and model snapshots.
  std::vector<double> GetParameters() const;
  void SetParameters(const std::vector<double>& params);

  const MlpConfig& config() const { return config_; }

 private:
  struct Layer {
    Matrix w;                 // in × out
    std::vector<double> b;    // out
    Matrix gw;                // gradient accumulators
    std::vector<double> gb;
    // Adam moment estimates.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  MlpConfig config_;
  std::vector<Layer> layers_;
  // Cached per-layer inputs and post-activation outputs from Forward().
  std::vector<Matrix> cached_inputs_;
  std::vector<Matrix> cached_outputs_;
  int64_t adam_step_ = 0;
};

}  // namespace warper::nn

#endif  // WARPER_NN_MLP_H_
