// Loss functions. Each returns the mean loss over the batch and writes the
// gradient with respect to the predictions (already divided by batch size,
// so callers pass it straight into Mlp::Backward()).
#ifndef WARPER_NN_LOSSES_H_
#define WARPER_NN_LOSSES_H_

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace warper::nn {

// Mean squared error. `pred` and `target` are (batch × dims).
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

// Mean absolute error (the paper's autoencoder reconstruction loss, Eq. 1).
double L1Loss(const Matrix& pred, const Matrix& target, Matrix* grad);

// Softmax cross-entropy for integer class labels. `logits` is
// (batch × classes), `labels[i]` in [0, classes). The gradient is w.r.t. the
// logits (softmax folded in).
double SoftmaxCrossEntropyLoss(const Matrix& logits,
                               const std::vector<size_t>& labels, Matrix* grad);

// Row-wise softmax probabilities.
Matrix Softmax(const Matrix& logits);

}  // namespace warper::nn

#endif  // WARPER_NN_LOSSES_H_
