// A generic mini-batch training loop with the paper's learning-rate schedule
// (lr 1e-3, halved every 10 epochs) and loss-convergence early stopping.
#ifndef WARPER_NN_TRAINER_H_
#define WARPER_NN_TRAINER_H_

#include <functional>

#include "nn/mlp.h"
#include "util/rng.h"

namespace warper::nn {

struct TrainConfig {
  int epochs = 50;
  size_t batch_size = 32;
  OptimizerConfig optimizer;
  // Stop when the relative improvement of the epoch loss falls below this
  // for `patience` consecutive epochs; <= 0 disables early stopping.
  double early_stop_rel_tol = 1e-3;
  int early_stop_patience = 3;
};

enum class RegressionLoss { kMse, kL1 };

struct TrainStats {
  int epochs_run = 0;
  double final_loss = 0.0;
};

// Trains `mlp` to regress `targets` from `inputs` (row-aligned matrices).
TrainStats TrainRegressor(Mlp* mlp, const Matrix& inputs, const Matrix& targets,
                          const TrainConfig& config, util::Rng* rng,
                          RegressionLoss loss = RegressionLoss::kMse);

// Trains `mlp` as a classifier over integer labels with softmax
// cross-entropy.
TrainStats TrainClassifier(Mlp* mlp, const Matrix& inputs,
                           const std::vector<size_t>& labels,
                           const TrainConfig& config, util::Rng* rng);

// Learning rate for a given epoch under the schedule in `opt`.
double ScheduledLearningRate(const OptimizerConfig& opt, int epoch);

}  // namespace warper::nn

#endif  // WARPER_NN_TRAINER_H_
