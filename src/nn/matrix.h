// Dense row-major matrix of doubles — the numeric workhorse of the NN and
// classic-ML substrates. Deliberately minimal: just the operations the
// training loops need, with bounds checks in debug builds.
//
// Every numeric inner loop dispatches through a process-wide kernel table
// (scalar reference or AVX2+FMA; see nn/kernels.h) selected by
// SetMatrixParallelism from util::ParallelConfig: deterministic configs pin
// the scalar reference kernels (bit-exact, portable), non-deterministic
// configs take the best instruction set the CPU supports, and the
// ParallelConfig::simd override pins a path for tests and benches.
#ifndef WARPER_NN_MATRIX_H_
#define WARPER_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace warper::nn {

// Matrix backing store: 64-byte (cache-line) aligned so SIMD kernels and
// packed panels start on a vector boundary. Interchangeable with
// std::vector<double> except for the allocator template argument.
using AlignedVector = std::vector<double, util::AlignedAllocator<double, 64>>;

// Activations the fused GEMM epilogue supports. Defined here (not mlp.h) so
// the kernel layer can fuse bias + activation into the GEMM output pass;
// mlp.h re-exports it unchanged for all existing call sites.
enum class Activation {
  kIdentity,
  kRelu,
  kLeakyRelu,  // slope 0.01, as in the paper's Table 3
  kSigmoid,
  kTanh,
};

inline constexpr double kLeakyReluSlope = 0.01;

// Process-wide policy for the parallel matrix kernels. MatMul and friends
// split their *output rows* across the shared util::ThreadPool when the
// product is large enough; per-element accumulation order is fixed by the
// installed kernel table alone (never by the partition), so parallel results
// are bit-identical to serial results on both the scalar and SIMD paths.
struct MatrixParallelPolicy {
  // Kernel-level switch derived from util::ParallelConfig (1 = serial).
  int threads = 1;
  // Serial fallback below this many multiply-adds; dispatch overhead beats
  // the win on small products (a 64×130·130×128 trunk batch is ~1M madds).
  size_t min_madds = 1 << 17;
  // Minimum output rows per task.
  size_t grain_rows = 8;
};

// Installs the kernel policy *and* the dispatch table (typically from
// WarperConfig::parallel via core::ApplyParallelConfig). Not thread-safe
// against concurrent MatMul. Until first called, the scalar reference
// kernels are active (matching the deterministic default config).
void SetMatrixParallelism(const util::ParallelConfig& config);
const MatrixParallelPolicy& matrix_parallel_policy();

// Name of the installed kernel table: "scalar" or "avx2".
const char* ActiveKernelName();

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  // Xavier/Glorot-uniform initialization for a (fan_in × fan_out) weight.
  static Matrix Xavier(size_t rows, size_t cols, util::Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;

  const AlignedVector& data() const { return data_; }
  AlignedVector& data() { return data_; }

  // Returns row r as a vector (copy).
  std::vector<double> Row(size_t r) const;
  void SetRow(size_t r, const std::vector<double>& values);
  // Copies src's row src_row into this matrix's row dst_row without the
  // temporary vector Row()+SetRow() would materialize. Widths must match.
  void CopyRowFrom(size_t dst_row, const Matrix& src, size_t src_row);

  // C = this × other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  // C = act(this × w + bias), the bias/activation epilogue fused into the
  // GEMM output pass (one cache-hot sweep instead of three). Arithmetic per
  // element is identical to MatMul + AddRowBroadcast + activation.
  Matrix MatMulBiasAct(const Matrix& w, const std::vector<double>& bias,
                       Activation act) const;
  // C = thisᵀ × other.
  Matrix TransposeMatMul(const Matrix& other) const;
  // C = this × otherᵀ.
  Matrix MatMulTranspose(const Matrix& other) const;

  Matrix Transposed() const;

  // Elementwise in-place operations (shapes must match).
  void Add(const Matrix& other);
  void Sub(const Matrix& other);
  void MulElem(const Matrix& other);
  void Scale(double s);

  // Adds a row vector to every row (broadcast), e.g. a bias.
  void AddRowBroadcast(const std::vector<double>& bias);

  // Sum over rows → vector of length cols().
  std::vector<double> ColumnSums() const;

  // Frobenius-norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_, cols_;
  AlignedVector data_;
};

// grad ⊙= act'(post) given the *post*-activation values (every supported
// activation admits this form). The backward mate of the fused epilogue.
void ActivationGradInPlace(Activation act, const Matrix& post, Matrix* grad);

}  // namespace warper::nn

#endif  // WARPER_NN_MATRIX_H_
