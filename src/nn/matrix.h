// Dense row-major matrix of doubles — the numeric workhorse of the NN and
// classic-ML substrates. Deliberately minimal: just the operations the
// training loops need, with bounds checks in debug builds.
#ifndef WARPER_NN_MATRIX_H_
#define WARPER_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace warper::nn {

// Process-wide policy for the parallel matrix kernels. MatMul and friends
// split their *output rows* across the shared util::ThreadPool when the
// product is large enough; per-element accumulation order is unchanged, so
// parallel results are bit-identical to the serial kernels regardless of the
// deterministic flag.
struct MatrixParallelPolicy {
  // Kernel-level switch derived from util::ParallelConfig (1 = serial).
  int threads = 1;
  // Serial fallback below this many multiply-adds; dispatch overhead beats
  // the win on small products (a 64×130·130×128 trunk batch is ~1M madds).
  size_t min_madds = 1 << 17;
  // Minimum output rows per task.
  size_t grain_rows = 8;
};

// Installs the kernel policy (typically from WarperConfig::parallel via
// core::ApplyParallelConfig). Not thread-safe against concurrent MatMul.
void SetMatrixParallelism(const util::ParallelConfig& config);
const MatrixParallelPolicy& matrix_parallel_policy();

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  // Xavier/Glorot-uniform initialization for a (fan_in × fan_out) weight.
  static Matrix Xavier(size_t rows, size_t cols, util::Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  // Returns row r as a vector (copy).
  std::vector<double> Row(size_t r) const;
  void SetRow(size_t r, const std::vector<double>& values);

  // C = this × other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  // C = thisᵀ × other.
  Matrix TransposeMatMul(const Matrix& other) const;
  // C = this × otherᵀ.
  Matrix MatMulTranspose(const Matrix& other) const;

  Matrix Transposed() const;

  // Elementwise in-place operations (shapes must match).
  void Add(const Matrix& other);
  void Sub(const Matrix& other);
  void MulElem(const Matrix& other);
  void Scale(double s);

  // Adds a row vector to every row (broadcast), e.g. a bias.
  void AddRowBroadcast(const std::vector<double>& bias);

  // Sum over rows → vector of length cols().
  std::vector<double> ColumnSums() const;

  // Frobenius-norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

}  // namespace warper::nn

#endif  // WARPER_NN_MATRIX_H_
