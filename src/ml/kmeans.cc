#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "util/status.h"

namespace warper::ml {
namespace {

double SquaredDistance(const nn::Matrix& m, size_t row,
                       const nn::Matrix& centroids, size_t centroid) {
  double acc = 0.0;
  for (size_t c = 0; c < m.cols(); ++c) {
    double d = m.At(row, c) - centroids.At(centroid, c);
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult KMeans(const nn::Matrix& points, size_t k, util::Rng* rng,
                    int max_iters) {
  size_t n = points.rows();
  size_t d = points.cols();
  WARPER_CHECK(n > 0 && d > 0 && k > 0);
  k = std::min(k, n);

  // k-means++ seeding.
  nn::Matrix centroids(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  centroids.CopyRowFrom(0, points, first);
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], SquaredDistance(points, i, centroids, c - 1));
    }
    size_t chosen = rng->Categorical(min_dist);
    centroids.CopyRowFrom(c, points, chosen);
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double dist = SquaredDistance(points, i, centroids, c);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    // Recompute centroids; empty clusters keep their previous position.
    nn::Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < d; ++j) sums.At(c, j) += points.At(i, j);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t j = 0; j < d; ++j) {
        centroids.At(c, j) = sums.At(c, j) / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(points, i, centroids, result.assignment[i]);
  }
  result.centroids = std::move(centroids);
  return result;
}

size_t NearestCentroid(const nn::Matrix& centroids,
                       const std::vector<double>& point) {
  WARPER_CHECK(centroids.rows() > 0 && centroids.cols() == point.size());
  double best = std::numeric_limits<double>::infinity();
  size_t best_c = 0;
  for (size_t c = 0; c < centroids.rows(); ++c) {
    double acc = 0.0;
    for (size_t j = 0; j < point.size(); ++j) {
      double d = point[j] - centroids.At(c, j);
      acc += d * d;
    }
    if (acc < best) {
      best = acc;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace warper::ml
