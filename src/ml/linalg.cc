#include "ml/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace warper::ml {

EigenDecomposition SymmetricEigen(const nn::Matrix& symmetric, int max_sweeps) {
  size_t n = symmetric.rows();
  WARPER_CHECK(symmetric.cols() == n && n > 0);
  nn::Matrix a = symmetric;
  // v accumulates the rotations; starts as identity.
  nn::Matrix v(n, n);
  for (size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a.At(p, q) * a.At(p, q);
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = a.At(p, p);
        double aqq = a.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double akp = a.At(k, p);
          double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a.At(p, k);
          double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by eigenvalue descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return a.At(i, i) > a.At(j, j); });

  EigenDecomposition result;
  result.values.resize(n);
  result.vectors = nn::Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    result.values[i] = a.At(order[i], order[i]);
    for (size_t k = 0; k < n; ++k) result.vectors.At(i, k) = v.At(k, order[i]);
  }
  return result;
}

nn::Matrix CholeskySolve(const nn::Matrix& a, const nn::Matrix& b,
                         double ridge) {
  size_t n = a.rows();
  WARPER_CHECK(a.cols() == n && b.rows() == n);
  // Factor A + ridge·I = L·Lᵀ.
  nn::Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j) + (i == j ? ridge : 0.0);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        WARPER_CHECK_MSG(sum > 0.0, "CholeskySolve: matrix not SPD at row "
                                        << i << " (pivot " << sum << ")");
        l.At(i, j) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Solve L·Y = B then Lᵀ·X = Y, column by column.
  nn::Matrix x(n, b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      double sum = b.At(i, c);
      for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
      y[i] = sum / l.At(i, i);
    }
    for (size_t i = n; i-- > 0;) {
      double sum = y[i];
      for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x.At(k, c);
      x.At(i, c) = sum / l.At(i, i);
    }
  }
  return x;
}

}  // namespace warper::ml
