// Dense linear-algebra routines needed by PCA and kernel ridge regression.
#ifndef WARPER_ML_LINALG_H_
#define WARPER_ML_LINALG_H_

#include <vector>

#include "nn/matrix.h"

namespace warper::ml {

struct EigenDecomposition {
  // Eigenvalues in descending order.
  std::vector<double> values;
  // eigenvectors.Row(i) is the unit eigenvector for values[i].
  nn::Matrix vectors;
};

// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
// Robust and exact enough for the small covariance / kernel matrices used
// here (d ≤ a few hundred).
EigenDecomposition SymmetricEigen(const nn::Matrix& symmetric,
                                  int max_sweeps = 64);

// Solves (A + ridge·I) x = b for symmetric positive definite A via Cholesky.
// `b` may have multiple columns. Dies on a non-SPD input.
nn::Matrix CholeskySolve(const nn::Matrix& a, const nn::Matrix& b,
                         double ridge = 0.0);

}  // namespace warper::ml

#endif  // WARPER_ML_LINALG_H_
