// A CART-style regression tree with exact variance-reduction splits.
// Building block for the gradient-boosted-trees estimator (LM-gbt).
#ifndef WARPER_ML_DECISION_TREE_H_
#define WARPER_ML_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace warper::ml {

struct TreeConfig {
  int max_depth = 4;
  size_t min_samples_leaf = 4;
};

class RegressionTree {
 public:
  RegressionTree() = default;

  // Fits on the rows of `x` selected by `rows` against `y`.
  void Fit(const nn::Matrix& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, const TreeConfig& config);

  double Predict(const std::vector<double>& features) const;

  size_t NodeCount() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;     // leaf prediction
    size_t feature = 0;     // split feature
    double threshold = 0.0; // go left iff x[feature] <= threshold
    int left = -1, right = -1;
  };

  int Build(const nn::Matrix& x, const std::vector<double>& y,
            std::vector<size_t>& rows, int depth, const TreeConfig& config);

  std::vector<Node> nodes_;
};

}  // namespace warper::ml

#endif  // WARPER_ML_DECISION_TREE_H_
