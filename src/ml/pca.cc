#include "ml/pca.h"

#include <algorithm>

#include "ml/linalg.h"
#include "util/status.h"

namespace warper::ml {

void Pca::Fit(const nn::Matrix& samples, size_t num_components) {
  size_t n = samples.rows();
  size_t d = samples.cols();
  WARPER_CHECK(n > 1 && d > 0);
  num_components = std::min(num_components, d);

  mean_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) mean_[c] += samples.At(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  // Covariance matrix (d × d).
  nn::Matrix cov(d, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < d; ++i) {
      double di = samples.At(r, i) - mean_[i];
      if (di == 0.0) continue;
      for (size_t j = i; j < d; ++j) {
        cov.At(i, j) += di * (samples.At(r, j) - mean_[j]);
      }
    }
  }
  double inv = 1.0 / static_cast<double>(n - 1);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov.At(i, j) *= inv;
      cov.At(j, i) = cov.At(i, j);
    }
  }

  EigenDecomposition eig = SymmetricEigen(cov);
  components_ = nn::Matrix(num_components, d);
  double total = 0.0, kept = 0.0;
  for (size_t i = 0; i < d; ++i) total += std::max(eig.values[i], 0.0);
  for (size_t i = 0; i < num_components; ++i) {
    kept += std::max(eig.values[i], 0.0);
    components_.CopyRowFrom(i, eig.vectors, i);
  }
  explained_ = total > 0.0 ? kept / total : 1.0;
}

nn::Matrix Pca::Transform(const nn::Matrix& samples) const {
  WARPER_CHECK(fitted());
  WARPER_CHECK(samples.cols() == mean_.size());
  nn::Matrix out(samples.rows(), components_.rows());
  for (size_t r = 0; r < samples.rows(); ++r) {
    for (size_t k = 0; k < components_.rows(); ++k) {
      double acc = 0.0;
      for (size_t c = 0; c < mean_.size(); ++c) {
        acc += (samples.At(r, c) - mean_[c]) * components_.At(k, c);
      }
      out.At(r, k) = acc;
    }
  }
  return out;
}

std::vector<double> Pca::TransformRow(const std::vector<double>& row) const {
  WARPER_CHECK(fitted());
  WARPER_CHECK(row.size() == mean_.size());
  std::vector<double> out(components_.rows(), 0.0);
  for (size_t k = 0; k < components_.rows(); ++k) {
    for (size_t c = 0; c < mean_.size(); ++c) {
      out[k] += (row[c] - mean_[c]) * components_.At(k, c);
    }
  }
  return out;
}

double Pca::ExplainedVarianceRatio() const {
  WARPER_CHECK(fitted());
  return explained_;
}

}  // namespace warper::ml
