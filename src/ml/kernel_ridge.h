// Kernel ridge regression with polynomial and RBF kernels.
//
// Substitution note (see DESIGN.md §3): the paper's LM-ply / LM-rbf variants
// use sklearn SVR. We use kernel ridge regression with the same kernels —
// the same kernelized nonlinear hypothesis class and the same adaptation
// pattern (closed-form re-training from scratch, no fine-tuning). For large
// training sets, a Nyström-style anchor subsample bounds the kernel matrix.
#ifndef WARPER_ML_KERNEL_RIDGE_H_
#define WARPER_ML_KERNEL_RIDGE_H_

#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace warper::ml {

enum class KernelKind {
  kPolynomial,  // (γ·x·x' + c)^degree
  kRbf,         // exp(-γ ||x - x'||²)
};

struct KernelRidgeConfig {
  KernelKind kernel = KernelKind::kRbf;
  int degree = 5;       // paper: "5-degree polynomial-kernel SVM"
  double gamma = 1.0;   // kernel width / scale
  double coef0 = 1.0;   // polynomial offset c
  double ridge = 1e-3;  // regularization λ
  // Maximum anchor points kept; training sets larger than this are
  // subsampled so that the kernel solve stays O(max_anchors³).
  size_t max_anchors = 512;
};

class KernelRidgeRegressor {
 public:
  KernelRidgeRegressor() = default;

  void Fit(const nn::Matrix& x, const std::vector<double>& y,
           const KernelRidgeConfig& config, util::Rng* rng);

  double Predict(const std::vector<double>& features) const;

  bool fitted() const { return !alpha_.empty(); }
  size_t num_anchors() const { return anchors_.rows(); }

 private:
  double Kernel(const std::vector<double>& a, const double* b) const;

  KernelRidgeConfig config_;
  nn::Matrix anchors_;          // m × d support points
  std::vector<double> alpha_;   // m dual coefficients
};

}  // namespace warper::ml

#endif  // WARPER_ML_KERNEL_RIDGE_H_
