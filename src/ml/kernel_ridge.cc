#include "ml/kernel_ridge.h"

#include <cmath>

#include "ml/linalg.h"
#include "util/status.h"

namespace warper::ml {

double KernelRidgeRegressor::Kernel(const std::vector<double>& a,
                                    const double* b) const {
  if (config_.kernel == KernelKind::kPolynomial) {
    double dot = 0.0;
    for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return std::pow(config_.gamma * dot + config_.coef0, config_.degree);
  }
  double dist = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    dist += d * d;
  }
  return std::exp(-config_.gamma * dist);
}

void KernelRidgeRegressor::Fit(const nn::Matrix& x,
                               const std::vector<double>& y,
                               const KernelRidgeConfig& config,
                               util::Rng* rng) {
  WARPER_CHECK(x.rows() == y.size());
  WARPER_CHECK(x.rows() > 0);
  config_ = config;

  // Subsample anchors if needed.
  std::vector<size_t> rows;
  if (x.rows() > config.max_anchors) {
    rows = rng->SampleWithoutReplacement(x.rows(), config.max_anchors);
  } else {
    rows.resize(x.rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }

  size_t m = rows.size();
  anchors_ = nn::Matrix(m, x.cols());
  nn::Matrix targets(m, 1);
  for (size_t i = 0; i < m; ++i) {
    anchors_.CopyRowFrom(i, x, rows[i]);
    targets.At(i, 0) = y[rows[i]];
  }

  // K_ij = k(x_i, x_j); solve (K + λI) α = y.
  nn::Matrix k(m, m);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> xi = anchors_.Row(i);
    for (size_t j = i; j < m; ++j) {
      double v = Kernel(xi, &anchors_.data()[j * anchors_.cols()]);
      k.At(i, j) = v;
      k.At(j, i) = v;
    }
  }
  nn::Matrix alpha = CholeskySolve(k, targets, config.ridge);
  alpha_.resize(m);
  for (size_t i = 0; i < m; ++i) alpha_[i] = alpha.At(i, 0);
}

double KernelRidgeRegressor::Predict(const std::vector<double>& features) const {
  WARPER_CHECK(fitted());
  WARPER_CHECK(features.size() == anchors_.cols());
  double pred = 0.0;
  for (size_t i = 0; i < anchors_.rows(); ++i) {
    pred += alpha_[i] * Kernel(features, &anchors_.data()[i * anchors_.cols()]);
  }
  return pred;
}

}  // namespace warper::ml
