// Brute-force k-nearest-neighbour search over embedding vectors.
// Used by the Warper picker to assign unlabeled queries to error-strata
// buckets via their embeddings (§3.2).
#ifndef WARPER_ML_KNN_H_
#define WARPER_ML_KNN_H_

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace warper::ml {

// Indices of the k nearest rows of `corpus` to `query` (Euclidean), closest
// first. Returns fewer than k if the corpus is smaller.
std::vector<size_t> KNearest(const nn::Matrix& corpus,
                             const std::vector<double>& query, size_t k);

// Majority label among the k nearest neighbours; ties broken toward the
// closest neighbour's label.
size_t KnnClassify(const nn::Matrix& corpus, const std::vector<size_t>& labels,
                   const std::vector<double>& query, size_t k);

}  // namespace warper::ml

#endif  // WARPER_ML_KNN_H_
