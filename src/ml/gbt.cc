#include "ml/gbt.h"

#include <algorithm>

#include "util/status.h"

namespace warper::ml {

void GradientBoostedTrees::Fit(const nn::Matrix& x,
                               const std::vector<double>& y,
                               const GbtConfig& config, util::Rng* rng) {
  WARPER_CHECK(x.rows() == y.size());
  WARPER_CHECK(x.rows() > 0);
  trees_.clear();
  learning_rate_ = config.learning_rate;

  double sum = 0.0;
  for (double v : y) sum += v;
  base_prediction_ = sum / static_cast<double>(y.size());
  base_set_ = true;

  std::vector<double> residual(y.size());
  std::vector<double> current(y.size(), base_prediction_);

  size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(config.subsample * static_cast<double>(y.size())));

  for (int t = 0; t < config.num_trees; ++t) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - current[i];

    std::vector<size_t> rows =
        sample_size >= y.size()
            ? [&] {
                std::vector<size_t> all(y.size());
                for (size_t i = 0; i < all.size(); ++i) all[i] = i;
                return all;
              }()
            : rng->SampleWithoutReplacement(y.size(), sample_size);

    RegressionTree tree;
    tree.Fit(x, residual, rows, config.tree);
    for (size_t i = 0; i < y.size(); ++i) {
      current[i] += learning_rate_ * tree.Predict(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::Predict(const std::vector<double>& features) const {
  WARPER_CHECK(base_set_);
  double pred = base_prediction_;
  for (const auto& tree : trees_) {
    pred += learning_rate_ * tree.Predict(features);
  }
  return pred;
}

}  // namespace warper::ml
