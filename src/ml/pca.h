// Principal Component Analysis.
//
// The paper uses PCA in two places: (1) 2-d visualization of predicate
// workloads (§2, Figures 1/5/7) and (2) the k-dim projection inside the
// Jensen–Shannon workload-drift metric (§3.1).
#ifndef WARPER_ML_PCA_H_
#define WARPER_ML_PCA_H_

#include <vector>

#include "nn/matrix.h"

namespace warper::ml {

class Pca {
 public:
  Pca() = default;

  // Fits on (rows = samples) × (cols = features); keeps the top
  // `num_components` eigenvectors of the covariance matrix.
  void Fit(const nn::Matrix& samples, size_t num_components);

  bool fitted() const { return components_.rows() > 0; }
  size_t num_components() const { return components_.rows(); }
  size_t input_dim() const { return mean_.size(); }

  // Projects samples onto the principal components → (n × num_components).
  nn::Matrix Transform(const nn::Matrix& samples) const;
  std::vector<double> TransformRow(const std::vector<double>& row) const;

  // Fraction of total variance captured by the kept components.
  double ExplainedVarianceRatio() const;

 private:
  std::vector<double> mean_;
  nn::Matrix components_;  // num_components × input_dim
  double explained_ = 0.0;
};

}  // namespace warper::ml

#endif  // WARPER_ML_PCA_H_
