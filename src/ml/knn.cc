#include "ml/knn.h"

#include <algorithm>
#include <map>

#include "util/status.h"

namespace warper::ml {

std::vector<size_t> KNearest(const nn::Matrix& corpus,
                             const std::vector<double>& query, size_t k) {
  WARPER_CHECK(corpus.cols() == query.size());
  size_t n = corpus.rows();
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < query.size(); ++j) {
      double d = corpus.At(i, j) - query[j];
      acc += d * d;
    }
    dist.emplace_back(acc, i);
  }
  k = std::min(k, n);
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

size_t KnnClassify(const nn::Matrix& corpus, const std::vector<size_t>& labels,
                   const std::vector<double>& query, size_t k) {
  WARPER_CHECK(corpus.rows() == labels.size());
  WARPER_CHECK(corpus.rows() > 0);
  std::vector<size_t> nearest = KNearest(corpus, query, k);
  std::map<size_t, size_t> votes;
  for (size_t idx : nearest) ++votes[labels[idx]];
  size_t best_label = labels[nearest[0]];
  size_t best_votes = votes[best_label];
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace warper::ml
