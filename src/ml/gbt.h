// Gradient-boosted regression trees (squared loss, shrinkage, subsampling) —
// the regressor behind the LM-gbt estimator variant (§4.1.2). GBTs cannot be
// fine-tuned, so the CE wrapper re-trains them from scratch on update, which
// is exactly the adaptation pattern the paper studies for this model class.
#ifndef WARPER_ML_GBT_H_
#define WARPER_ML_GBT_H_

#include <vector>

#include "ml/decision_tree.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace warper::ml {

struct GbtConfig {
  int num_trees = 60;
  double learning_rate = 1e-2;  // paper §4.1 "GBT uses a learning rate of 1e-2"
  double subsample = 0.8;
  TreeConfig tree;
};

class GradientBoostedTrees {
 public:
  GradientBoostedTrees() = default;

  void Fit(const nn::Matrix& x, const std::vector<double>& y,
           const GbtConfig& config, util::Rng* rng);

  double Predict(const std::vector<double>& features) const;

  bool fitted() const { return !trees_.empty() || base_set_; }
  size_t num_trees() const { return trees_.size(); }

 private:
  double base_prediction_ = 0.0;
  bool base_set_ = false;
  double learning_rate_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace warper::ml

#endif  // WARPER_ML_GBT_H_
