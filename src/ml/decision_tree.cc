#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace warper::ml {
namespace {

double MeanOf(const std::vector<double>& y, const std::vector<size_t>& rows) {
  double sum = 0.0;
  for (size_t r : rows) sum += y[r];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

}  // namespace

void RegressionTree::Fit(const nn::Matrix& x, const std::vector<double>& y,
                         const std::vector<size_t>& rows,
                         const TreeConfig& config) {
  WARPER_CHECK(x.rows() == y.size());
  WARPER_CHECK(!rows.empty());
  nodes_.clear();
  std::vector<size_t> mutable_rows = rows;
  Build(x, y, mutable_rows, 0, config);
}

int RegressionTree::Build(const nn::Matrix& x, const std::vector<double>& y,
                          std::vector<size_t>& rows, int depth,
                          const TreeConfig& config) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(y, rows);

  if (depth >= config.max_depth || rows.size() < 2 * config.min_samples_leaf) {
    return node_id;
  }

  // Find the best exact split: for each feature, sort rows by value and scan
  // prefix sums to maximize variance reduction.
  double best_gain = 0.0;
  size_t best_feature = 0;
  double best_threshold = 0.0;

  double total_sum = 0.0, total_sq = 0.0;
  for (size_t r : rows) {
    total_sum += y[r];
    total_sq += y[r] * y[r];
  }
  double n = static_cast<double>(rows.size());
  double parent_sse = total_sq - total_sum * total_sum / n;

  std::vector<size_t> sorted = rows;
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x.At(a, f) < x.At(b, f);
    });
    double left_sum = 0.0, left_sq = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      double yi = y[sorted[i]];
      left_sum += yi;
      left_sq += yi * yi;
      // Can't split between equal feature values.
      if (x.At(sorted[i], f) == x.At(sorted[i + 1], f)) continue;
      size_t nl = i + 1;
      size_t nr = sorted.size() - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double right_sq = total_sq - left_sq;
      double sse_left = left_sq - left_sum * left_sum / static_cast<double>(nl);
      double sse_right =
          right_sq - right_sum * right_sum / static_cast<double>(nr);
      double gain = parent_sse - sse_left - sse_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (x.At(sorted[i], f) + x.At(sorted[i + 1], f));
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;

  std::vector<size_t> left_rows, right_rows;
  for (size_t r : rows) {
    (x.At(r, best_feature) <= best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  WARPER_CHECK(!left_rows.empty() && !right_rows.empty());

  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = Build(x, y, left_rows, depth + 1, config);
  nodes_[node_id].left = left;
  int right = Build(x, y, right_rows, depth + 1, config);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  WARPER_CHECK(fitted());
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    WARPER_CHECK(n.feature < features.size());
    node = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace warper::ml
