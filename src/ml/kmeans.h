// k-means clustering (Lloyd's algorithm with k-means++ seeding).
// Used by the Warper picker to stratify pool records by CE error (§3.2).
#ifndef WARPER_ML_KMEANS_H_
#define WARPER_ML_KMEANS_H_

#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace warper::ml {

struct KMeansResult {
  nn::Matrix centroids;            // k × d
  std::vector<size_t> assignment;  // per input row, in [0, k)
  double inertia = 0.0;            // sum of squared distances to centroids
  int iterations = 0;
};

KMeansResult KMeans(const nn::Matrix& points, size_t k, util::Rng* rng,
                    int max_iters = 50);

// Index of the nearest centroid for a point.
size_t NearestCentroid(const nn::Matrix& centroids,
                       const std::vector<double>& point);

}  // namespace warper::ml

#endif  // WARPER_ML_KMEANS_H_
