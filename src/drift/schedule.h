// DriftSchedule: turns a DriftSpec into a deterministic, seeded sequence of
// table mutations and arrival-mixture weights over the steps of an
// adaptation run. The experiment harness (eval::RunSingleTableDrift) and the
// drift-grid bench both replay schedules; the c1/c2/c3 presets reproduce the
// paper's fixed drifts bit-for-bit.
#ifndef WARPER_DRIFT_SCHEDULE_H_
#define WARPER_DRIFT_SCHEDULE_H_

#include <cstdint>
#include <cstddef>

#include "drift/spec.h"
#include "storage/table.h"
#include "util/annotations.h"
#include "workload/spec.h"

namespace warper::drift {

// Telemetry of one applied table-mutation event.
struct DriftEvent {
  size_t step = 0;
  // This event's share of the spec's total intensity (settling families
  // spread the intensity uniformly over the first `cadence` steps).
  double event_intensity = 0.0;
  size_t rows_appended = 0;
  size_t rows_updated = 0;
  size_t rows_truncated = 0;
  bool sorted = false;
};

class DriftSchedule {
 public:
  // `steps` is the number of adaptation steps after the 0% point
  // (eval::ExperimentConfig::steps). `workload` provides the train/drifted
  // mixtures the workload-drift weight interpolates between.
  DriftSchedule(const DriftSpec& spec, const workload::WorkloadSpec& workload,
                size_t steps);

  const DriftSpec& spec() const { return spec_; }
  size_t steps() const { return steps_; }
  bool arrivals_labeled() const { return spec_.arrivals_labeled; }

  // Drifted-side workload weight of the arrivals of step s, in
  // [0, intensity]. Settling families ramp w = intensity·min(1, (s+1)/cadence);
  // kOscillating flips between intensity and 0 every `cadence` steps
  // (drifted phase first); kData/kNone stay at 0.
  WARPER_DETERMINISTIC double WorkloadWeightAt(size_t s) const;

  // The arrival mixture of step s: WorkloadSpec::MixtureAt(WorkloadWeightAt).
  WARPER_DETERMINISTIC workload::WeightedMix ArrivalMixAt(size_t s) const;

  // The steady-state / peak-drift mixture, used for the post-drift test set
  // and the β reference model (weight = intensity for workload-drifting
  // families, 0 otherwise).
  WARPER_DETERMINISTIC workload::WeightedMix EvalMix() const;

  // True when step s mutates the table: data-drifting families place one
  // event at each of steps 0..cadence-1, each applying 1/cadence of the
  // intensity (so cadence 1 is the paper's single overnight mutation).
  bool HasDataEventAt(size_t s) const;
  // Any mutation at step ≥ 1? The harness must then refresh its test-set
  // ground truth every step.
  bool HasMidRunDataEvents() const;

  // Applies step s's mutation: append → update → sort+truncate, fractions
  // scaled to the event's intensity share. The event RNG is derived from
  // (spec.seed, s) alone, so the resulting table bytes are identical across
  // runs, call orders and thread counts. No-op (all-zero event) when the
  // step carries no event.
  WARPER_DETERMINISTIC DriftEvent ApplyDataEventAt(storage::Table* table,
                                                   size_t s) const;

  // Publishes the drift.step / drift.intensity gauges for step s (the
  // current workload weight, or the cumulative applied data intensity for
  // data-only families).
  void PublishStepTelemetry(size_t s) const;

 private:
  DriftSpec spec_;
  workload::WorkloadSpec workload_;
  size_t steps_;
};

// The c1 sort key: the numeric column with the most distinct values, so the
// truncation visibly moves the data distribution (§4.1.2 sorts "by one
// column"; a near-constant key would barely drift the data).
size_t PickDriftSortColumn(const storage::Table& table);

}  // namespace warper::drift

#endif  // WARPER_DRIFT_SCHEDULE_H_
