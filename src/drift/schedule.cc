#include "drift/schedule.h"

#include <algorithm>
#include <cmath>

#include "storage/data_drift.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace warper::drift {
namespace {

struct DriftGauges {
  util::Gauge* step = util::Metrics().GetGauge("drift.step");
  util::Gauge* intensity = util::Metrics().GetGauge("drift.intensity");
};

DriftGauges& GetDriftGauges() {
  static DriftGauges* gauges = new DriftGauges();
  return *gauges;
}

}  // namespace

DriftSchedule::DriftSchedule(const DriftSpec& spec,
                             const workload::WorkloadSpec& workload,
                             size_t steps)
    : spec_(spec), workload_(workload), steps_(steps) {
  WARPER_CHECK_MSG(spec.Validate().ok(), spec.Validate().ToString());
}

double DriftSchedule::WorkloadWeightAt(size_t s) const {
  if (!spec_.DriftsWorkload() || spec_.intensity <= 0.0) return 0.0;
  if (spec_.family == DriftFamily::kOscillating) {
    // Drifted phase first: the run opens at peak drift, flips back to the
    // training mixture after `cadence` steps, and keeps alternating.
    return (s / spec_.cadence) % 2 == 0 ? spec_.intensity : 0.0;
  }
  double progress = static_cast<double>(s + 1) /
                    static_cast<double>(spec_.cadence);
  return spec_.intensity * std::min(1.0, progress);
}

workload::WeightedMix DriftSchedule::ArrivalMixAt(size_t s) const {
  return workload_.MixtureAt(WorkloadWeightAt(s));
}

workload::WeightedMix DriftSchedule::EvalMix() const {
  return workload_.MixtureAt(spec_.DriftsWorkload() ? spec_.intensity : 0.0);
}

bool DriftSchedule::HasDataEventAt(size_t s) const {
  return spec_.DriftsData() && spec_.intensity > 0.0 && s < spec_.cadence;
}

bool DriftSchedule::HasMidRunDataEvents() const {
  for (size_t s = 1; s < steps_; ++s) {
    if (HasDataEventAt(s)) return true;
  }
  return false;
}

DriftEvent DriftSchedule::ApplyDataEventAt(storage::Table* table,
                                           size_t s) const {
  DriftEvent event;
  event.step = s;
  if (!HasDataEventAt(s)) return event;
  event.event_intensity =
      spec_.intensity / static_cast<double>(spec_.cadence);

  // Event RNG derived from (seed, step) alone: byte-identical mutations no
  // matter how many threads run or in what order callers replay steps.
  util::Rng rng(spec_.seed ^ (0x9E3779B97F4A7C15ULL * (s + 1)));

  if (spec_.append_fraction > 0.0) {
    size_t before = table->NumRows();
    storage::AppendShiftedRows(table,
                               spec_.append_fraction * event.event_intensity,
                               spec_.append_shift, &rng);
    event.rows_appended = table->NumRows() - before;
  }
  if (spec_.update_fraction > 0.0) {
    size_t before = table->NumRows();
    storage::UpdateRandomRows(table,
                              spec_.update_fraction * event.event_intensity,
                              &rng);
    event.rows_updated = static_cast<size_t>(
        spec_.update_fraction * event.event_intensity *
        static_cast<double>(before));
  }
  if (spec_.sort_truncate) {
    // Per-event keep factor compounds to 1 − intensity/2 over all events;
    // one event at intensity 1 keeps exactly the paper's half:
    // floor(0.5·rows) == rows/2 == SortTruncateHalf.
    double total_keep = 1.0 - spec_.intensity / 2.0;
    double event_keep = std::pow(
        total_keep, 1.0 / static_cast<double>(spec_.cadence));
    size_t rows = table->NumRows();
    size_t keep = static_cast<size_t>(event_keep *
                                      static_cast<double>(rows));
    if (keep < rows) {
      table->SortByColumn(PickDriftSortColumn(*table));
      table->Truncate(keep);
      event.sorted = true;
      event.rows_truncated = rows - keep;
    }
  }
  return event;
}

void DriftSchedule::PublishStepTelemetry(size_t s) const {
  DriftGauges& gauges = GetDriftGauges();
  gauges.step->Set(static_cast<double>(s));
  double intensity = WorkloadWeightAt(s);
  if (spec_.DriftsData()) {
    // Cumulative applied data intensity after step s's event.
    double applied = spec_.intensity *
                     std::min(1.0, static_cast<double>(s + 1) /
                                       static_cast<double>(spec_.cadence));
    intensity = std::max(intensity, applied);
  }
  gauges.intensity->Set(intensity);
}

size_t PickDriftSortColumn(const storage::Table& table) {
  size_t sort_col = 0;
  size_t best_distinct = 0;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    size_t distinct = table.column(c).DistinctCount();
    if (table.column(c).type() == storage::ColumnType::kNumeric &&
        distinct > best_distinct) {
      best_distinct = distinct;
      sort_col = c;
    }
  }
  return sort_col;
}

}  // namespace warper::drift
