#include "drift/spec.h"

#include <cmath>
#include <cstdlib>

#include "util/report.h"

namespace warper::drift {
namespace {

// Parses a non-negative decimal; false on trailing garbage or no digits.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && *out >= 0.0;
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

// The blended data-mutation composition the "data"/"corr" grammar families
// use (the c1 preset keeps the paper's pure sort+truncate instead).
void ApplyBlendedComposition(DriftSpec* spec) {
  spec->append_fraction = 0.5;
  spec->update_fraction = 0.25;
  spec->sort_truncate = true;
}

}  // namespace

const char* DriftFamilyName(DriftFamily family) {
  switch (family) {
    case DriftFamily::kNone:
      return "none";
    case DriftFamily::kData:
      return "data";
    case DriftFamily::kWorkload:
      return "workload";
    case DriftFamily::kCorrelated:
      return "corr";
    case DriftFamily::kOscillating:
      return "osc";
  }
  return "?";
}

DriftSpec DriftSpec::C1() {
  DriftSpec spec;
  spec.family = DriftFamily::kData;
  spec.intensity = 1.0;
  spec.cadence = 1;
  spec.arrivals_labeled = false;
  spec.append_fraction = 0.0;
  spec.update_fraction = 0.0;
  spec.sort_truncate = true;
  return spec;
}

DriftSpec DriftSpec::C2() {
  DriftSpec spec;
  spec.family = DriftFamily::kWorkload;
  spec.intensity = 1.0;
  spec.cadence = 1;
  spec.arrivals_labeled = true;
  return spec;
}

DriftSpec DriftSpec::C3() {
  DriftSpec spec = C2();
  spec.arrivals_labeled = false;
  return spec;
}

Result<DriftSpec> DriftSpec::Parse(const std::string& text) {
  if (text == "c1") return C1();
  if (text == "c2") return C2();
  if (text == "c3") return C3();

  // Split off the ~seed, +labels, /cadence and @intensity suffixes, in
  // reverse grammar order so the family name is what remains.
  std::string body = text;
  DriftSpec spec;

  size_t tilde = body.find('~');
  if (tilde != std::string::npos) {
    if (!ParseUint(body.substr(tilde + 1), &spec.seed)) {
      return Status::InvalidArgument("bad drift seed in '" + text + "'");
    }
    body = body.substr(0, tilde);
  }
  size_t plus = body.find('+');
  if (plus != std::string::npos) {
    if (body.substr(plus + 1) != "labels") {
      return Status::InvalidArgument("bad drift flag in '" + text +
                                     "' (expect +labels)");
    }
    spec.arrivals_labeled = true;
    body = body.substr(0, plus);
  }
  size_t slash = body.find('/');
  if (slash != std::string::npos) {
    uint64_t cadence = 0;
    if (!ParseUint(body.substr(slash + 1), &cadence) || cadence == 0) {
      return Status::InvalidArgument("bad drift cadence in '" + text +
                                     "' (expect a positive integer)");
    }
    spec.cadence = static_cast<size_t>(cadence);
    body = body.substr(0, slash);
  }
  size_t at = body.find('@');
  if (at != std::string::npos) {
    if (!ParseDouble(body.substr(at + 1), &spec.intensity) ||
        spec.intensity > 1.0) {
      return Status::InvalidArgument("bad drift intensity in '" + text +
                                     "' (expect a decimal in [0, 1])");
    }
    body = body.substr(0, at);
  }

  if (body == "none") {
    spec.family = DriftFamily::kNone;
  } else if (body == "data") {
    spec.family = DriftFamily::kData;
    ApplyBlendedComposition(&spec);
  } else if (body == "workload") {
    spec.family = DriftFamily::kWorkload;
  } else if (body == "corr") {
    spec.family = DriftFamily::kCorrelated;
    ApplyBlendedComposition(&spec);
  } else if (body == "osc") {
    spec.family = DriftFamily::kOscillating;
  } else {
    return Status::InvalidArgument(
        "bad drift family '" + body +
        "' (expect c1|c2|c3|none|data|workload|corr|osc)");
  }
  Status status = spec.Validate();
  if (!status.ok()) return status;
  return spec;
}

std::string DriftSpec::ToString() const {
  // Presets render by name so their strings survive a Parse round trip with
  // the composition intact.
  auto equals = [](const DriftSpec& a, const DriftSpec& b) {
    return a.family == b.family && a.intensity == b.intensity &&
           a.cadence == b.cadence && a.seed == b.seed &&
           a.arrivals_labeled == b.arrivals_labeled &&
           a.append_fraction == b.append_fraction &&
           a.append_shift == b.append_shift &&
           a.update_fraction == b.update_fraction &&
           a.sort_truncate == b.sort_truncate;
  };
  if (equals(*this, C1())) return "c1";
  if (equals(*this, C2())) return "c2";
  if (equals(*this, C3())) return "c3";

  std::string s = DriftFamilyName(family);
  s += "@" + util::FormatDouble(intensity, 2);
  s += "/" + std::to_string(cadence);
  if (arrivals_labeled) s += "+labels";
  if (seed != kDefaultSeed) s += "~" + std::to_string(seed);
  return s;
}

Status DriftSpec::Validate() const {
  if (!(intensity >= 0.0 && intensity <= 1.0)) {
    return Status::InvalidArgument("drift intensity must be in [0, 1]");
  }
  if (cadence == 0) {
    return Status::InvalidArgument("drift cadence must be >= 1");
  }
  if (append_fraction < 0.0 || update_fraction < 0.0 ||
      update_fraction > 1.0) {
    return Status::InvalidArgument(
        "drift data-composition fractions out of range");
  }
  if (DriftsData() && !sort_truncate && append_fraction == 0.0 &&
      update_fraction == 0.0 && intensity > 0.0) {
    return Status::InvalidArgument(
        "data-drifting spec with an empty mutation composition");
  }
  return Status::OK();
}

}  // namespace warper::drift
