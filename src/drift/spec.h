// DriftLab scenario specifications (ROADMAP item 4, NeurBench-style).
//
// The paper evaluates on three fixed drift schedules (c1 data drift, c2/c3
// workload drifts). A DriftSpec turns those anecdotes into a knob: a scenario
// family plus a drift distance `intensity` ∈ [0, 1] and an arrival `cadence`,
// smoothly interpolating the paper's all-or-nothing flips. Two families the
// paper never tested are first-class: *correlated* data+workload drift
// arriving in the same steps, and *adversarial oscillating* workload drift
// flipping faster than the adaptation cadence (the stress test for the
// early-stop π escalation, §3.4).
#ifndef WARPER_DRIFT_SPEC_H_
#define WARPER_DRIFT_SPEC_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace warper::drift {

// What drifts. The settling families (kData, kWorkload, kCorrelated) arrive
// over `cadence` steps and then hold; kOscillating never settles — `cadence`
// is the half-period of its on/off flip.
enum class DriftFamily {
  kNone,
  kData,         // table mutations, workload unchanged (generalizes c1)
  kWorkload,     // arrival-mixture shift train → drifted (generalizes c2/c3)
  kCorrelated,   // data + workload drift landing in the same steps
  kOscillating,  // workload flips drifted ↔ train every `cadence` steps
};

// "data", "workload", ... for reports and the spec grammar.
const char* DriftFamilyName(DriftFamily family);

struct DriftSpec {
  DriftFamily family = DriftFamily::kWorkload;
  // Drift distance in [0, 1]: 0 = no drift, 1 = the paper's full drifts
  // (c1's sort+truncate-half; c2/c3's complete mixture flip).
  double intensity = 1.0;
  // Settling families: steps the drift takes to fully arrive (1 = overnight
  // onset, like the paper). kOscillating: half-period of the flip, so
  // cadence 1 inverts the workload every step. Must be ≥ 1.
  size_t cadence = 1;
  // Seeds the schedule's own mutation RNG, independent of experiment seeds:
  // the same spec replays a byte-identical table-state sequence anywhere.
  uint64_t seed = kDefaultSeed;
  // Whether arriving queries carry labels (the c2-vs-c3 axis).
  bool arrivals_labeled = false;

  // --- Data-drift composition at intensity 1, per-event order
  // append → update → sort+truncate (fractions of the then-current rows).
  double append_fraction = 0.0;  // rows appended via AppendShiftedRows
  double append_shift = 0.25;    // value shift of appended rows (× range)
  double update_fraction = 0.0;  // rows re-drawn via UpdateRandomRows
  // Sort by the highest-distinct numeric column, truncate intensity/2 of
  // the rows (at intensity 1 exactly the paper's "sort + truncate half").
  bool sort_truncate = true;

  static constexpr uint64_t kDefaultSeed = 0xD21F7ABULL;

  // The paper's schedules as presets, bit-compatible with the retired
  // eval::DriftKind enum (same RNG stream through the experiment harness).
  static DriftSpec C1();  // data drift, workload unchanged, labels lag
  static DriftSpec C2();  // workload flip, arrivals labeled
  static DriftSpec C3();  // workload flip, arrivals unlabeled

  // Grammar:  preset | family[@intensity][/cadence][+labels][~seed]
  //   preset := c1 | c2 | c3
  //   family := none | data | workload | corr | osc
  // e.g. "workload@0.75/2", "data@0.5", "osc/1+labels", "corr@0.5/3~17".
  // The data-composition knobs are programmatic only: "data" and "corr"
  // parse to a blended composition (append 0.5 / update 0.25 /
  // sort+truncate), the c1 preset to the paper's pure sort+truncate.
  static Result<DriftSpec> Parse(const std::string& text);

  // Canonical form; Parse(ToString()) reconstructs any spec Parse produced
  // (presets render as "c1"/"c2"/"c3").
  std::string ToString() const;

  Status Validate() const;

  bool DriftsData() const {
    return family == DriftFamily::kData || family == DriftFamily::kCorrelated;
  }
  bool DriftsWorkload() const {
    return family == DriftFamily::kWorkload ||
           family == DriftFamily::kCorrelated ||
           family == DriftFamily::kOscillating;
  }
};

}  // namespace warper::drift

#endif  // WARPER_DRIFT_SPEC_H_
