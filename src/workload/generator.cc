#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/status.h"

namespace warper::workload {
namespace {

using storage::RangePredicate;
using storage::Table;
using util::Rng;

// Low/high pair for one column under a given method.
void GenerateBounds(const Table& table, size_t col, GenMethod method, Rng* rng,
                    const GeneratorOptions& opts, double* low, double* high) {
  double cmin = table.column(col).Min();
  double cmax = table.column(col).Max();
  double span = cmax - cmin;
  if (span <= 0.0) {
    *low = cmin;
    *high = cmax;
    return;
  }
  switch (method) {
    case GenMethod::kW1: {
      double a = rng->Uniform(cmin, cmax);
      double b = rng->Uniform(cmin, cmax);
      *low = std::min(a, b);
      *high = std::max(a, b);
      return;
    }
    case GenMethod::kW2: {
      // Log transform of the (shifted) range: endpoints are exp-uniform, so
      // they concentrate near the low end of the domain.
      double lo_log = std::log1p(0.0);
      double hi_log = std::log1p(span);
      double a = cmin + std::expm1(rng->Uniform(lo_log, hi_log));
      double b = cmin + std::expm1(rng->Uniform(lo_log, hi_log));
      *low = std::min(a, b);
      *high = std::max(a, b);
      return;
    }
    case GenMethod::kW3: {
      // Data-centred: a sampled row value plus a random width.
      size_t row = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(table.NumRows()) - 1));
      double center = table.column(col).Value(row);
      double width = rng->Uniform(0.0, span);
      *low = std::clamp(center - 0.5 * width, cmin, cmax);
      *high = std::clamp(center + 0.5 * width, cmin, cmax);
      return;
    }
    case GenMethod::kW4: {
      // min/max of a small row sample: wide, data-supported ranges.
      double lo = cmax, hi = cmin;
      for (size_t i = 0; i < opts.w4_sample_rows; ++i) {
        size_t row = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(table.NumRows()) - 1));
        double v = table.column(col).Value(row);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      *low = lo;
      *high = hi;
      return;
    }
    case GenMethod::kW5: {
      // Frequency-stratified: bucket the column, pick a bucket uniformly
      // (so rare strata are as likely as dense ones), then a row from it.
      constexpr size_t kStrata = 8;
      std::map<size_t, std::vector<size_t>> strata;
      // Subsample rows for the strata index to keep generation cheap.
      size_t step = std::max<size_t>(1, table.NumRows() / 2048);
      for (size_t r = 0; r < table.NumRows(); r += step) {
        double v = table.column(col).Value(r);
        size_t bucket = std::min(
            kStrata - 1,
            static_cast<size_t>((v - cmin) / span * static_cast<double>(kStrata)));
        strata[bucket].push_back(r);
      }
      size_t pick = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(strata.size()) - 1));
      auto it = strata.begin();
      std::advance(it, static_cast<long>(pick));
      const std::vector<size_t>& rows = it->second;
      size_t row = rows[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))];
      double center = table.column(col).Value(row);
      double width = rng->Uniform(0.0, span);
      *low = std::clamp(center - 0.5 * width, cmin, cmax);
      *high = std::clamp(center + 0.5 * width, cmin, cmax);
      return;
    }
  }
}

}  // namespace

const char* GenMethodName(GenMethod m) {
  switch (m) {
    case GenMethod::kW1:
      return "w1";
    case GenMethod::kW2:
      return "w2";
    case GenMethod::kW3:
      return "w3";
    case GenMethod::kW4:
      return "w4";
    case GenMethod::kW5:
      return "w5";
  }
  return "?";
}

RangePredicate GeneratePredicate(const Table& table, GenMethod method,
                                 Rng* rng, const GeneratorOptions& opts) {
  WARPER_CHECK(table.NumRows() > 0);
  RangePredicate pred = RangePredicate::FullRange(table);
  size_t d = table.NumColumns();
  size_t max_cols = std::min(opts.max_constrained_cols, d);
  size_t min_cols = std::min(opts.min_constrained_cols, max_cols);
  size_t num_cols = static_cast<size_t>(rng->UniformInt(
      static_cast<int64_t>(min_cols), static_cast<int64_t>(max_cols)));
  std::vector<size_t> cols = rng->SampleWithoutReplacement(d, num_cols);
  for (size_t c : cols) {
    GenerateBounds(table, c, method, rng, opts, &pred.low[c], &pred.high[c]);
    // Categorical columns use integer dictionary codes; snap bounds so that
    // equality predicates stay expressible.
    if (table.column(c).type() == storage::ColumnType::kCategorical) {
      pred.low[c] = std::ceil(pred.low[c]);
      pred.high[c] = std::floor(pred.high[c]);
      if (pred.low[c] > pred.high[c]) pred.low[c] = pred.high[c];
    }
  }
  pred.Canonicalize(table);
  return pred;
}

std::vector<RangePredicate> GenerateWorkload(const Table& table,
                                             const std::vector<GenMethod>& mix,
                                             size_t n, Rng* rng,
                                             const GeneratorOptions& opts) {
  WARPER_CHECK(!mix.empty());
  std::vector<RangePredicate> preds;
  preds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GenMethod m = mix[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(mix.size()) - 1))];
    preds.push_back(GeneratePredicate(table, m, rng, opts));
  }
  return preds;
}

bool WeightedMix::IsUniform() const {
  double reference = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    if (reference == 0.0) {
      reference = w;
    } else if (std::abs(w - reference) > 1e-12 * reference) {
      return false;
    }
  }
  return true;
}

std::vector<RangePredicate> GenerateWorkload(const Table& table,
                                             const WeightedMix& mix, size_t n,
                                             Rng* rng,
                                             const GeneratorOptions& opts) {
  WARPER_CHECK(mix.methods.size() == mix.weights.size());
  // Keep only positively weighted methods.
  std::vector<GenMethod> methods;
  std::vector<double> weights;
  for (size_t i = 0; i < mix.methods.size(); ++i) {
    if (mix.weights[i] > 0.0) {
      methods.push_back(mix.methods[i]);
      weights.push_back(mix.weights[i]);
    }
  }
  WARPER_CHECK_MSG(!methods.empty(), "weighted mixture has no positive weight");
  if (mix.IsUniform()) {
    // Same RNG stream as the paper's uniform path (bit-compat anchor).
    return GenerateWorkload(table, methods, n, rng, opts);
  }
  std::vector<RangePredicate> preds;
  preds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GenMethod m = methods[rng->Categorical(weights)];
    preds.push_back(GeneratePredicate(table, m, rng, opts));
  }
  return preds;
}

}  // namespace warper::workload
