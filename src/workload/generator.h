// Predicate workload generators — the five methods of the paper's Table 5:
//   w1  draw {low, high} from r(C) uniformly at random
//   w2  draw from a logarithmic transform of r(C)
//   w3  equal to a sampled row plus a random width in r(C)
//   w4  equal to min(Ĉ), max(Ĉ) from a sample of k rows
//   w5  equal to a stratified sample row by frequency plus a random width
// Each generated predicate constrains a random subset of columns; the rest
// span their full domain.
#ifndef WARPER_WORKLOAD_GENERATOR_H_
#define WARPER_WORKLOAD_GENERATOR_H_

#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace warper::workload {

enum class GenMethod { kW1, kW2, kW3, kW4, kW5 };

// "w3" etc. for reports.
const char* GenMethodName(GenMethod m);

struct GeneratorOptions {
  // Number of columns each predicate constrains, drawn uniformly in
  // [min_constrained_cols, max_constrained_cols] (capped by table width).
  size_t min_constrained_cols = 1;
  size_t max_constrained_cols = 3;
  // Sample size k for w4.
  size_t w4_sample_rows = 8;
};

// One predicate by the given method.
storage::RangePredicate GeneratePredicate(const storage::Table& table,
                                          GenMethod method, util::Rng* rng,
                                          const GeneratorOptions& opts = {});

// `n` predicates drawn from a uniform mixture over `mix`.
WARPER_DETERMINISTIC std::vector<storage::RangePredicate> GenerateWorkload(
    const storage::Table& table, const std::vector<GenMethod>& mix, size_t n,
    util::Rng* rng, const GeneratorOptions& opts = {});

// A generation mixture with per-method weights (need not be normalized;
// non-positive weights drop their method). The drift lab interpolates
// between the train and drifted sides of a WorkloadSpec with these.
struct WeightedMix {
  std::vector<GenMethod> methods;
  std::vector<double> weights;  // aligned with `methods`

  // All (kept) weights equal — the mixture degenerates to uniform.
  bool IsUniform() const;
};

// `n` predicates drawn proportionally to `mix.weights`. A uniform mixture
// delegates to the uniform overload above, consuming the RNG identically —
// weight-1.0 drift specs stay bit-compatible with the paper's presets.
WARPER_DETERMINISTIC std::vector<storage::RangePredicate> GenerateWorkload(
    const storage::Table& table, const WeightedMix& mix, size_t n,
    util::Rng* rng, const GeneratorOptions& opts = {});

}  // namespace warper::workload

#endif  // WARPER_WORKLOAD_GENERATOR_H_
