// Join-query workload generation for the join-CE experiment (Table 7d):
// "we construct newly arrived queries by randomly sampling the join
// conditions and use the same procedure above to generate predicates on
// base tables" (§4.1).
#ifndef WARPER_WORKLOAD_JOIN_WORKLOAD_H_
#define WARPER_WORKLOAD_JOIN_WORKLOAD_H_

#include <vector>

#include "storage/join_annotator.h"
#include "workload/generator.h"

namespace warper::workload {

// Generates `n` join queries over the star schema: a random non-empty subset
// of fact tables, with `method`-generated predicates on the center table and
// every participating fact table.
std::vector<storage::JoinQuery> GenerateJoinWorkload(
    const storage::StarSchema& schema, GenMethod method, size_t n,
    util::Rng* rng, const GeneratorOptions& opts = {});

}  // namespace warper::workload

#endif  // WARPER_WORKLOAD_JOIN_WORKLOAD_H_
