#include "workload/join_workload.h"

#include "util/status.h"

namespace warper::workload {

std::vector<storage::JoinQuery> GenerateJoinWorkload(
    const storage::StarSchema& schema, GenMethod method, size_t n,
    util::Rng* rng, const GeneratorOptions& opts) {
  WARPER_CHECK(schema.center != nullptr && !schema.facts.empty());
  std::vector<storage::JoinQuery> queries;
  queries.reserve(n);
  uint32_t full_mask = (1u << schema.facts.size()) - 1;
  for (size_t i = 0; i < n; ++i) {
    storage::JoinQuery q;
    q.join_mask = static_cast<uint32_t>(rng->UniformInt(1, full_mask));
    q.center_pred = GeneratePredicate(*schema.center, method, rng, opts);
    for (const auto& fact : schema.facts) {
      q.fact_preds.push_back(GeneratePredicate(*fact.table, method, rng, opts));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace warper::workload
