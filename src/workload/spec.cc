#include "workload/spec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/report.h"

namespace warper::workload {
namespace {

Result<std::vector<GenMethod>> ParseDigits(const std::string& digits) {
  if (digits.empty()) {
    return Status::InvalidArgument("empty workload mixture");
  }
  std::vector<GenMethod> methods;
  for (char ch : digits) {
    if (ch < '1' || ch > '5') {
      return Status::InvalidArgument(std::string("bad workload digit '") + ch +
                                     "' (expect 1-5)");
    }
    methods.push_back(static_cast<GenMethod>(ch - '1'));
  }
  return methods;
}

}  // namespace

Result<WorkloadSpec> WorkloadSpec::Parse(const std::string& spec) {
  if (spec.size() < 2 || spec[0] != 'w') {
    return Status::InvalidArgument("workload spec must start with 'w': " + spec);
  }
  std::string body = spec.substr(1);

  // Optional "@<weight>" suffix: the drifted side's mixture weight.
  double drift_weight = 1.0;
  size_t at = body.find('@');
  if (at != std::string::npos) {
    std::string weight_text = body.substr(at + 1);
    body = body.substr(0, at);
    if (weight_text.empty()) {
      return Status::InvalidArgument("empty drift weight in: " + spec);
    }
    char* end = nullptr;
    drift_weight = std::strtod(weight_text.c_str(), &end);
    if (end != weight_text.c_str() + weight_text.size() ||
        !(drift_weight >= 0.0 && drift_weight <= 1.0)) {
      return Status::InvalidArgument("drift weight must be in [0, 1]: " +
                                     spec);
    }
  }
  auto with_weight = [drift_weight](WorkloadSpec out) {
    out.drift_weight = drift_weight;
    return out;
  };

  if (body == "1-5") {
    WorkloadSpec out;
    for (int i = 0; i < 5; ++i) {
      out.train.push_back(static_cast<GenMethod>(i));
    }
    out.drifted = out.train;
    return with_weight(out);
  }

  size_t slash = body.find('/');
  if (slash == std::string::npos) {
    // Single mixture, no drift: same on both sides.
    Result<std::vector<GenMethod>> methods = ParseDigits(body);
    if (!methods.ok()) return methods.status();
    WorkloadSpec out;
    out.train = methods.ValueOrDie();
    out.drifted = out.train;
    return with_weight(out);
  }

  // Paper shorthand: "w12/345" — the right side omits the 'w'. An optional
  // 'w' after the slash ("w12/w345") is also accepted.
  std::string left = body.substr(0, slash);
  std::string right = body.substr(slash + 1);
  if (!right.empty() && right[0] == 'w') right = right.substr(1);

  Result<std::vector<GenMethod>> train = ParseDigits(left);
  if (!train.ok()) return train.status();
  Result<std::vector<GenMethod>> drifted = ParseDigits(right);
  if (!drifted.ok()) return drifted.status();

  WorkloadSpec out;
  out.train = train.MoveValueOrDie();
  out.drifted = drifted.MoveValueOrDie();
  return with_weight(out);
}

std::string WorkloadSpec::ToString() const {
  std::string s = "w";
  for (GenMethod m : train) s += static_cast<char>('1' + static_cast<int>(m));
  s += "/";
  for (GenMethod m : drifted) s += static_cast<char>('1' + static_cast<int>(m));
  if (drift_weight != 1.0) s += "@" + util::FormatDouble(drift_weight, 2);
  return s;
}

WeightedMix WorkloadSpec::MixtureAt(double w) const {
  w = std::min(1.0, std::max(0.0, w));
  WeightedMix mix;
  // The degenerate endpoints keep the exact method order of the side they
  // collapse to — GenerateWorkload then replays the paper's uniform RNG
  // stream over that same vector.
  if (w >= 1.0 || train == drifted) {
    mix.methods = drifted;
    mix.weights.assign(drifted.size(), 1.0);
    return mix;
  }
  if (w <= 0.0) {
    mix.methods = train;
    mix.weights.assign(train.size(), 1.0);
    return mix;
  }
  // Per-method accumulation in w1..w5 enum order: methods appearing on both
  // sides sum their shares.
  double weight_by_method[5] = {0, 0, 0, 0, 0};
  for (GenMethod m : train) {
    weight_by_method[static_cast<int>(m)] +=
        (1.0 - w) / static_cast<double>(train.size());
  }
  for (GenMethod m : drifted) {
    weight_by_method[static_cast<int>(m)] +=
        w / static_cast<double>(drifted.size());
  }
  for (int i = 0; i < 5; ++i) {
    if (weight_by_method[i] > 0.0) {
      mix.methods.push_back(static_cast<GenMethod>(i));
      mix.weights.push_back(weight_by_method[i]);
    }
  }
  return mix;
}

}  // namespace warper::workload
