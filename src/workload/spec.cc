#include "workload/spec.h"

namespace warper::workload {
namespace {

Result<std::vector<GenMethod>> ParseDigits(const std::string& digits) {
  if (digits.empty()) {
    return Status::InvalidArgument("empty workload mixture");
  }
  std::vector<GenMethod> methods;
  for (char ch : digits) {
    if (ch < '1' || ch > '5') {
      return Status::InvalidArgument(std::string("bad workload digit '") + ch +
                                     "' (expect 1-5)");
    }
    methods.push_back(static_cast<GenMethod>(ch - '1'));
  }
  return methods;
}

}  // namespace

Result<WorkloadSpec> WorkloadSpec::Parse(const std::string& spec) {
  if (spec.size() < 2 || spec[0] != 'w') {
    return Status::InvalidArgument("workload spec must start with 'w': " + spec);
  }
  std::string body = spec.substr(1);

  if (body == "1-5") {
    WorkloadSpec out;
    for (int i = 0; i < 5; ++i) {
      out.train.push_back(static_cast<GenMethod>(i));
    }
    out.drifted = out.train;
    return out;
  }

  size_t slash = body.find('/');
  if (slash == std::string::npos) {
    // Single mixture, no drift: same on both sides.
    Result<std::vector<GenMethod>> methods = ParseDigits(body);
    if (!methods.ok()) return methods.status();
    WorkloadSpec out;
    out.train = methods.ValueOrDie();
    out.drifted = out.train;
    return out;
  }

  // Paper shorthand: "w12/345" — the right side omits the 'w'. An optional
  // 'w' after the slash ("w12/w345") is also accepted.
  std::string left = body.substr(0, slash);
  std::string right = body.substr(slash + 1);
  if (!right.empty() && right[0] == 'w') right = right.substr(1);

  Result<std::vector<GenMethod>> train = ParseDigits(left);
  if (!train.ok()) return train.status();
  Result<std::vector<GenMethod>> drifted = ParseDigits(right);
  if (!drifted.ok()) return drifted.status();

  WorkloadSpec out;
  out.train = train.MoveValueOrDie();
  out.drifted = drifted.MoveValueOrDie();
  return out;
}

std::string WorkloadSpec::ToString() const {
  std::string s = "w";
  for (GenMethod m : train) s += static_cast<char>('1' + static_cast<int>(m));
  s += "/";
  for (GenMethod m : drifted) s += static_cast<char>('1' + static_cast<int>(m));
  return s;
}

}  // namespace warper::workload
