// Workload-drift specifications in the paper's notation: "w12/345" trains on
// a uniform mixture of {w1, w2} and drifts to {w3, w4, w5}; "w1/2" is a
// single-method pair; "w1-5" is the all-methods mixture used when only the
// data drifts (c1). A "@0.7" suffix gives partial workload drift a notation:
// the arrival stream mixes 70% of the drifted mixture with 30% of the
// training mixture instead of the paper's all-or-nothing flip.
#ifndef WARPER_WORKLOAD_SPEC_H_
#define WARPER_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/generator.h"

namespace warper::workload {

struct WorkloadSpec {
  std::vector<GenMethod> train;
  std::vector<GenMethod> drifted;
  // Mixture weight of the drifted side in the post-drift arrival stream.
  // 1.0 (default) is the paper's complete flip; w ∈ (0, 1) is partial
  // workload drift ("w12/345@0.7").
  double drift_weight = 1.0;

  // Parses "w12/345", "w1/2", "w125/34", or "w1-5" (same mixture on both
  // sides), each optionally suffixed with "@<weight>", weight ∈ [0, 1].
  // Returns InvalidArgument on malformed input.
  static Result<WorkloadSpec> Parse(const std::string& spec);

  // Formats back to the paper's notation ("@0.70" appended when the drift
  // weight is partial). Round-trips through Parse.
  std::string ToString() const;

  // The arrival mixture at drifted-side weight `w`: per-method weight
  // (1−w)/|train| on the train methods plus w/|drifted| on the drifted
  // ones. Degenerates to the uniform train (w = 0) or drifted (w = 1)
  // mixture, preserving the paper presets' RNG stream.
  WeightedMix MixtureAt(double w) const;
  // MixtureAt(drift_weight).
  WeightedMix ArrivalMix() const { return MixtureAt(drift_weight); }
};

}  // namespace warper::workload

#endif  // WARPER_WORKLOAD_SPEC_H_
