// Workload-drift specifications in the paper's notation: "w12/345" trains on
// a uniform mixture of {w1, w2} and drifts to {w3, w4, w5}; "w1/2" is a
// single-method pair; "w1-5" is the all-methods mixture used when only the
// data drifts (c1).
#ifndef WARPER_WORKLOAD_SPEC_H_
#define WARPER_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/generator.h"

namespace warper::workload {

struct WorkloadSpec {
  std::vector<GenMethod> train;
  std::vector<GenMethod> drifted;

  // Parses "w12/345", "w1/2", "w125/34", or "w1-5" (same mixture on both
  // sides). Returns InvalidArgument on malformed input.
  static Result<WorkloadSpec> Parse(const std::string& spec);

  // Formats back to the paper's notation.
  std::string ToString() const;
};

}  // namespace warper::workload

#endif  // WARPER_WORKLOAD_SPEC_H_
