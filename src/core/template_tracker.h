// Per-template error tracking: a predicate-structure fingerprinter plus a
// util::ErrorLog of running |ln q-error| stats per template, and the health
// verdicts that drive targeted adaptation (TrackerConfig.targeted).
//
// A template is what pg_track_optimizer keys its rstats by and what AQO's
// hash.c computes: the query's *structure* — table/domain, the set of
// constrained columns, and each column's operator kind — with the constants
// excluded. Two predicates that differ only in their bound values share a
// fingerprint, so a localized workload shift (new constants, same shapes —
// or new shapes entirely) shows up as a handful of unhealthy fingerprints
// instead of one global δ_m blur.
//
// Thread safety: Observe/TopOffenders/health reads go through the sharded
// ErrorLog and atomics — safe from the adaptation thread and serving-path
// feedback (EstimationServer::ReportObservation) concurrently.
#ifndef WARPER_CORE_TEMPLATE_TRACKER_H_
#define WARPER_CORE_TEMPLATE_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ce/query_domain.h"
#include "core/config.h"
#include "util/errlog.h"
#include "util/metrics.h"
#include "util/mutex.h"

namespace warper::core {

// Structural fingerprint of one canonical feature vector. The layout is
// `leading_bits` categorical features (join bits) followed by {low, high}
// pairs normalized to [0, 1]; a column is constrained iff low > 0 or
// high < 1, with the operator kind read from which side is constrained
// (equality when low == high). `salt` separates tables/domains; the result
// is masked to the low `hash_bits` bits (64 = full width).
uint64_t TemplateFingerprint(const std::vector<double>& features,
                             size_t leading_bits, uint64_t salt,
                             size_t hash_bits = 64);

// Instance name of a per-template metric: the fingerprint in hex is
// inserted after the "warper.template." prefix —
// TemplateMetricName("warper.template.err_ewma", 0x2a) →
// "warper.template.000000000000002a.err_ewma" — so the FAMILY literal at
// the call site is what tools/metric_names.txt lists (the same contract as
// serve::TenantMetricName).
std::string TemplateMetricName(const char* family, uint64_t fingerprint);

class TemplateTracker {
 public:
  // `domain` must outlive the tracker (it supplies the feature layout and
  // the table salt). Invalid config values are the caller's to reject via
  // TrackerConfig::Validate; the tracker itself only reads them.
  TemplateTracker(const ce::QueryDomain* domain, const TrackerConfig& config);

  TemplateTracker(const TemplateTracker&) = delete;
  TemplateTracker& operator=(const TemplateTracker&) = delete;

  uint64_t Fingerprint(const std::vector<double>& features) const;

  // Records one labeled estimate: err = |ln QError(estimated, actual)|,
  // cost = the true cardinality (bigger queries weigh more in the
  // cost-weighted view). No-op when the tracker is disabled.
  void Observe(const std::vector<double>& features, double estimated,
               double actual);

  // Advances the invocation tick (the "last seen" clock).
  void Tick() { tick_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t tick() const { return tick_.load(std::memory_order_relaxed); }

  // Drops the error history (a data drift invalidated it, c1).
  void InvalidateHistory();

  // --- Health verdicts (the targeted-adaptation signals). ---
  // Drift score of one template: EWMA error relative to the unhealthy
  // threshold (> 1 ⇒ unhealthy), 0 below min_count observations.
  double DriftScore(const util::RunningErrorStats& stats) const;
  bool IsUnhealthy(uint64_t fingerprint) const;
  // True once at least one template has min_count observations — before
  // that the tracker has no verdict and targeting must fall back to global.
  bool HasVerdict() const;
  // True when every judged template is healthy (false without a verdict).
  bool AllHealthy() const;
  // Fraction of all observations that landed in unhealthy templates — the
  // scale factor targeted adaptation applies to n_p.
  double UnhealthyShare() const;
  size_t UnhealthyCount() const;
  // Fingerprints of every unhealthy template.
  std::unordered_set<uint64_t> UnhealthySet() const;

  // The k worst templates by EWMA error, with their drift scores.
  struct Offender {
    uint64_t fingerprint = 0;
    util::RunningErrorStats stats;
    double drift_score = 0.0;
  };
  std::vector<Offender> TopOffenders(size_t k) const;
  // Human-readable offender table (the quickstart / REPL view).
  std::string OffendersTextDump(size_t k) const;

  const util::ErrorLog& log() const { return *log_; }
  const TrackerConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

 private:
  const ce::QueryDomain* domain_;
  TrackerConfig config_;
  uint64_t salt_;
  std::shared_ptr<util::ErrorLog> log_;
  std::atomic<uint64_t> tick_{0};

  // Per-template metric handles, resolved once per fingerprint (the
  // registry mutex is paid only on a template's first observation).
  struct TemplateMetrics {
    util::Gauge* err_ewma = nullptr;
    util::Counter* obs = nullptr;
  };
  TemplateMetrics& MetricsFor(uint64_t fingerprint);
  mutable util::Mutex metrics_mu_;
  std::unordered_map<uint64_t, TemplateMetrics> metric_handles_
      WARPER_GUARDED_BY(metrics_mu_);
};

}  // namespace warper::core

#endif  // WARPER_CORE_TEMPLATE_TRACKER_H_
