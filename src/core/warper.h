// The Warper controller — Algorithm 1 and the periodic det_drft → adapt
// loop of Figure 3. Warper owns the query pool, the learned modules
// (E, G, D), the picker and the drift detector; the CE model M and the
// annotation substrate (behind ce::QueryDomain) stay external black boxes.
#ifndef WARPER_CORE_WARPER_H_
#define WARPER_CORE_WARPER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "ce/estimator.h"
#include "ce/model_io.h"
#include "ce/query_domain.h"
#include "core/config.h"
#include "core/drift.h"
#include "core/gan.h"
#include "core/picker.h"
#include "core/query_pool.h"
#include "core/template_tracker.h"
#include "util/status.h"
#include "util/timer.h"

namespace warper::core {

class Warper {
 public:
  // `domain` and `model` must outlive this object; `model` must already be
  // trained (Warper adapts an existing model, it does not build one).
  Warper(const ce::QueryDomain* domain, ce::CardinalityEstimator* model,
         const WarperConfig& config);

  // Seeds the pool with the original training workload I_train and
  // pre-trains E and G offline via the autoencoder task (§3.5). Also
  // records the training-time error for det_drft, applies the parallel
  // configuration process-wide, and builds the learned modules.
  //
  // InvalidArgument for a bad config or malformed corpus (empty, or
  // feature dims that do not match the domain); FailedPrecondition when
  // the CE model has not been trained yet.
  Status Initialize(const std::vector<ce::LabeledExample>& train_corpus);

  // One periodic invocation.
  struct Invocation {
    // Newly arrived queries since the last invocation; cardinality = -1
    // marks a query whose label is not available (c3 scenarios).
    std::vector<ce::LabeledExample> new_queries;
    // Database telemetry for data-drift identification.
    double data_changed_fraction = 0.0;
    double canary_shift = 0.0;
    // Maximum annotator calls this invocation may spend (models the "slow
    // labeling" constraint of c1/c3).
    size_t annotation_budget = std::numeric_limits<size_t>::max();
  };

  // Wall and thread-CPU seconds one phase of an invocation spent. CPU is
  // the controller thread's own time — work fanned out to pool workers shows
  // up in wall but not cpu, which is exactly the gap worth watching.
  struct PhaseTiming {
    const char* name = "";
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
  };

  // Per-phase breakdown of one invocation, in execution order. Phases that
  // did not run (e.g. "generate" outside c2) are absent.
  struct InvocationTiming {
    std::vector<PhaseTiming> phases;
    double wall_seconds = 0.0;  // whole Invoke() call
    double cpu_seconds = 0.0;

    // The named phase, or nullptr when it did not run.
    const PhaseTiming* Find(const char* name) const;
  };

  struct InvocationResult {
    ModeFlags mode;
    double delta_m = 0.0;
    bool delta_m_valid = false;
    double delta_js = 0.0;
    // Scalar drift severity (DriftDetector::Severity) observed this
    // invocation, computed whether or not det_drft fired. The serving
    // fleet's shared adaptation executor ranks tenants with
    // priority = severity × traffic; everything else may ignore it.
    double drift_severity = 0.0;
    size_t generated = 0;
    size_t picked = 0;
    size_t annotated = 0;
    bool model_updated = false;
    // Targeted adaptation (TrackerConfig.targeted): true when this
    // invocation's picks were filtered to unhealthy templates.
    bool targeted = false;
    // True when per-template health vetoed a labeled-evidence global
    // trigger (every judged template healthy ⇒ no adaptation machinery ran).
    bool targeted_skip = false;
    // Unhealthy templates at pick time (0 when targeting was off/idle).
    size_t unhealthy_templates = 0;
    // Model GMQ on the recent labeled new-workload window, before / after.
    double gmq_before = 0.0;
    double gmq_after = 0.0;
    GanTrainStats gan_stats;
    InvocationTiming timing;
  };

  // FailedPrecondition before a successful Initialize(); InvalidArgument
  // when a new query's feature vector does not match the domain's dim.
  Result<InvocationResult> Invoke(const Invocation& invocation);

  // Captured parameters of the learned modules E, G, D — one half of a
  // serving snapshot (the other half is a clone of M). Restoring it is the
  // §3.4 rollback path: when an adaptation regresses, the serving layer
  // puts both M and the modules back to the last published version, so the
  // next episode does not fine-tune on top of the regressed weights.
  struct ModuleState {
    ce::MlpSnapshot encoder;
    ce::MlpSnapshot generator;
    ce::MlpSnapshot discriminator;
  };

  // FailedPrecondition before a successful Initialize().
  Result<ModuleState> CaptureModuleState() const;
  Status RestoreModuleState(const ModuleState& state);

  // The adapted CE model — the serving layer clones it when publishing a
  // snapshot and restores it on rollback.
  ce::CardinalityEstimator* model() const { return model_; }

  // The query domain M estimates over (featurization width, annotation).
  const ce::QueryDomain* domain() const { return domain_; }

  const QueryPool& pool() const { return pool_; }
  QueryPool& pool() { return pool_; }
  // Per-template error stats over every labeled estimate this controller
  // has seen (TrackerConfig). Concurrent reads are safe while Invoke runs.
  TemplateTracker& tracker() { return *tracker_; }
  const TemplateTracker& tracker() const { return *tracker_; }
  WarperModels& models() { return *models_; }
  DriftDetector& detector() { return detector_; }
  const WarperConfig& config() const { return config_; }

  // Accumulators covering Warper's own work (module updates, generation,
  // picking); annotation cost is accounted by the domain's annotator.
  // cpu() is controller-thread CPU seconds, wall() elapsed wall seconds of
  // the same scopes — wall >> cpu means the invocation waited on pool
  // workers (or was preempted), which the paper's "CPU over test period"
  // accounting must not hide.
  const util::CpuAccumulator& cpu() const { return cpu_; }
  const util::CpuAccumulator& wall() const { return wall_; }

 private:
  // Model GMQ on the most recent labeled new-workload records.
  bool RecentNewGmq(double* gmq) const;
  // δ_js between recent new features and (a sample of) training features.
  double ComputeDeltaJs() const;
  // Annotates up to `budget` of the given records through the domain.
  // Writes labels into the pool, so the caller (Invoke) must hold the
  // pool's writer capability.
  size_t AnnotateRecords(const std::vector<size_t>& indices, size_t budget)
      WARPER_REQUIRES(pool_.writer_mu());
  // Runs update(M, pool) with mode-appropriate example selection; the picked
  // multiset contributes with its multiplicities.
  void UpdateModel(const ModeFlags& mode, double delta_m,
                   const std::vector<size_t>& picked_multiset)
      WARPER_REQUIRES(pool_.writer_mu());

  const ce::QueryDomain* domain_;
  ce::CardinalityEstimator* model_;
  WarperConfig config_;
  QueryPool pool_;
  std::unique_ptr<TemplateTracker> tracker_;
  std::unique_ptr<WarperModels> models_;
  Picker picker_;
  DriftDetector detector_;
  util::Rng rng_;
  util::CpuAccumulator cpu_;
  util::CpuAccumulator wall_;
  // Config problems surface from Initialize() as a Status, not from the
  // constructor (which cannot return one).
  Status config_status_;
  bool initialized_ = false;
  // An adaptation episode stays active across invocations until the
  // per-step accuracy gain falls below the early-stop threshold (§3.4), so
  // refinement continues even once δ_m has dropped back under π.
  bool episode_active_ = false;
  ModeFlags active_mode_;
  int small_gain_streak_ = 0;
  // Indices of new-source records appended in the current episode, in
  // arrival order (the evaluation window).
  std::vector<size_t> new_record_order_;
};

}  // namespace warper::core

#endif  // WARPER_CORE_WARPER_H_
