// All Warper knobs in one place, with the paper's defaults.
#ifndef WARPER_CORE_CONFIG_H_
#define WARPER_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::core {

// Ablation variants (§4.3, Table 10): replace the learned picker with
// uniform-random or entropy-based (uncertainty) sampling, or replace the GAN
// generator with AUG-style Gaussian noise on the arrived queries.
enum class PickerVariant { kWarper, kRandom, kEntropy };
enum class GeneratorVariant { kGan, kNoiseAug };

// Knobs for the serving layer (src/serve): the micro-batcher in front of
// the estimator, the admission controller on its queue, and the eval gate
// the background adaptation thread applies before publishing a snapshot.
struct ServeConfig {
  // Micro-batcher: requests coalesced into one Mlp::Predict matrix pass.
  // batch_max = 1 disables coalescing — Estimate() computes inline on the
  // caller's thread against the current snapshot (the lock-free fast path).
  size_t batch_max = 32;
  // After the first request of a batch arrives, how long the dispatcher
  // waits for more before running a partial batch.
  int64_t batch_timeout_us = 200;

  // Admission control: bounded request queue, and what an arrival does when
  // the queue is full — wait for space (kBlock) or fail fast with
  // Unavailable (kShed).
  enum class Overflow { kBlock, kShed };
  size_t queue_capacity = 1024;
  Overflow overflow = Overflow::kBlock;
  // Deadline applied to requests that do not carry their own (µs; 0 = no
  // deadline). A request still queued when its deadline passes is answered
  // with DeadlineExceeded instead of occupying a batch slot.
  int64_t default_deadline_us = 0;

  // Eval gate (§3.4): an adapted model is published only when its eval GMQ
  // is at most `regression_tolerance` × the last published version's;
  // otherwise M and the modules roll back to the last-good snapshot.
  double regression_tolerance = 1.10;

  // --- Fleet knobs (serve::ServingFleet) ---
  // Worker threads of the shared background-adaptation executor that
  // multiplexes every tenant (replaces one adaptation thread per server).
  size_t adapt_threads = 1;
  // Per-tenant serving queue depth: the fleet gives each tenant's
  // micro-batcher a queue of this capacity, so one saturated tenant cannot
  // consume the whole fleet's queueing headroom.
  size_t tenant_queue_depth = 256;
  // Per-tenant shed budget: when > 0, the fleet refuses (Unavailable) a
  // tenant's request while that tenant already has this many requests
  // queued — regardless of the overflow policy — so a saturated tenant is
  // shed instead of parking caller threads that siblings need. Requests
  // with EstimateRequest::priority > 0 bypass the budget (they still obey
  // the tenant's queue capacity). 0 disables the budget.
  size_t tenant_shed_budget = 0;
  // Shared-executor scheduling: a pending adaptation's base priority is
  //   (floor + drift_weight · severity) · (1 + traffic_weight · traffic)
  // — the ROADMAP's "drift severity × traffic" with a floor so tenants
  // that never drifted still get service — and its effective priority adds
  // aging_rate · seconds_waiting, which makes the schedule starvation-free:
  // any bounded base priority is eventually overtaken by a waiting tenant.
  double adapt_priority_drift_weight = 1.0;
  double adapt_priority_traffic_weight = 1.0;
  double adapt_priority_floor = 0.01;
  double adapt_aging_rate = 0.1;

  // Every knob above, checked once: serve entry points
  // (EstimationServer::Start, ServingFleet::Start) call this instead of
  // re-checking ad hoc, mirroring WarperConfig::Validate.
  Status Validate() const;
};

// Knobs for the per-template error tracker (core::TemplateTracker): the
// pg_track_optimizer-style running stats keyed by predicate-template
// fingerprint, and the targeted-adaptation feedback loop they drive.
struct TrackerConfig {
  // Master switch; off costs nothing but also disables targeting.
  bool enabled = true;
  // EWMA factor of the per-template time-decayed error.
  double ewma_alpha = 0.2;
  // A template is unhealthy once its EWMA |ln q-error| exceeds this with at
  // least `min_count` observations. ln 2 ≈ 0.693: the model is off by more
  // than 2× on that template's recent queries.
  double unhealthy_threshold = 0.6931471805599453;
  size_t min_count = 8;
  // Fingerprint width in bits (1..64). Narrow widths force distinct
  // templates to share stats buckets — a memory/e resolution trade tested
  // explicitly; 64 in production.
  size_t hash_bits = 64;
  // The feedback loop: per-template drift scores replace the single global
  // trigger. Picks are filtered to unhealthy templates, n_p scales with the
  // unhealthy traffic share, and an all-healthy tracker vetoes a purely
  // workload-driven δ_m trigger (data-telemetry c1 triggers are never
  // vetoed). Off by default — global Warper behavior is the baseline.
  bool targeted = false;
  // Floor on the targeted n_p scale factor, so a tiny unhealthy share
  // still gets a usable pick budget.
  double min_targeted_fraction = 0.05;
  // Publish per-template metric instances (warper.template.<fp>.*). Off by
  // default to keep the registry small; benches and the quickstart opt in.
  bool template_metrics = false;
  // Name under which the tracker's ErrorLog registers for the
  // WARPER_ERRLOG export ("" = not exported).
  std::string export_name = "warper";

  Status Validate() const;
};

struct WarperConfig {
  // --- Learned module shapes (Table 3) ---
  // Encoder/generator trunk: `hidden_layers` fully-connected layers of
  // `hidden_units` with LeakyReLU; discriminator is one FC-3 layer on z.
  size_t hidden_units = 128;
  size_t hidden_layers = 3;
  // Embedding width |z|.
  size_t embedding_dim = 16;

  // --- Training (§3.5) ---
  double learning_rate = 1e-3;  // halved every 10 epochs by the scheduler
  size_t batch_size = 64;
  // n_i: iterations for update_AutoEncoder / update_MultiTask per invocation.
  int n_i = 100;
  // Loss-convergence early stop inside the n_i loop.
  double loss_rel_tol = 1e-3;
  int loss_patience = 10;

  // --- Generation & picking (§4.1) ---
  // n_g = gen_fraction · n_t synthetic queries per adaptation step; the
  // generator is disabled when n_g < 1.
  double gen_fraction = 0.1;
  // n_p: queries sub-selected by the picker per invocation.
  size_t n_p = 1000;
  // Error strata (k-means buckets) for the c1/c3 picker.
  size_t picker_strata = 5;
  // kNN neighbours when assigning unlabeled queries to strata.
  size_t picker_knn = 5;

  // --- Drift detection (§3.1) ---
  // γ: annotated queries needed for a robust model; estimated offline and
  // tuned online.
  size_t gamma = 400;
  // π: the det_drft threshold on δ_m (GMQ gap vs. training-time error).
  double pi_initial = 0.2;
  // Early-stop: when an adaptation improves GMQ by less than this, π grows.
  double early_stop_gain = 0.01;
  double pi_growth = 1.5;
  double pi_max = 64.0;
  // γ online-tuning growth when c4 adapts too slowly (§3.4).
  double gamma_growth = 1.5;
  // Data-drift triggers: changed-row fraction / canary cardinality shift.
  double data_changed_threshold = 0.05;
  double canary_shift_threshold = 0.10;
  // JS-divergence projection: reading the paper's "[0, k^m)" with k=10,
  // m=3 as 10³ = 1000 histogram cells — 3 PCA dims × 10 bins. (The m^k
  // reading gives 59049 cells, where every small sample looks disjoint.)
  size_t js_pca_dims = 3;
  size_t js_bins = 10;
  // Minimum δ_js to treat an accuracy gap as a *workload* drift.
  double js_threshold = 0.05;
  // A δ_js this large triggers adaptation even without a δ_m accuracy gap.
  // Disabled by default (> 1): at realistic per-period sample sizes the
  // sparse-histogram JSD carries a noise floor comparable to real drift
  // signals, so the no-gap case is covered by the passive per-period model
  // refresh instead (c_Model is "a constant overhead no matter if Warper
  // kicks in", §4.3).
  double js_strong_threshold = 1.01;

  // PCA refresh cadence: recompute the embedding-space PCA every invocation
  // is wasteful; reuse across invocations of one adaptation episode.
  // (kept simple: recomputed on demand)

  // --- Ablations (Table 10) ---
  PickerVariant picker_variant = PickerVariant::kWarper;
  GeneratorVariant generator_variant = GeneratorVariant::kGan;
  // Noise σ (normalized feature space) for the G→AUG ablation.
  double ablation_noise_stddev = 0.1;

  // --- Parallel execution (tech report: "many calls can be parallelized") —
  // one struct governs the shared thread pool, the nn::Matrix kernels and
  // the batch-annotation fan-out. The default (threads = 0) uses every core;
  // set threads = 1 for fully serial runs. `parallel.simd` picks the dense-
  // kernel instruction set: with the default (kAuto + deterministic=true)
  // the scalar reference kernels run, bit-exact across machines; set
  // deterministic=false to let adaptation episodes use the AVX2+FMA kernels
  // (same math to ~1e-12 relative tolerance — see DESIGN.md).
  util::ParallelConfig parallel;

  // --- Serving (src/serve) — see ServeConfig above.
  ServeConfig serve;

  // --- Per-template error tracking & targeted adaptation — see
  // TrackerConfig above.
  TrackerConfig tracker;

  uint64_t seed = 42;

  // Checks every knob for a usable value (positive sizes, n_i > 0,
  // non-negative thresholds, valid thread counts). Entry points call this
  // once instead of re-checking ad hoc; Warper::Initialize returns the same
  // Status instead of aborting.
  Status Validate() const;
};

// Applies `config` process-wide: resizes the shared util::ThreadPool and
// installs the nn::Matrix kernel policy. Warper::Initialize calls this with
// WarperConfig::parallel; benches and examples may call it directly. Last
// writer wins — intended for startup, not concurrent reconfiguration.
void ApplyParallelConfig(const util::ParallelConfig& config);

}  // namespace warper::core

#endif  // WARPER_CORE_CONFIG_H_
