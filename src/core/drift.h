// Drift detection and drift-type identification (§3.1, §3.4).
//
// det_drft triggers when the CE model's error on newly arriving queries
// exceeds the training-time error by more than the adaptive threshold π
// (δ_m > π), or when database telemetry signals a data drift. Identified
// modes follow Table 2: c1 (data drift), c2 (workload drift, inadequate
// queries), c3 (workload drift, inadequate labels), c4 (adequate both).
#ifndef WARPER_CORE_DRIFT_H_
#define WARPER_CORE_DRIFT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.h"

namespace warper::core {

struct ModeFlags {
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  bool c4 = false;

  bool Any() const { return c1 || c2 || c3 || c4; }
  bool WorkloadDrift() const { return c2 || c3 || c4; }
  // "c1|c2"-style rendering for reports.
  std::string ToString() const;
};

// Inputs to one det_drft call, gathered by the controller.
struct DriftSignals {
  // Model GMQ on the newly arrived queries that carry labels; NaN when no
  // labels are available this period.
  double gmq_new = 0.0;
  bool gmq_new_valid = false;
  // Cumulative newly arrived queries in the current adaptation episode, and
  // how many of them have labels.
  size_t n_new = 0;
  size_t n_new_labeled = 0;
  // Workload distance between new and training predicates (δ_js), in [0,1].
  double delta_js = 0.0;
  // Data telemetry.
  double data_changed_fraction = 0.0;
  double canary_shift = 0.0;
};

class DriftDetector {
 public:
  explicit DriftDetector(const WarperConfig& config);

  // Records the training-time error that δ_m is measured against.
  void SetTrainingError(double gmq_train);

  // δ_m for a given new-workload GMQ.
  double DeltaM(double gmq_new) const;

  // One det_drft call. Empty flags (mode = ∅) means "no drift: keep M".
  ModeFlags Detect(const DriftSignals& signals);

  // Scalar drift severity in [0, ∞): how hard this tenant is drifting,
  // independent of whether det_drft fired. The max of the accuracy gap δ_m
  // (when measurable), the workload distance δ_js and the data-telemetry
  // magnitudes — all dimensionless, so the serving fleet can rank tenants
  // with priority = severity × traffic without per-signal scaling.
  double Severity(const DriftSignals& signals) const;

  // Early-stop feedback (§3.4): called after each adaptation with the GMQ
  // improvement it achieved; small gains raise π, and slow c4 progress
  // raises γ.
  void ReportAdaptationGain(double gain, const ModeFlags& mode);

  double pi() const { return pi_; }
  size_t gamma() const { return gamma_; }
  double training_error() const { return gmq_train_; }
  // How often the early stop raised π over this detector's lifetime. Under
  // an oscillating drift faster than the adaptation cadence, each misfired
  // adaptation (flip reverses before the gain lands) escalates π — this is
  // the misfire count the drift-grid bench tracks.
  size_t pi_escalations() const { return pi_escalations_; }

 private:
  WarperConfig config_;
  double gmq_train_ = 1.0;
  double pi_;
  size_t gamma_;
  size_t pi_escalations_ = 0;
};

// δ_js: the symmetric discrete Jensen–Shannon workload distance (§3.1).
// Reduces predicates (rows of feature vectors) to `pca_dims` dimensions with
// PCA fit on the union, quantizes each dimension into `bins` equal-width
// bins, histograms the cells, and returns the JS divergence in [0, 1].
double WorkloadJsDivergence(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b,
                            size_t pca_dims, size_t bins);

}  // namespace warper::core

#endif  // WARPER_CORE_DRIFT_H_
