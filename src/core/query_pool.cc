#include "core/query_pool.h"

#include <algorithm>
#include <string>

#include "util/status.h"

namespace warper::core {

size_t QueryPool::Append(PoolRecord record) {
  writer_mu_.AssertHeld();
  WARPER_CHECK(!record.features.empty());
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

size_t QueryPool::AppendLabeled(std::vector<double> features, double gt,
                                Source label) {
  PoolRecord r;
  r.features = std::move(features);
  r.gt = gt;
  r.label = label;
  return Append(std::move(r));
}

size_t QueryPool::AppendUnlabeled(std::vector<double> features, Source label) {
  PoolRecord r;
  r.features = std::move(features);
  r.gt = -1.0;
  r.label = label;
  return Append(std::move(r));
}

std::vector<size_t> QueryPool::IndicesBySource(Source source) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].label == source) out.push_back(i);
  }
  return out;
}

std::vector<size_t> QueryPool::LabeledIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].HasLabel()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> QueryPool::UnlabeledIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].HasLabel()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> QueryPool::FreshLabeledIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].HasFreshLabel()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> QueryPool::StaleOrUnlabeledIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].HasFreshLabel()) out.push_back(i);
  }
  return out;
}

void QueryPool::MarkSourceStale(Source source) {
  writer_mu_.AssertHeld();
  for (auto& r : records_) {
    if (r.label == source && r.HasLabel()) r.stale = true;
  }
}

Result<PoolRecord> QueryPool::GetRecord(size_t i) const {
  if (i >= records_.size()) {
    return Status::OutOfRange("QueryPool: record index " + std::to_string(i) +
                              " >= size " + std::to_string(records_.size()));
  }
  return records_[i];
}

Status QueryPool::SetLabel(size_t index, double gt) {
  writer_mu_.AssertHeld();
  if (index >= records_.size()) {
    return Status::OutOfRange("QueryPool: label index " +
                              std::to_string(index) + " >= size " +
                              std::to_string(records_.size()));
  }
  if (gt < 0.0) {
    return Status::InvalidArgument(
        "QueryPool: cardinality label must be >= 0, got " +
        std::to_string(gt));
  }
  records_[index].gt = gt;
  records_[index].stale = false;
  return Status::OK();
}

std::vector<ce::LabeledExample> QueryPool::LabeledExamples(
    const std::vector<size_t>& indices) const {
  std::vector<ce::LabeledExample> examples;
  examples.reserve(indices.size());
  for (size_t i : indices) {
    const PoolRecord& r = records_[i];
    WARPER_CHECK_MSG(r.HasLabel(), "record " << i << " has no label");
    examples.push_back({r.features, static_cast<int64_t>(r.gt)});
  }
  return examples;
}

void QueryPool::PruneUnlabeledGenerated() {
  writer_mu_.AssertHeld();
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [](const PoolRecord& r) {
                                  return r.label == Source::kGen &&
                                         !r.HasLabel();
                                }),
                 records_.end());
}

}  // namespace warper::core
