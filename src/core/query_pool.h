// The query pool (§3.2): an in-memory structure of tuples (q, gt, z, l, l',
// s'). q is stored in the domain's canonical featurization; gt = -1 marks a
// missing label; l records the source (train / new / gen); l' and s' are the
// discriminator's predicted source and confidence.
#ifndef WARPER_CORE_QUERY_POOL_H_
#define WARPER_CORE_QUERY_POOL_H_

#include <cstdint>
#include <vector>

#include "ce/estimator.h"
#include "util/mutex.h"
#include "util/status.h"

namespace warper::core {

enum class Source { kTrain = 0, kNew = 1, kGen = 2 };
inline constexpr size_t kNumSources = 3;

struct PoolRecord {
  std::vector<double> features;  // q, canonical featurization
  double gt = -1.0;              // ground-truth cardinality; -1 = unlabeled
  std::vector<double> z;         // embedding (empty until encoded)
  Source label = Source::kTrain; // l
  int predicted_label = -1;      // l' (-1 until the discriminator runs)
  double confidence = 0.0;       // s'
  // Set when a data drift invalidates this record's gt (the value is kept —
  // its error against M is exactly the picker's stratification signal — but
  // it is excluded from model updates until re-annotated).
  bool stale = false;

  bool HasLabel() const { return gt >= 0.0; }
  bool HasFreshLabel() const { return HasLabel() && !stale; }
};

// Threading contract (single-writer), now machine-checked: every mutating
// method requires the pool's writer capability, writer_mu(). Exactly one
// thread may mutate the pool at a time — in a serving deployment that is
// the background adaptation thread driving Warper::Invoke (Invoke holds
// writer_mu() for the whole invocation; serve::EstimationServer funnels
// every invocation through its one adaptation thread). Under Clang
// (-DWARPER_STATIC_ANALYSIS=ON) calling a mutator without holding
// writer_mu() fails the build; at runtime the bulk mutators AssertHeld().
// Concurrent const access is safe only while no writer is active; the
// serving fast path never reads the pool at all — Estimate() traffic runs
// against immutable serve::ModelSnapshot clones — so estimates during
// Invoke() do not race. Off-thread observers (benches, tests polling
// Warper::pool()) must either quiesce the adaptation thread first or accept
// torn index views; they must not hold a record reference across an Append
// (vector reallocation) or PruneUnlabeledGenerated (index invalidation).
class QueryPool {
 public:
  QueryPool() = default;

  // Copies and moves transfer the records but never the mutex: each pool
  // owns its own writer capability, and moving a pool out from under an
  // active writer is already a contract violation.
  QueryPool(const QueryPool& other) : records_(other.records_) {}
  QueryPool(QueryPool&& other) noexcept
      : records_(std::move(other.records_)) {}
  QueryPool& operator=(const QueryPool& other) {
    records_ = other.records_;
    return *this;
  }
  QueryPool& operator=(QueryPool&& other) noexcept {
    records_ = std::move(other.records_);
    return *this;
  }

  // The single-writer capability. Mutators require it; acquire it with
  // util::MutexLock before any write:
  //   util::MutexLock writer(&pool.writer_mu());
  //   pool.AppendLabeled(...);
  util::Mutex& writer_mu() const WARPER_RETURN_CAPABILITY(writer_mu_) {
    return writer_mu_;
  }

  size_t Size() const { return records_.size(); }

  // Unchecked access for the controller's hot loops, where `i` comes from an
  // index view this pool just produced. External callers should prefer
  // GetRecord. The non-const overload hands out a mutable record, so it
  // needs the writer capability (compile-time only: no per-call assertion
  // in these hot loops).
  const PoolRecord& record(size_t i) const { return records_[i]; }
  PoolRecord& record(size_t i) WARPER_REQUIRES(writer_mu_) {
    return records_[i];
  }

  // Bounds-checked record access: OutOfRange for a bad index.
  Result<PoolRecord> GetRecord(size_t i) const;

  // Appends a record; returns its index.
  size_t Append(PoolRecord record) WARPER_REQUIRES(writer_mu_);

  // Convenience appends.
  size_t AppendLabeled(std::vector<double> features, double gt, Source label)
      WARPER_REQUIRES(writer_mu_);
  size_t AppendUnlabeled(std::vector<double> features, Source label)
      WARPER_REQUIRES(writer_mu_);

  // Index views.
  std::vector<size_t> IndicesBySource(Source source) const;
  // Records with any gt value, stale or fresh (the picker's strata signal).
  std::vector<size_t> LabeledIndices() const;
  std::vector<size_t> UnlabeledIndices() const;
  // Records safe to train M on: labeled and not stale.
  std::vector<size_t> FreshLabeledIndices() const;
  // Records whose labels need (re-)annotation: unlabeled or stale.
  std::vector<size_t> StaleOrUnlabeledIndices() const;

  // Marks every record of `source` as stale (data drift invalidates labels).
  void MarkSourceStale(Source source) WARPER_REQUIRES(writer_mu_);
  // Installs a fresh label. OutOfRange for a bad index, InvalidArgument for
  // a negative cardinality.
  Status SetLabel(size_t index, double gt) WARPER_REQUIRES(writer_mu_);

  // Labeled records as training examples for the CE model.
  std::vector<ce::LabeledExample> LabeledExamples(
      const std::vector<size_t>& indices) const;

  // Drops every generated (l = gen) record that never received a label;
  // keeps the pool from accumulating unlabeled synthetic queries across
  // invocations.
  void PruneUnlabeledGenerated() WARPER_REQUIRES(writer_mu_);

 private:
  // The writer capability. mutable so const pools still expose it (a reader
  // that wants the strict no-torn-views guarantee may lock it too).
  mutable util::Mutex writer_mu_;
  std::vector<PoolRecord> records_;
};

}  // namespace warper::core

#endif  // WARPER_CORE_QUERY_POOL_H_
