#include "core/drift.h"

#include <algorithm>
#include <cmath>

#include "ml/pca.h"
#include "nn/matrix.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/status.h"

namespace warper::core {

std::string ModeFlags::ToString() const {
  std::string s;
  auto append = [&](const char* name) {
    if (!s.empty()) s += "|";
    s += name;
  };
  if (c1) append("c1");
  if (c2) append("c2");
  if (c3) append("c3");
  if (c4) append("c4");
  return s.empty() ? "none" : s;
}

DriftDetector::DriftDetector(const WarperConfig& config)
    : config_(config), pi_(config.pi_initial), gamma_(config.gamma) {}

void DriftDetector::SetTrainingError(double gmq_train) {
  WARPER_CHECK(gmq_train >= 1.0);
  gmq_train_ = gmq_train;
}

double DriftDetector::DeltaM(double gmq_new) const {
  return gmq_new - gmq_train_;
}

double DriftDetector::Severity(const DriftSignals& signals) const {
  double severity = 0.0;
  if (signals.gmq_new_valid) {
    severity = std::max(severity, DeltaM(signals.gmq_new));
  }
  severity = std::max(severity, signals.delta_js);
  severity = std::max(severity, signals.data_changed_fraction);
  severity = std::max(severity, signals.canary_shift);
  return std::max(severity, 0.0);
}

ModeFlags DriftDetector::Detect(const DriftSignals& signals) {
  ModeFlags mode;

  bool data_drift = signals.data_changed_fraction >
                        config_.data_changed_threshold ||
                    signals.canary_shift > config_.canary_shift_threshold;

  bool accuracy_degraded =
      signals.gmq_new_valid && DeltaM(signals.gmq_new) > pi_;
  // With no labeled feedback at all, the workload-distance signal has to
  // stand in for the blind accuracy gap. A very large δ_js also triggers on
  // its own: when the training-time error was already high, the new
  // workload's error can match it (δ_m ≈ 0) while the model is still far
  // from what it could achieve on the new distribution.
  bool workload_shift = signals.delta_js > config_.js_threshold;
  // The strong-δ_js path is latched off once the early stop has raised π:
  // δ_js measures workload distance, which stays high even after the model
  // has fully adapted, so without the latch it would re-trigger forever.
  bool strong_js = signals.delta_js > config_.js_strong_threshold &&
                   pi_ <= config_.pi_initial;
  bool workload_drift =
      workload_shift &&
      (accuracy_degraded || !signals.gmq_new_valid || strong_js);

  if (data_drift) mode.c1 = true;

  if (workload_drift) {
    if (signals.n_new < gamma_) mode.c2 = true;
    // Labels inadequate: fewer labels than γ AND labeling is lagging the
    // arrivals (c3 "cannot be confused with c2 or c4" — it is explicitly
    // about the label-computation rate, §3.4).
    if (signals.n_new_labeled < gamma_ &&
        signals.n_new_labeled < signals.n_new) {
      mode.c3 = true;
    }
    if (!mode.c2 && !mode.c3) mode.c4 = true;
  } else if (accuracy_degraded && !data_drift) {
    // Accuracy dropped without a measurable workload-distribution shift
    // (outliers from the old distribution, §3.1): fall back to a plain
    // update when labels are adequate.
    mode.c4 = true;
  }

  // A fresh accuracy-gap detection (one that cleared the current, possibly
  // raised, bar) resets π so the new drift is tracked responsively. Drifts
  // detected only via δ_js or telemetry leave π alone — otherwise the
  // strong-δ_js path would unlatch itself every period.
  if (mode.Any() && accuracy_degraded) pi_ = config_.pi_initial;
  return mode;
}

void DriftDetector::ReportAdaptationGain(double gain, const ModeFlags& mode) {
  if (gain < config_.early_stop_gain) {
    // Early stop: require a larger drift before adapting again.
    pi_ = std::min(pi_ * config_.pi_growth, config_.pi_max);
    ++pi_escalations_;
    static util::Counter* escalations =
        util::Metrics().GetCounter("warper.pi_escalations");
    escalations->Increment();
    // Slow improvement under c4 indicates an underestimated γ (§3.4).
    if (mode.c4 && !mode.c2) {
      gamma_ = static_cast<size_t>(static_cast<double>(gamma_) *
                                   config_.gamma_growth);
    }
  }
}

double WorkloadJsDivergence(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b,
                            size_t pca_dims, size_t bins) {
  WARPER_CHECK(!a.empty() && !b.empty());
  WARPER_CHECK(bins >= 2);
  size_t d = a[0].size();

  // Fit PCA on the union so both workloads share a projection.
  nn::Matrix all(a.size() + b.size(), d);
  for (size_t i = 0; i < a.size(); ++i) all.SetRow(i, a[i]);
  for (size_t i = 0; i < b.size(); ++i) {
    WARPER_CHECK(b[i].size() == d);
    all.SetRow(a.size() + i, b[i]);
  }

  // Cap dimensions so bins^k stays tractable.
  size_t k = std::min({pca_dims, d, static_cast<size_t>(
                                       std::log(1e6) / std::log(double(bins)))});
  k = std::max<size_t>(k, 1);
  ml::Pca pca;
  pca.Fit(all, k);
  nn::Matrix proj = pca.Transform(all);
  k = pca.num_components();

  // Per-dimension equal-width bin edges over the union.
  std::vector<double> lo(k), hi(k);
  for (size_t c = 0; c < k; ++c) {
    lo[c] = hi[c] = proj.At(0, c);
    for (size_t r = 1; r < proj.rows(); ++r) {
      lo[c] = std::min(lo[c], proj.At(r, c));
      hi[c] = std::max(hi[c], proj.At(r, c));
    }
  }

  size_t cells = 1;
  for (size_t c = 0; c < k; ++c) cells *= bins;
  util::NormalizedHistogram ha(cells), hb(cells);

  auto cell_of = [&](size_t row) {
    size_t cell = 0;
    for (size_t c = 0; c < k; ++c) {
      double span = hi[c] - lo[c];
      size_t bin = 0;
      if (span > 0.0) {
        bin = std::min(bins - 1,
                       static_cast<size_t>((proj.At(row, c) - lo[c]) / span *
                                           static_cast<double>(bins)));
      }
      cell = cell * bins + bin;
    }
    return cell;
  };

  for (size_t i = 0; i < a.size(); ++i) ha.Add(cell_of(i));
  for (size_t i = 0; i < b.size(); ++i) hb.Add(cell_of(a.size() + i));
  ha.Normalize();
  hb.Normalize();
  return util::JensenShannonDivergence(ha, hb);
}

}  // namespace warper::core
