// Training of the learned Warper modules (§3.3):
//
//   update_AutoEncoder —  q,gt → E → z → G → q̂, minimizing L1(q, q̂) over
//     all pool records (drifts c1/c3, and offline pre-training per §3.5).
//
//   update_MultiTask — the 3-class GAN: the discriminator learns to label
//     pool records and fresh synthetic queries with their true source
//     l ∈ {gen,new,train}; the generator learns to make the discriminator
//     say "new" for its outputs:  z+ε → G → q_gen → E → z' → D → l'.
#ifndef WARPER_CORE_GAN_H_
#define WARPER_CORE_GAN_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/modules.h"
#include "core/query_pool.h"
#include "util/rng.h"

namespace warper::core {

struct GanTrainStats {
  int iterations = 0;
  double final_loss = 0.0;
};

// Owns the three learned modules and their training procedures.
class WarperModels {
 public:
  // Validated construction: InvalidArgument when the module shapes cannot be
  // built (zero feature dim, non-positive max cardinality, bad config).
  static Result<std::unique_ptr<WarperModels>> Create(size_t feature_dim,
                                                      const WarperConfig& config,
                                                      double max_card,
                                                      uint64_t seed);

  // Unchecked construction for call sites that validated already.
  WarperModels(size_t feature_dim, const WarperConfig& config, double max_card,
               uint64_t seed);

  Encoder& encoder() { return *encoder_; }
  const Encoder& encoder() const { return *encoder_; }
  Generator& generator() { return *generator_; }
  Discriminator& discriminator() { return *discriminator_; }
  const Discriminator& discriminator() const { return *discriminator_; }

  // E∘G reconstruction training for up to `iterations` minibatch steps with
  // loss-convergence early stop.
  GanTrainStats UpdateAutoEncoder(const QueryPool& pool, int iterations);

  // One GAN session: alternating discriminator (+encoder) and generator
  // steps for up to `iterations` rounds.
  GanTrainStats UpdateMultiTask(const QueryPool& pool, int iterations);

  // Synthesizes `n` feature vectors: base embeddings are drawn from the
  // new-workload records (falling back to the whole pool), perturbed with
  // ε ~ N(0, σ²), and decoded by G. Callers must canonicalize through the
  // domain before annotation.
  std::vector<std::vector<double>> GenerateQueries(const QueryPool& pool,
                                                   size_t n);

 private:
  // Embeddings of the records that seed generation (l = new, else all).
  nn::Matrix SeedEmbeddings(const QueryPool& pool) const;
  // Encoder-input matrix for generated features (no labels).
  nn::Matrix GeneratedToEncoderInput(const nn::Matrix& features) const;

  WarperConfig config_;
  util::Rng rng_;
  std::unique_ptr<Encoder> encoder_;
  std::unique_ptr<Generator> generator_;
  std::unique_ptr<Discriminator> discriminator_;
};

}  // namespace warper::core

#endif  // WARPER_CORE_GAN_H_
