// The learned Warper modules (Table 3):
//   Encoder  E: q (+ gt when available) → z      — trunk of FC-128+LeakyReLU
//   Generator G: z + ε → q_gen                   — same trunk, FC-m head
//   Discriminator D: z → l' ∈ {gen,new,train}, s' — a single FC-3 layer
// Each wraps an nn::Mlp and adds the input/output conventions Warper uses.
#ifndef WARPER_CORE_MODULES_H_
#define WARPER_CORE_MODULES_H_

#include <vector>

#include "core/config.h"
#include "core/query_pool.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace warper::core {

class Encoder {
 public:
  // `max_card` bounds the gt channel normalization (the domain's maximum
  // cardinality).
  Encoder(size_t feature_dim, const WarperConfig& config, double max_card,
          util::Rng* rng);

  // Input row for one record: features ++ {normalized log-card, has-label}.
  // The paper's embed() "uses the ground truth labels as an additional input
  // whenever they are available and up-to-date" (§3.2). `use_label = false`
  // zeroes the label channels: the GAN / discrimination paths must embed
  // label-free, otherwise the discriminator can separate generated queries
  // (never labeled) from new ones by the has-label flag alone instead of by
  // predicate content.
  std::vector<double> BuildInput(const PoolRecord& record,
                                 bool use_label = true) const;
  nn::Matrix BuildInputs(const QueryPool& pool,
                         const std::vector<size_t>& indices,
                         bool use_label = true) const;

  size_t input_dim() const { return feature_dim_ + 2; }
  size_t embedding_dim() const { return mlp_.output_size(); }

  nn::Mlp& mlp() { return mlp_; }
  const nn::Mlp& mlp() const { return mlp_; }

  // Computes and stores z for the given pool records. Embeddings are
  // label-free so that labeled and unlabeled records live in one space (the
  // picker compares them via kNN). Writes into the pool, so the caller must
  // hold the pool's writer capability.
  void EmbedRecords(QueryPool* pool, const std::vector<size_t>& indices) const
      WARPER_REQUIRES(pool->writer_mu());

 private:
  size_t feature_dim_;
  double log_card_scale_;
  nn::Mlp mlp_;
};

class Generator {
 public:
  Generator(size_t feature_dim, const WarperConfig& config, util::Rng* rng);

  size_t feature_dim() const { return mlp_.output_size(); }

  nn::Mlp& mlp() { return mlp_; }
  const nn::Mlp& mlp() const { return mlp_; }

  // z + ε for each base row, with ε ~ N(0, σ²) per dimension where σ is the
  // per-dimension std-dev of `base` (§3.2). Returns the perturbed inputs.
  static nn::Matrix PerturbEmbeddings(const nn::Matrix& base, util::Rng* rng);

  // Decoded (sigmoid-bounded) synthetic feature vectors for a batch of
  // perturbed embeddings.
  nn::Matrix Generate(const nn::Matrix& z) const;

 private:
  nn::Mlp mlp_;
};

class Discriminator {
 public:
  Discriminator(const WarperConfig& config, util::Rng* rng);

  nn::Mlp& mlp() { return mlp_; }
  const nn::Mlp& mlp() const { return mlp_; }

  // Runs D over stored embeddings and writes (l', s') back into the pool.
  // s' is the softmax probability of the predicted class. Requires the
  // pool's writer capability.
  void ClassifyRecords(QueryPool* pool, const std::vector<size_t>& indices)
      const WARPER_REQUIRES(pool->writer_mu());

  // Per-row probability of class `source` for a batch of embeddings.
  std::vector<double> ClassProbability(const nn::Matrix& z,
                                       Source source) const;

 private:
  nn::Mlp mlp_;
};

}  // namespace warper::core

#endif  // WARPER_CORE_MODULES_H_
