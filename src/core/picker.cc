#include "core/picker.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ce/metrics.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "util/status.h"

namespace warper::core {

Picker::Picker(const WarperConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<size_t> Picker::PickGenerated(const QueryPool& pool,
                                          const Discriminator& discriminator,
                                          size_t n_p) {
  std::vector<size_t> candidates;
  for (size_t i : pool.IndicesBySource(Source::kGen)) {
    if (!pool.record(i).HasLabel()) candidates.push_back(i);
  }
  if (candidates.empty()) return {};

  nn::Matrix z(candidates.size(), pool.record(candidates[0]).z.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PoolRecord& r = pool.record(candidates[i]);
    WARPER_CHECK_MSG(!r.z.empty(), "generated record lacks an embedding");
    z.SetRow(i, r.z);
  }
  // Weight: confidence that the synthetic query resembles the new workload.
  std::vector<double> weights =
      discriminator.ClassProbability(z, Source::kNew);

  // Sampling with replacement: the result is a *multiset* — duplicates are
  // intentional, they weight the model update toward queries that resemble
  // the new workload. Annotation later pays only for the unique records.
  std::vector<size_t> picked(n_p);
  for (size_t i = 0; i < n_p; ++i) {
    picked[i] = candidates[rng_.Categorical(weights)];
  }
  return picked;
}

std::vector<size_t> Picker::PickRandom(const std::vector<size_t>& candidates,
                                       size_t n_p) {
  if (candidates.empty()) return {};
  std::vector<size_t> picked(n_p);
  for (size_t i = 0; i < n_p; ++i) {
    picked[i] = candidates[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  }
  return picked;
}

std::vector<size_t> Picker::PickEntropy(const QueryPool& pool,
                                        const std::vector<size_t>& candidates,
                                        const Discriminator& discriminator,
                                        size_t n_p) {
  if (candidates.empty()) return {};
  nn::Matrix z(candidates.size(), pool.record(candidates[0]).z.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    WARPER_CHECK(!pool.record(candidates[i]).z.empty());
    z.SetRow(i, pool.record(candidates[i]).z);
  }
  // Entropy over all class probabilities.
  std::vector<double> weights(candidates.size(), 0.0);
  for (size_t s = 0; s < kNumSources; ++s) {
    std::vector<double> p =
        discriminator.ClassProbability(z, static_cast<Source>(s));
    for (size_t i = 0; i < p.size(); ++i) {
      weights[i] += -p[i] * std::log(std::max(p[i], 1e-12));
    }
  }
  std::vector<size_t> picked(n_p);
  for (size_t i = 0; i < n_p; ++i) {
    picked[i] = candidates[rng_.Categorical(weights)];
  }
  return picked;
}

std::vector<size_t> Picker::PickStratified(
    const QueryPool& pool, const std::vector<size_t>& candidates,
    const ce::CardinalityEstimator& model, size_t n_p) {
  if (candidates.empty()) return {};
  std::vector<size_t> labeled = pool.LabeledIndices();
  if (labeled.empty()) {
    // No error signal at all: uniform sample.
    std::vector<size_t> shuffled = candidates;
    rng_.Shuffle(&shuffled);
    shuffled.resize(std::min(n_p, shuffled.size()));
    return shuffled;
  }

  // 1. q-error of M on every labeled record (log-scale for clustering).
  nn::Matrix x(labeled.size(), pool.record(labeled[0]).features.size());
  for (size_t i = 0; i < labeled.size(); ++i) {
    x.SetRow(i, pool.record(labeled[i]).features);
  }
  std::vector<double> targets = model.EstimateTargets(x);
  nn::Matrix errors(labeled.size(), 1);
  for (size_t i = 0; i < labeled.size(); ++i) {
    double est = ce::TargetToCard(targets[i]);
    errors.At(i, 0) = std::log(ce::QError(est, pool.record(labeled[i]).gt));
  }

  // 2. k-means strata over the error values.
  size_t k = std::min(config_.picker_strata, labeled.size());
  ml::KMeansResult clusters = ml::KMeans(errors, k, &rng_);

  // Embedding corpus of labeled records for the kNN assignment.
  bool have_embeddings = !pool.record(labeled[0]).z.empty();
  nn::Matrix corpus;
  if (have_embeddings) {
    corpus = nn::Matrix(labeled.size(), pool.record(labeled[0]).z.size());
    for (size_t i = 0; i < labeled.size(); ++i) {
      corpus.SetRow(i, pool.record(labeled[i]).z);
    }
  }

  // 3. Assign each candidate to a stratum.
  std::vector<std::vector<size_t>> strata(clusters.centroids.rows());
  std::unordered_set<size_t> labeled_set(labeled.begin(), labeled.end());
  for (size_t cand : candidates) {
    size_t bucket;
    auto it = std::find(labeled.begin(), labeled.end(), cand);
    if (it != labeled.end()) {
      bucket = clusters.assignment[static_cast<size_t>(it - labeled.begin())];
    } else if (have_embeddings && !pool.record(cand).z.empty()) {
      bucket = ml::KnnClassify(corpus, clusters.assignment,
                               pool.record(cand).z, config_.picker_knn);
    } else {
      bucket = static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(strata.size()) - 1));
    }
    strata[bucket].push_back(cand);
  }

  // 4. Sample across strata with replacement, dedupe.
  std::vector<size_t> non_empty;
  for (size_t b = 0; b < strata.size(); ++b) {
    if (!strata[b].empty()) non_empty.push_back(b);
  }
  WARPER_CHECK(!non_empty.empty());
  // Stratified sampling with replacement across the error buckets — a
  // multiset that spreads the update across the CE-error spectrum.
  std::vector<size_t> picked(n_p);
  for (size_t i = 0; i < n_p; ++i) {
    size_t b = non_empty[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(non_empty.size()) - 1))];
    const std::vector<size_t>& bucket = strata[b];
    picked[i] = bucket[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(bucket.size()) - 1))];
  }
  return picked;
}

}  // namespace warper::core
