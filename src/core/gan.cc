#include "core/gan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/losses.h"
#include "nn/trainer.h"
#include "util/status.h"

namespace warper::core {
namespace {

// Samples `k` indices (with replacement) from `candidates`.
std::vector<size_t> SampleIndices(const std::vector<size_t>& candidates,
                                  size_t k, util::Rng* rng) {
  WARPER_CHECK(!candidates.empty());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) {
    out[i] = candidates[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  }
  return out;
}

std::vector<size_t> AllIndices(const QueryPool& pool) {
  std::vector<size_t> all(pool.Size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// Tracks loss convergence for the early stop inside the n_i loop.
class ConvergenceTracker {
 public:
  ConvergenceTracker(double rel_tol, int patience)
      : rel_tol_(rel_tol), patience_(patience) {}

  // Returns true when training should stop.
  bool Update(double loss) {
    if (std::isfinite(prev_)) {
      double gain = (prev_ - loss) / std::max(std::abs(prev_), 1e-12);
      stagnant_ = gain < rel_tol_ ? stagnant_ + 1 : 0;
    }
    prev_ = loss;
    return stagnant_ >= patience_;
  }

 private:
  double rel_tol_;
  int patience_;
  double prev_ = std::numeric_limits<double>::infinity();
  int stagnant_ = 0;
};

}  // namespace

Result<std::unique_ptr<WarperModels>> WarperModels::Create(
    size_t feature_dim, const WarperConfig& config, double max_card,
    uint64_t seed) {
  if (feature_dim == 0) {
    return Status::InvalidArgument("WarperModels: feature_dim must be > 0");
  }
  if (!(max_card > 0.0)) {
    return Status::InvalidArgument(
        "WarperModels: max cardinality must be > 0");
  }
  Status config_status = config.Validate();
  if (!config_status.ok()) return config_status;
  return std::make_unique<WarperModels>(feature_dim, config, max_card, seed);
}

WarperModels::WarperModels(size_t feature_dim, const WarperConfig& config,
                           double max_card, uint64_t seed)
    : config_(config), rng_(seed) {
  encoder_ = std::make_unique<Encoder>(feature_dim, config, max_card, &rng_);
  generator_ = std::make_unique<Generator>(feature_dim, config, &rng_);
  discriminator_ = std::make_unique<Discriminator>(config, &rng_);
}

GanTrainStats WarperModels::UpdateAutoEncoder(const QueryPool& pool,
                                              int iterations) {
  WARPER_CHECK(pool.Size() > 0);
  std::vector<size_t> candidates = AllIndices(pool);
  nn::OptimizerConfig opt;
  opt.learning_rate = config_.learning_rate;

  GanTrainStats stats;
  ConvergenceTracker tracker(config_.loss_rel_tol, config_.loss_patience);
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<size_t> batch =
        SampleIndices(candidates, config_.batch_size, &rng_);
    nn::Matrix inputs = encoder_->BuildInputs(pool, batch);
    nn::Matrix targets(batch.size(), generator_->feature_dim());
    for (size_t i = 0; i < batch.size(); ++i) {
      targets.SetRow(i, pool.record(batch[i]).features);
    }

    encoder_->mlp().ZeroGrad();
    generator_->mlp().ZeroGrad();
    nn::Matrix z = encoder_->mlp().Forward(inputs);
    nn::Matrix recon = generator_->mlp().Forward(z);
    nn::Matrix grad;
    double loss = nn::L1Loss(recon, targets, &grad);  // Eq. 1
    nn::Matrix grad_z = generator_->mlp().Backward(grad);
    encoder_->mlp().Backward(grad_z);

    // "half-decay after every 10 epochs" (§3.5) — one pool pass ≈ one epoch.
    int epoch = iter / std::max<int>(
        1, static_cast<int>(candidates.size() / config_.batch_size) + 1);
    double lr = nn::ScheduledLearningRate(opt, epoch);
    generator_->mlp().Step(opt, lr);
    encoder_->mlp().Step(opt, lr);

    stats.iterations = iter + 1;
    stats.final_loss = loss;
    if (tracker.Update(loss)) break;
  }
  return stats;
}

nn::Matrix WarperModels::SeedEmbeddings(const QueryPool& pool) const {
  std::vector<size_t> seeds = pool.IndicesBySource(Source::kNew);
  if (seeds.empty()) seeds = AllIndices(pool);
  WARPER_CHECK(!seeds.empty());
  // Cap the seed set: embeddings are recomputed with the live encoder every
  // GAN round, so an uncapped pool would dominate the update cost.
  constexpr size_t kMaxSeeds = 128;
  if (seeds.size() > kMaxSeeds) {
    size_t step = seeds.size() / kMaxSeeds;
    std::vector<size_t> sampled;
    for (size_t i = 0; i < seeds.size() && sampled.size() < kMaxSeeds;
         i += step) {
      sampled.push_back(seeds[i]);
    }
    seeds = std::move(sampled);
  }
  nn::Matrix inputs = encoder_->BuildInputs(pool, seeds, /*use_label=*/false);
  return encoder_->mlp().Predict(inputs);
}

nn::Matrix WarperModels::GeneratedToEncoderInput(
    const nn::Matrix& features) const {
  nn::Matrix inputs(features.rows(), features.cols() + 2);
  for (size_t r = 0; r < features.rows(); ++r) {
    for (size_t c = 0; c < features.cols(); ++c) {
      inputs.At(r, c) = features.At(r, c);
    }
    // No ground truth for synthetic queries (gt = -1 until annotated).
    inputs.At(r, features.cols()) = 0.0;
    inputs.At(r, features.cols() + 1) = 0.0;
  }
  return inputs;
}

GanTrainStats WarperModels::UpdateMultiTask(const QueryPool& pool,
                                            int iterations) {
  WARPER_CHECK(pool.Size() > 0);
  std::vector<size_t> candidates = AllIndices(pool);
  nn::OptimizerConfig opt;
  opt.learning_rate = config_.learning_rate;

  GanTrainStats stats;
  ConvergenceTracker tracker(config_.loss_rel_tol, config_.loss_patience);
  size_t half_batch = std::max<size_t>(8, config_.batch_size / 2);

  for (int iter = 0; iter < iterations; ++iter) {
    int epoch = iter / 10;
    double lr = nn::ScheduledLearningRate(opt, epoch);

    // One seed-embedding computation per round, shared by the D and G steps.
    nn::Matrix seed_z = SeedEmbeddings(pool);

    // --- Discriminator (+ encoder) step: classify real records and fresh
    // synthetic queries by their true source. ---
    std::vector<size_t> real_batch =
        SampleIndices(candidates, half_batch, &rng_);
    // Label-free inputs: the discriminator must judge predicate content, not
    // label presence (generated queries are never labeled).
    nn::Matrix real_inputs =
        encoder_->BuildInputs(pool, real_batch, /*use_label=*/false);

    std::vector<size_t> seed_rows(half_batch);
    for (size_t i = 0; i < half_batch; ++i) {
      seed_rows[i] = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(seed_z.rows()) - 1));
    }
    nn::Matrix base(half_batch, seed_z.cols());
    for (size_t i = 0; i < half_batch; ++i) {
      base.CopyRowFrom(i, seed_z, seed_rows[i]);
    }
    nn::Matrix gen_features =
        generator_->Generate(Generator::PerturbEmbeddings(base, &rng_));
    nn::Matrix gen_inputs = GeneratedToEncoderInput(gen_features);

    // Stack real + generated encoder inputs.
    nn::Matrix d_inputs(real_inputs.rows() + gen_inputs.rows(),
                        real_inputs.cols());
    std::vector<size_t> d_labels(d_inputs.rows());
    for (size_t i = 0; i < real_inputs.rows(); ++i) {
      d_inputs.CopyRowFrom(i, real_inputs, i);
      d_labels[i] = static_cast<size_t>(pool.record(real_batch[i]).label);
    }
    for (size_t i = 0; i < gen_inputs.rows(); ++i) {
      d_inputs.CopyRowFrom(real_inputs.rows() + i, gen_inputs, i);
      d_labels[real_inputs.rows() + i] = static_cast<size_t>(Source::kGen);
    }

    encoder_->mlp().ZeroGrad();
    discriminator_->mlp().ZeroGrad();
    nn::Matrix z = encoder_->mlp().Forward(d_inputs);
    nn::Matrix logits = discriminator_->mlp().Forward(z);
    nn::Matrix d_grad;
    double discr_loss = nn::SoftmaxCrossEntropyLoss(logits, d_labels, &d_grad);
    nn::Matrix z_grad = discriminator_->mlp().Backward(d_grad);
    encoder_->mlp().Backward(z_grad);
    discriminator_->mlp().Step(opt, lr);
    encoder_->mlp().Step(opt, lr);

    // --- Generator step: make D classify generated queries as `new`. ---
    nn::Matrix base2(config_.batch_size, seed_z.cols());
    for (size_t i = 0; i < config_.batch_size; ++i) {
      base2.CopyRowFrom(i, seed_z,
                        static_cast<size_t>(rng_.UniformInt(
                            0, static_cast<int64_t>(seed_z.rows()) - 1)));
    }
    nn::Matrix g_input = Generator::PerturbEmbeddings(base2, &rng_);

    generator_->mlp().ZeroGrad();
    encoder_->mlp().ZeroGrad();
    discriminator_->mlp().ZeroGrad();
    nn::Matrix g_features = generator_->mlp().Forward(g_input);
    nn::Matrix e_inputs = GeneratedToEncoderInput(g_features);
    nn::Matrix z2 = encoder_->mlp().Forward(e_inputs);
    nn::Matrix logits2 = discriminator_->mlp().Forward(z2);
    std::vector<size_t> want_new(logits2.rows(),
                                 static_cast<size_t>(Source::kNew));
    nn::Matrix g_grad;
    double gen_loss = nn::SoftmaxCrossEntropyLoss(logits2, want_new, &g_grad);
    nn::Matrix z2_grad = discriminator_->mlp().Backward(g_grad);
    nn::Matrix e_in_grad = encoder_->mlp().Backward(z2_grad);
    // Only the feature slice of the encoder input flows back into G.
    nn::Matrix feat_grad(e_in_grad.rows(), g_features.cols());
    for (size_t r = 0; r < e_in_grad.rows(); ++r) {
      for (size_t c = 0; c < g_features.cols(); ++c) {
        feat_grad.At(r, c) = e_in_grad.At(r, c);
      }
    }
    generator_->mlp().Backward(feat_grad);
    generator_->mlp().Step(opt, lr);  // only G steps (Eq. 2's L_gen term)
    encoder_->mlp().ZeroGrad();
    discriminator_->mlp().ZeroGrad();

    stats.iterations = iter + 1;
    stats.final_loss = discr_loss + gen_loss;  // L_GAN (Eq. 2)
    if (tracker.Update(stats.final_loss)) break;
  }
  return stats;
}

std::vector<std::vector<double>> WarperModels::GenerateQueries(
    const QueryPool& pool, size_t n) {
  WARPER_CHECK(pool.Size() > 0);
  nn::Matrix seed_z = SeedEmbeddings(pool);
  nn::Matrix base(n, seed_z.cols());
  for (size_t i = 0; i < n; ++i) {
    base.CopyRowFrom(i, seed_z,
                     static_cast<size_t>(rng_.UniformInt(
                         0, static_cast<int64_t>(seed_z.rows()) - 1)));
  }
  nn::Matrix features =
      generator_->Generate(Generator::PerturbEmbeddings(base, &rng_));
  std::vector<std::vector<double>> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = features.Row(i);
  return out;
}

}  // namespace warper::core
