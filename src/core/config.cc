#include "core/config.h"

// Configuration is a plain aggregate; this TU anchors the target.
