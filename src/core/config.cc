#include "core/config.h"

#include <cmath>
#include <string>

#include "nn/matrix.h"
#include "storage/annotate_kernels.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace warper::core {
namespace {

Status BadKnob(const std::string& what) {
  return Status::InvalidArgument("WarperConfig: " + what);
}

}  // namespace

Status ServeConfig::Validate() const {
  if (batch_max == 0) return BadKnob("serve.batch_max must be > 0");
  if (batch_timeout_us < 0) {
    return BadKnob("serve.batch_timeout_us must be >= 0");
  }
  if (queue_capacity == 0) return BadKnob("serve.queue_capacity must be > 0");
  if (batch_max > queue_capacity) {
    return BadKnob("serve.batch_max must be <= serve.queue_capacity");
  }
  if (default_deadline_us < 0) {
    return BadKnob("serve.default_deadline_us must be >= 0");
  }
  if (!(regression_tolerance > 0.0) || !std::isfinite(regression_tolerance)) {
    return BadKnob("serve.regression_tolerance must be positive and finite");
  }
  if (adapt_threads == 0) return BadKnob("serve.adapt_threads must be > 0");
  if (tenant_queue_depth == 0) {
    return BadKnob("serve.tenant_queue_depth must be > 0");
  }
  if (tenant_shed_budget > tenant_queue_depth) {
    return BadKnob(
        "serve.tenant_shed_budget must be <= serve.tenant_queue_depth "
        "(0 disables it)");
  }
  if (adapt_priority_drift_weight < 0.0 ||
      !std::isfinite(adapt_priority_drift_weight)) {
    return BadKnob("serve.adapt_priority_drift_weight must be >= 0 and finite");
  }
  if (adapt_priority_traffic_weight < 0.0 ||
      !std::isfinite(adapt_priority_traffic_weight)) {
    return BadKnob(
        "serve.adapt_priority_traffic_weight must be >= 0 and finite");
  }
  if (!(adapt_priority_floor > 0.0) || !std::isfinite(adapt_priority_floor)) {
    return BadKnob("serve.adapt_priority_floor must be positive and finite");
  }
  if (adapt_aging_rate < 0.0 || !std::isfinite(adapt_aging_rate)) {
    return BadKnob("serve.adapt_aging_rate must be >= 0 and finite");
  }
  return Status::OK();
}

Status TrackerConfig::Validate() const {
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return BadKnob("tracker.ewma_alpha must be in (0, 1]");
  }
  if (!(unhealthy_threshold > 0.0) || !std::isfinite(unhealthy_threshold)) {
    return BadKnob("tracker.unhealthy_threshold must be positive and finite");
  }
  if (min_count == 0) return BadKnob("tracker.min_count must be > 0");
  if (hash_bits == 0 || hash_bits > 64) {
    return BadKnob("tracker.hash_bits must be in [1, 64]");
  }
  if (!(min_targeted_fraction > 0.0) || min_targeted_fraction > 1.0) {
    return BadKnob("tracker.min_targeted_fraction must be in (0, 1]");
  }
  if (targeted && !enabled) {
    return BadKnob("tracker.targeted requires tracker.enabled");
  }
  return Status::OK();
}

Status WarperConfig::Validate() const {
  if (hidden_units == 0) return BadKnob("hidden_units must be > 0");
  if (hidden_layers == 0) return BadKnob("hidden_layers must be > 0");
  if (embedding_dim == 0) return BadKnob("embedding_dim must be > 0");
  if (!(learning_rate > 0.0) || !std::isfinite(learning_rate)) {
    return BadKnob("learning_rate must be positive and finite");
  }
  if (batch_size == 0) return BadKnob("batch_size must be > 0");
  if (n_i <= 0) return BadKnob("n_i must be > 0");
  if (loss_rel_tol < 0.0) return BadKnob("loss_rel_tol must be >= 0");
  if (loss_patience <= 0) return BadKnob("loss_patience must be > 0");
  if (gen_fraction < 0.0 || !std::isfinite(gen_fraction)) {
    return BadKnob("gen_fraction must be >= 0 and finite");
  }
  if (n_p == 0) return BadKnob("n_p must be > 0");
  if (picker_strata == 0) return BadKnob("picker_strata must be > 0");
  if (picker_knn == 0) return BadKnob("picker_knn must be > 0");
  if (gamma == 0) return BadKnob("gamma must be > 0");
  if (!(pi_initial > 0.0)) return BadKnob("pi_initial must be > 0");
  if (early_stop_gain < 0.0) return BadKnob("early_stop_gain must be >= 0");
  if (pi_growth < 1.0) return BadKnob("pi_growth must be >= 1");
  if (pi_max < pi_initial) return BadKnob("pi_max must be >= pi_initial");
  if (gamma_growth < 1.0) return BadKnob("gamma_growth must be >= 1");
  if (data_changed_threshold < 0.0) {
    return BadKnob("data_changed_threshold must be >= 0");
  }
  if (canary_shift_threshold < 0.0) {
    return BadKnob("canary_shift_threshold must be >= 0");
  }
  if (js_pca_dims == 0) return BadKnob("js_pca_dims must be > 0");
  if (js_bins < 2) return BadKnob("js_bins must be >= 2");
  if (js_threshold < 0.0) return BadKnob("js_threshold must be >= 0");
  if (ablation_noise_stddev < 0.0) {
    return BadKnob("ablation_noise_stddev must be >= 0");
  }
  Status parallel_status = parallel.Validate();
  if (!parallel_status.ok()) {
    return Status::InvalidArgument("WarperConfig: " +
                                   parallel_status.message());
  }
  WARPER_RETURN_NOT_OK(serve.Validate());
  WARPER_RETURN_NOT_OK(tracker.Validate());
  return Status::OK();
}

void ApplyParallelConfig(const util::ParallelConfig& config) {
  util::ThreadPool::Configure(config);
  nn::SetMatrixParallelism(config);
  storage::internal::SetAnnotateKernels(config);
  WARPER_LOG(Info) << "parallel config applied: threads="
                   << config.ResolvedThreads() << " deterministic="
                   << (config.deterministic ? "true" : "false")
                   << " simd=" << util::SimdModeName(config.simd)
                   << " -> nn kernels: " << nn::ActiveKernelName()
                   << ", annotate kernels: "
                   << storage::internal::ActiveAnnotateKernelName();
}

}  // namespace warper::core
