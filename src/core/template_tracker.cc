#include "core/template_tracker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "ce/metrics.h"
#include "util/logging.h"

namespace warper::core {
namespace {

// Canonical featurizations emit exact 0.0 / 1.0 for unconstrained bounds
// (storage::Featurize divides by the column span); anything inside the unit
// interval by more than this is a real constraint.
constexpr double kBoundTol = 1e-9;

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFULL;
    h *= kFnvPrime;
  }
  return h;
}

// Operator kind of one column, from its normalized bounds.
enum class OpKind : uint64_t {
  kUnconstrained = 0,
  kEquality = 1,
  kLowerOnly = 2,
  kUpperOnly = 3,
  kRange = 4,
};

OpKind ClassifyBounds(double low, double high) {
  bool low_constrained = low > kBoundTol;
  bool high_constrained = high < 1.0 - kBoundTol;
  if (!low_constrained && !high_constrained) return OpKind::kUnconstrained;
  if (std::abs(high - low) <= kBoundTol) return OpKind::kEquality;
  if (low_constrained && high_constrained) return OpKind::kRange;
  return low_constrained ? OpKind::kLowerOnly : OpKind::kUpperOnly;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t TemplateFingerprint(const std::vector<double>& features,
                             size_t leading_bits, uint64_t salt,
                             size_t hash_bits) {
  uint64_t h = FnvMix(kFnvOffset, salt);
  h = FnvMix(h, static_cast<uint64_t>(features.size()));
  // Join bits are structure outright: which fact tables participate.
  for (size_t i = 0; i < leading_bits && i < features.size(); ++i) {
    if (features[i] > 0.5) h = FnvMix(h, static_cast<uint64_t>(i) + 1);
  }
  // Bound pairs: hash (column, op kind) for constrained columns only. The
  // bound VALUES — the constants — never enter the hash.
  size_t rest = features.size() - std::min(features.size(), leading_bits);
  size_t cols = rest / 2;
  for (size_t c = 0; c < cols; ++c) {
    double low = features[leading_bits + c];
    double high = features[leading_bits + cols + c];
    OpKind kind = ClassifyBounds(low, high);
    if (kind == OpKind::kUnconstrained) continue;
    h = FnvMix(h, (static_cast<uint64_t>(c) << 3) |
                      static_cast<uint64_t>(kind));
  }
  if (hash_bits >= 64) return h;
  // Fold the discarded high bits down so narrow widths still use the whole
  // hash, then mask.
  uint64_t mask = (1ULL << hash_bits) - 1;
  return ((h >> hash_bits) ^ h) & mask;
}

std::string TemplateMetricName(const char* family, uint64_t fingerprint) {
  static constexpr char kPrefix[] = "warper.template.";
  std::string name(family);
  WARPER_CHECK_MSG(name.rfind(kPrefix, 0) == 0,
                   "TemplateMetricName family must start with "
                   "'warper.template.'");
  char hex[19];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  size_t prefix_len = sizeof(kPrefix) - 1;
  return name.substr(0, prefix_len) + hex + "." + name.substr(prefix_len);
}

TemplateTracker::TemplateTracker(const ce::QueryDomain* domain,
                                 const TrackerConfig& config)
    : domain_(domain), config_(config) {
  WARPER_CHECK(domain != nullptr);
  salt_ = HashString(domain->Name()) ^
          (static_cast<uint64_t>(domain->FeatureDim()) << 17);
  util::ErrorLogOptions options;
  options.ewma_alpha = config_.ewma_alpha;
  log_ = util::NewRegisteredErrorLog(
      config_.enabled ? config_.export_name : std::string(), options);
}

uint64_t TemplateTracker::Fingerprint(
    const std::vector<double>& features) const {
  return TemplateFingerprint(features, domain_->LeadingCategoricalFeatures(),
                             salt_, config_.hash_bits);
}

void TemplateTracker::Observe(const std::vector<double>& features,
                              double estimated, double actual) {
  if (!config_.enabled) return;
  uint64_t fp = Fingerprint(features);
  double err = std::log(ce::QError(estimated, actual));
  double cost = std::max(1.0, actual);
  log_->Record(fp, err, cost, tick());
  if (config_.template_metrics) {
    util::RunningErrorStats stats;
    log_->Lookup(fp, &stats);
    TemplateMetrics& m = MetricsFor(fp);
    m.err_ewma->Set(stats.ewma_err);
    m.obs->Increment();
  }
}

TemplateTracker::TemplateMetrics& TemplateTracker::MetricsFor(
    uint64_t fingerprint) {
  util::MutexLock lock(&metrics_mu_);
  TemplateMetrics& m = metric_handles_[fingerprint];
  if (m.err_ewma == nullptr) {
    m.err_ewma = util::Metrics().GetGauge(
        TemplateMetricName("warper.template.err_ewma", fingerprint));
    m.obs = util::Metrics().GetCounter(
        TemplateMetricName("warper.template.obs", fingerprint));
  }
  return m;
}

void TemplateTracker::InvalidateHistory() { log_->Clear(); }

double TemplateTracker::DriftScore(
    const util::RunningErrorStats& stats) const {
  if (stats.count < config_.min_count) return 0.0;
  return stats.ewma_err / config_.unhealthy_threshold;
}

bool TemplateTracker::IsUnhealthy(uint64_t fingerprint) const {
  util::RunningErrorStats stats;
  if (!log_->Lookup(fingerprint, &stats)) return false;
  return DriftScore(stats) > 1.0;
}

bool TemplateTracker::HasVerdict() const {
  for (const util::ErrorLog::Entry& e : log_->Snapshot()) {
    if (e.stats.count >= config_.min_count) return true;
  }
  return false;
}

bool TemplateTracker::AllHealthy() const {
  bool judged = false;
  for (const util::ErrorLog::Entry& e : log_->Snapshot()) {
    if (e.stats.count < config_.min_count) continue;
    judged = true;
    if (DriftScore(e.stats) > 1.0) return false;
  }
  return judged;
}

double TemplateTracker::UnhealthyShare() const {
  uint64_t total = 0;
  uint64_t unhealthy = 0;
  for (const util::ErrorLog::Entry& e : log_->Snapshot()) {
    total += e.stats.count;
    if (DriftScore(e.stats) > 1.0) unhealthy += e.stats.count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(unhealthy) /
                          static_cast<double>(total);
}

size_t TemplateTracker::UnhealthyCount() const {
  size_t n = 0;
  for (const util::ErrorLog::Entry& e : log_->Snapshot()) {
    if (DriftScore(e.stats) > 1.0) ++n;
  }
  return n;
}

std::unordered_set<uint64_t> TemplateTracker::UnhealthySet() const {
  std::unordered_set<uint64_t> out;
  for (const util::ErrorLog::Entry& e : log_->Snapshot()) {
    if (DriftScore(e.stats) > 1.0) out.insert(e.key);
  }
  return out;
}

std::vector<TemplateTracker::Offender> TemplateTracker::TopOffenders(
    size_t k) const {
  std::vector<Offender> out;
  for (const util::ErrorLog::Entry& e : log_->TopOffenders(k)) {
    out.push_back({e.key, e.stats, DriftScore(e.stats)});
  }
  return out;
}

std::string TemplateTracker::OffendersTextDump(size_t k) const {
  std::ostringstream os;
  os << "top " << k << " offender template(s) of " << log_->NumKeys()
     << " tracked (" << log_->Observations() << " labeled estimates):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-18s %6s %7s %7s %7s %7s %6s\n",
                "template", "count", "mean", "ewma", "score", "cost-wt",
                "seen");
  os << line;
  for (const Offender& o : TopOffenders(k)) {
    std::snprintf(line, sizeof(line),
                  "  %016llx %6llu %7.3f %7.3f %7.2f %7.3f %6llu%s\n",
                  static_cast<unsigned long long>(o.fingerprint),
                  static_cast<unsigned long long>(o.stats.count),
                  o.stats.MeanErr(), o.stats.ewma_err, o.drift_score,
                  o.stats.CostWeightedErr(),
                  static_cast<unsigned long long>(o.stats.last_seen_tick),
                  o.drift_score > 1.0 ? "  UNHEALTHY" : "");
    os << line;
  }
  return os.str();
}

}  // namespace warper::core
