#include "core/warper.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>
#include <unordered_set>

#include "ce/metrics.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace warper::core {
namespace {

// Window sizes for the evaluation and δ_js computations; bounded so each
// invocation's detection cost stays constant.
constexpr size_t kEvalWindow = 200;
constexpr size_t kJsSample = 500;

// Counters/gauges the adaptation loop publishes each invocation.
struct WarperMetrics {
  util::Counter* invocations = util::Metrics().GetCounter("warper.invocations");
  util::Counter* mode_c1 = util::Metrics().GetCounter("warper.mode.c1");
  util::Counter* mode_c2 = util::Metrics().GetCounter("warper.mode.c2");
  util::Counter* mode_c3 = util::Metrics().GetCounter("warper.mode.c3");
  util::Counter* mode_c4 = util::Metrics().GetCounter("warper.mode.c4");
  util::Counter* mode_none = util::Metrics().GetCounter("warper.mode.none");
  util::Counter* generated = util::Metrics().GetCounter("warper.generated");
  util::Counter* picked = util::Metrics().GetCounter("warper.picked");
  util::Counter* annotated = util::Metrics().GetCounter("warper.annotated");
  util::Counter* model_updates =
      util::Metrics().GetCounter("warper.model_updates");
  util::Gauge* delta_m = util::Metrics().GetGauge("warper.delta_m");
  util::Gauge* delta_js = util::Metrics().GetGauge("warper.delta_js");
  util::Gauge* drift_severity =
      util::Metrics().GetGauge("warper.drift_severity");
  util::Gauge* pool_train = util::Metrics().GetGauge("warper.pool.train");
  util::Gauge* pool_new = util::Metrics().GetGauge("warper.pool.new");
  util::Gauge* pool_gen = util::Metrics().GetGauge("warper.pool.gen");
  // Fraction of the invocation's annotation budget spent; stays 0 when the
  // budget is unlimited.
  util::Gauge* budget_used = util::Metrics().GetGauge("warper.budget_used");
  // Per-template tracking & targeted adaptation (TrackerConfig).
  util::Gauge* template_count =
      util::Metrics().GetGauge("warper.template.count");
  util::Gauge* template_unhealthy =
      util::Metrics().GetGauge("warper.template.unhealthy");
  util::Counter* targeted_invocations =
      util::Metrics().GetCounter("warper.targeted.invocations");
  util::Counter* targeted_skips =
      util::Metrics().GetCounter("warper.targeted.skips");
};

WarperMetrics& GetWarperMetrics() {
  static WarperMetrics* metrics = new WarperMetrics();
  return *metrics;
}

// Times one phase of an invocation: opens a trace span, records wall +
// thread-CPU seconds into the result's breakdown and (when given) into the
// controller's accumulators. Annotation keeps its accumulators null — that
// cost is accounted by the domain's annotator, and charging it here too
// would double-count the paper's Table 6 split.
class PhaseScope {
 public:
  PhaseScope(const char* name, Warper::InvocationTiming* timing,
             util::CpuAccumulator* cpu = nullptr,
             util::CpuAccumulator* wall = nullptr)
      : span_(name), name_(name), timing_(timing), cpu_(cpu), wall_(wall) {}

  ~PhaseScope() {
    double cpu_seconds = cpu_timer_.Seconds();
    double wall_seconds = wall_timer_.Seconds();
    timing_->phases.push_back({name_, wall_seconds, cpu_seconds});
    if (cpu_ != nullptr) cpu_->Add(cpu_seconds);
    if (wall_ != nullptr) wall_->Add(wall_seconds);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  util::ScopedSpan span_;
  const char* name_;
  Warper::InvocationTiming* timing_;
  util::CpuAccumulator* cpu_;
  util::CpuAccumulator* wall_;
  util::ThreadCpuTimer cpu_timer_;
  util::WallTimer wall_timer_;
};

}  // namespace

const Warper::PhaseTiming* Warper::InvocationTiming::Find(
    const char* name) const {
  for (const PhaseTiming& p : phases) {
    if (std::string_view(p.name) == name) return &p;
  }
  return nullptr;
}

Warper::Warper(const ce::QueryDomain* domain, ce::CardinalityEstimator* model,
               const WarperConfig& config)
    : domain_(domain),
      model_(model),
      config_(config),
      picker_(config, config.seed ^ 0x9E37ULL),
      detector_(config),
      rng_(config.seed) {
  // Null wiring is a programmer error, not recoverable caller input.
  WARPER_CHECK(domain != nullptr && model != nullptr);
  tracker_ = std::make_unique<TemplateTracker>(domain, config.tracker);
  // Config problems are caller input: remembered here, returned from
  // Initialize(). Module construction also waits for Initialize so that a
  // bad config never aborts inside the constructor.
  config_status_ = config.Validate();
}

Status Warper::Initialize(const std::vector<ce::LabeledExample>& train_corpus) {
  WARPER_RETURN_NOT_OK(config_status_);
  if (!model_->trained()) {
    return Status::FailedPrecondition(
        "Warper adapts an existing model; train M first");
  }
  if (train_corpus.empty()) {
    return Status::InvalidArgument(
        "Warper::Initialize: empty training corpus");
  }
  size_t dim = domain_->FeatureDim();
  for (size_t i = 0; i < train_corpus.size(); ++i) {
    if (train_corpus[i].features.size() != dim) {
      return Status::InvalidArgument(
          "Warper::Initialize: corpus example " + std::to_string(i) + " has " +
          std::to_string(train_corpus[i].features.size()) +
          " features; domain expects " + std::to_string(dim));
    }
  }

  // Size the shared thread pool and the nn::Matrix kernel policy before any
  // training work runs.
  ApplyParallelConfig(config_.parallel);

  auto models = WarperModels::Create(
      dim, config_, static_cast<double>(domain_->MaxCardinality()),
      config_.seed ^ 0xC0FFEEULL);
  WARPER_RETURN_NOT_OK(models.status());
  models_ = models.MoveValueOrDie();

  util::ScopedSpan span("warper.initialize");
  span.Arg("corpus", static_cast<double>(train_corpus.size()));
  util::ScopedCpuTimer timer(&cpu_, &wall_);

  // Writer capability for seeding the pool (the single-writer contract).
  util::MutexLock pool_writer(&pool_.writer_mu());
  for (const auto& example : train_corpus) {
    pool_.AppendLabeled(example.features,
                        static_cast<double>(example.cardinality),
                        Source::kTrain);
  }
  // δ_m baseline: the error observed during training (§3.1).
  detector_.SetTrainingError(ce::ModelGmq(*model_, train_corpus));

  // Offline pre-training of E and G on I_train (§3.5) — "a one-time cost
  // similar to training the LM model offline".
  {
    WARPER_SPAN("warper.update_AutoEncoder");
    models_->UpdateAutoEncoder(pool_, config_.n_i * 3);
  }
  initialized_ = true;
  return Status::OK();
}

Result<Warper::ModuleState> Warper::CaptureModuleState() const {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "Warper::CaptureModuleState: call Initialize() first");
  }
  return ModuleState{ce::MlpSnapshot(models_->encoder().mlp()),
                     ce::MlpSnapshot(models_->generator().mlp()),
                     ce::MlpSnapshot(models_->discriminator().mlp())};
}

Status Warper::RestoreModuleState(const ModuleState& state) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "Warper::RestoreModuleState: call Initialize() first");
  }
  WARPER_RETURN_NOT_OK(state.encoder.RestoreTo(&models_->encoder().mlp()));
  WARPER_RETURN_NOT_OK(state.generator.RestoreTo(&models_->generator().mlp()));
  WARPER_RETURN_NOT_OK(
      state.discriminator.RestoreTo(&models_->discriminator().mlp()));
  return Status::OK();
}

bool Warper::RecentNewGmq(double* gmq) const {
  std::vector<size_t> window;
  for (size_t i = new_record_order_.size(); i-- > 0;) {
    const PoolRecord& r = pool_.record(new_record_order_[i]);
    if (r.HasFreshLabel()) window.push_back(new_record_order_[i]);
    if (window.size() >= kEvalWindow) break;
  }
  if (window.empty()) return false;
  *gmq = ce::ModelGmq(*model_, pool_.LabeledExamples(window));
  return true;
}

double Warper::ComputeDeltaJs() const {
  std::vector<std::vector<double>> new_features;
  for (size_t i = new_record_order_.size(); i-- > 0;) {
    new_features.push_back(pool_.record(new_record_order_[i]).features);
    if (new_features.size() >= kJsSample) break;
  }
  if (new_features.empty()) return 0.0;

  std::vector<size_t> train = pool_.IndicesBySource(Source::kTrain);
  if (train.empty()) return 0.0;
  std::vector<std::vector<double>> train_features;
  size_t step = std::max<size_t>(1, train.size() / kJsSample);
  for (size_t i = 0; i < train.size(); i += step) {
    train_features.push_back(pool_.record(train[i]).features);
  }
  return WorkloadJsDivergence(new_features, train_features, config_.js_pca_dims,
                              config_.js_bins);
}

size_t Warper::AnnotateRecords(const std::vector<size_t>& indices,
                               size_t budget) {
  size_t n = std::min(indices.size(), budget);
  if (n == 0) return 0;
  std::vector<std::vector<double>> features;
  features.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    features.push_back(pool_.record(indices[i]).features);
  }
  std::vector<int64_t> counts = domain_->AnnotateBatch(features);
  for (size_t i = 0; i < n; ++i) {
    Status st = pool_.SetLabel(indices[i], static_cast<double>(counts[i]));
    WARPER_CHECK_MSG(st.ok(), st.ToString());  // internal indices/counts
  }
  return n;
}

void Warper::UpdateModel(const ModeFlags& mode, double delta_m,
                         const std::vector<size_t>& picked_multiset) {
  // Fresh labels from the episode (new workload + annotated synthetics).
  std::vector<size_t> episode;
  for (size_t i = 0; i < pool_.Size(); ++i) {
    const PoolRecord& r = pool_.record(i);
    if (r.label != Source::kTrain && r.HasFreshLabel()) episode.push_back(i);
  }

  std::vector<size_t> fresh;
  if (model_->update_mode() == ce::UpdateMode::kFineTune) {
    if (mode.c2 && !mode.c1 && !episode.empty()) {
      // Pure workload drift: P(new)-weighted resampling (below). Under a
      // combined data+workload drift the stratified path is used instead —
      // re-annotated records carry the fresh data distribution and must not
      // be drowned out by resampling noise.
      // The update set is an n_p-sized sample with replacement over the
      // pool's fresh-labeled records — "update the CE model using predicates
      // and labels from the pool" (§3.1) — weighted by the discriminator's
      // confidence that each resembles the new workload (§4.1: n_p = 1K
      // picked queries feed the update). Training-workload records receive
      // naturally small P(new) weights, anchoring the fine-tune without
      // drowning out the drifted distribution.
      std::vector<size_t> candidates = pool_.FreshLabeledIndices();
      nn::Matrix z(candidates.size(), config_.embedding_dim);
      bool have_z = true;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (pool_.record(candidates[i]).z.size() != config_.embedding_dim) {
          have_z = false;
          break;
        }
        z.SetRow(i, pool_.record(candidates[i]).z);
      }
      std::vector<double> weights(candidates.size(), 1.0);
      if (have_z) {
        weights = models_->discriminator().ClassProbability(z, Source::kNew);
      }
      // Cap the training-workload anchor: I_train is much larger than the
      // episode, so even small per-record P(new) weights would let the old
      // distribution dominate the sample and slow adaptation. The cap decays
      // as episode evidence accumulates (a prior that matters while new data
      // is scarce) and with drift severity (under a severe drift the old
      // labels carry little signal about the new workload).
      double max_anchor_ratio =
          std::min(1.0 / 3.0, 24.0 / static_cast<double>(episode.size())) /
          (1.0 + std::max(0.0, delta_m));
      double w_train = 0.0, w_rest = 0.0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        (pool_.record(candidates[i]).label == Source::kTrain ? w_train
                                                             : w_rest) +=
            weights[i];
      }
      if (w_rest > 0.0 && w_train > max_anchor_ratio * w_rest) {
        double scale = max_anchor_ratio * w_rest / w_train;
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (pool_.record(candidates[i]).label == Source::kTrain) {
            weights[i] *= scale;
          }
        }
      }
      fresh.reserve(config_.n_p);
      for (size_t i = 0; i < config_.n_p; ++i) {
        fresh.push_back(candidates[rng_.Categorical(weights)]);
      }
    } else if (!mode.Any()) {
      // Passive per-period refresh (no drift detected): plain FT semantics —
      // fine-tune on the episode's new-workload labels only; pulling the
      // full training corpus back in would revert an adapted model.
      fresh = episode;
    } else {
      // c1/c3: every fresh label once — including train records whose
      // labels were just re-computed against the drifted data — plus the
      // picked stratified multiset with its multiplicities.
      fresh = pool_.FreshLabeledIndices();
      for (size_t i : picked_multiset) {
        if (pool_.record(i).HasFreshLabel()) fresh.push_back(i);
      }
    }
  } else {
    // Re-training models rebuild from every fresh label in the pool, with
    // the picked multiset contributing its multiplicities.
    fresh = pool_.FreshLabeledIndices();
    for (size_t i : picked_multiset) {
      if (pool_.record(i).HasFreshLabel()) fresh.push_back(i);
    }
  }
  // Nothing labeled to learn from — keep the model.
  if (fresh.empty()) return;
  std::vector<ce::LabeledExample> examples = pool_.LabeledExamples(fresh);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(examples, &x, &y);
  model_->Update(x, y);
}

Result<Warper::InvocationResult> Warper::Invoke(
    const Invocation& invocation) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "Warper::Invoke: call Initialize() before Invoke()");
  }
  size_t dim = domain_->FeatureDim();
  for (size_t i = 0; i < invocation.new_queries.size(); ++i) {
    if (invocation.new_queries[i].features.size() != dim) {
      return Status::InvalidArgument(
          "Warper::Invoke: new query " + std::to_string(i) + " has " +
          std::to_string(invocation.new_queries[i].features.size()) +
          " features; domain expects " + std::to_string(dim));
    }
  }
  // The pool's single-writer capability, held for the whole invocation —
  // the compile-time form of the QueryPool threading contract. Uncontended
  // in a correct deployment (EstimationServer funnels every Invoke through
  // its one adaptation thread); a second concurrent writer serializes here
  // instead of corrupting the pool.
  util::MutexLock pool_writer(&pool_.writer_mu());
  // Read-only alias for lambdas below: a lambda body is analyzed as its own
  // function, so it cannot see that Invoke holds the writer capability —
  // const access does not need it.
  const QueryPool& cpool = pool_;

  InvocationResult result;
  util::ScopedSpan invoke_span("warper.invoke");
  util::WallTimer invoke_wall;
  util::ThreadCpuTimer invoke_cpu;

  // Runs once on every successful exit path: closes the invocation totals
  // and publishes the loop's counters and gauges.
  auto finalize = [&] {
    result.timing.wall_seconds = invoke_wall.Seconds();
    result.timing.cpu_seconds = invoke_cpu.Seconds();
    WarperMetrics& m = GetWarperMetrics();
    m.invocations->Increment();
    if (result.mode.c1) m.mode_c1->Increment();
    if (result.mode.c2) m.mode_c2->Increment();
    if (result.mode.c3) m.mode_c3->Increment();
    if (result.mode.c4) m.mode_c4->Increment();
    if (!result.mode.Any()) m.mode_none->Increment();
    m.generated->Increment(result.generated);
    m.picked->Increment(result.picked);
    m.annotated->Increment(result.annotated);
    if (result.model_updated) m.model_updates->Increment();
    if (result.delta_m_valid) m.delta_m->Set(result.delta_m);
    m.delta_js->Set(result.delta_js);
    m.drift_severity->Set(result.drift_severity);
    m.pool_train->Set(
        static_cast<double>(pool_.IndicesBySource(Source::kTrain).size()));
    m.pool_new->Set(
        static_cast<double>(pool_.IndicesBySource(Source::kNew).size()));
    m.pool_gen->Set(
        static_cast<double>(pool_.IndicesBySource(Source::kGen).size()));
    if (invocation.annotation_budget != std::numeric_limits<size_t>::max() &&
        invocation.annotation_budget > 0) {
      m.budget_used->Set(static_cast<double>(result.annotated) /
                         static_cast<double>(invocation.annotation_budget));
    }
    if (tracker_->enabled()) {
      m.template_count->Set(static_cast<double>(tracker_->log().NumKeys()));
      m.template_unhealthy->Set(
          static_cast<double>(tracker_->UnhealthyCount()));
    }
    if (result.targeted) m.targeted_invocations->Increment();
    if (result.targeted_skip) m.targeted_skips->Increment();
    invoke_span.Arg("delta_m", result.delta_m_valid ? result.delta_m : -1.0);
    invoke_span.Arg("delta_js", result.delta_js);
    invoke_span.Arg("picked", static_cast<double>(result.picked));
    invoke_span.Arg("annotated", static_cast<double>(result.annotated));
  };

  // --- Alg. 1 line 1: inject new arrivals into the pool. ---
  tracker_->Tick();
  {
    PhaseScope phase("warper.ingest", &result.timing, &cpu_, &wall_);
    for (const auto& q : invocation.new_queries) {
      size_t idx =
          q.cardinality >= 0
              ? pool_.AppendLabeled(q.features,
                                    static_cast<double>(q.cardinality),
                                    Source::kNew)
              : pool_.AppendUnlabeled(q.features, Source::kNew);
      new_record_order_.push_back(idx);
    }
    // Every labeled arrival is a labeled estimate: record the pre-update
    // model's error per predicate template (one batched inference pass).
    if (tracker_->enabled()) {
      std::vector<const ce::LabeledExample*> labeled;
      for (const auto& q : invocation.new_queries) {
        if (q.cardinality >= 0) labeled.push_back(&q);
      }
      if (!labeled.empty()) {
        nn::Matrix x(labeled.size(), dim);
        for (size_t i = 0; i < labeled.size(); ++i) {
          x.SetRow(i, labeled[i]->features);
        }
        std::vector<double> targets = model_->EstimateTargets(x);
        for (size_t i = 0; i < labeled.size(); ++i) {
          tracker_->Observe(labeled[i]->features,
                            ce::TargetToCard(targets[i]),
                            static_cast<double>(labeled[i]->cardinality));
        }
      }
    }
  }

  // --- det_drft: gather signals and identify the drift mode. ---
  DriftSignals signals;
  {
    PhaseScope phase("warper.det_drft", &result.timing, &cpu_, &wall_);
    signals.gmq_new_valid = RecentNewGmq(&signals.gmq_new);
    signals.n_new = new_record_order_.size();
    size_t labeled = 0;
    for (size_t i : new_record_order_) {
      if (pool_.record(i).HasFreshLabel()) ++labeled;
    }
    signals.n_new_labeled = labeled;
    signals.delta_js = ComputeDeltaJs();
    signals.data_changed_fraction = invocation.data_changed_fraction;
    signals.canary_shift = invocation.canary_shift;
  }
  result.delta_js = signals.delta_js;
  result.drift_severity = detector_.Severity(signals);
  if (signals.gmq_new_valid) {
    result.delta_m = detector_.DeltaM(signals.gmq_new);
    result.delta_m_valid = true;
    result.gmq_before = signals.gmq_new;
  }

  {
    PhaseScope phase("warper.decide", &result.timing, &cpu_, &wall_);
    ModeFlags detected = detector_.Detect(signals);
    // Per-template health can veto the global trigger (TrackerConfig
    // .targeted): when every judged template is healthy, a δ_m gap on the
    // labeled window is noise, not drift, and the pass stays passive. Only
    // labeled-evidence triggers (c2/c4) are vetoable — c1 rests on data
    // telemetry and c3 on unlabeled arrivals the tracker has not seen, so
    // its evidence cannot contradict them.
    bool veto = config_.tracker.targeted && tracker_->enabled() &&
                (detected.c2 || detected.c4 || !detected.Any()) &&
                !detected.c1 && !detected.c3 && tracker_->HasVerdict() &&
                tracker_->AllHealthy();
    if (veto && (detected.Any() || episode_active_)) {
      result.targeted_skip = true;
      episode_active_ = false;
      small_gain_streak_ = 0;
    } else if (detected.Any()) {
      // A (possibly new) drift: start / refresh the adaptation episode.
      episode_active_ = true;
      active_mode_ = detected;
      result.mode = detected;
    } else if (episode_active_) {
      // δ_m fell back under π but the last step still gained accuracy: keep
      // refining with the episode's mode until the early stop fires (§3.4).
      result.mode = active_mode_;
    }
  }
  if (!result.mode.Any()) {
    // mode = ∅: no Warper machinery runs, but the CE model still receives
    // its periodic refresh from the arrived labeled queries — c_Model is "a
    // constant overhead no matter if Warper kicks in" (§4.3), and it keeps
    // Warper no worse than plain fine-tuning when detection stays quiet.
    bool have_fresh_arrivals = false;
    for (const auto& q : invocation.new_queries) {
      if (q.cardinality >= 0) {
        have_fresh_arrivals = true;
        break;
      }
    }
    if (have_fresh_arrivals) {
      PhaseScope phase("warper.update_model", &result.timing, &cpu_, &wall_);
      ModeFlags passive;  // no c-flags: plain refresh path
      UpdateModel(passive, 0.0, {});
      result.model_updated = true;
      RecentNewGmq(&result.gmq_after);
    }
    finalize();
    return result;
  }

  size_t budget = invocation.annotation_budget;

  // --- c1: data drift invalidates every stored label. ---
  if (result.mode.c1) {
    PhaseScope phase("warper.mark_stale", &result.timing, &cpu_, &wall_);
    pool_.MarkSourceStale(Source::kTrain);
    pool_.MarkSourceStale(Source::kNew);
    pool_.MarkSourceStale(Source::kGen);
    // The error history describes the pre-drift data; start over.
    tracker_->InvalidateHistory();
  }

  // --- Alg. 1 lines 3–8: update the learned modules; generate if c2. ---
  {
    PhaseScope phase("warper.update_modules", &result.timing, &cpu_, &wall_);
    if (result.mode.c2) {
      {
        WARPER_SPAN("warper.update_MultiTask");
        result.gan_stats = models_->UpdateMultiTask(pool_, config_.n_i);
      }

      // n_g = gen_fraction · n_t; the generator is disabled when n_g < 1.
      size_t n_t = invocation.new_queries.size();
      size_t n_g = static_cast<size_t>(config_.gen_fraction *
                                       static_cast<double>(n_t));
      if (n_g >= 1) {
        WARPER_SPAN("warper.generate");
        std::vector<std::vector<double>> generated;
        if (config_.generator_variant == GeneratorVariant::kGan) {
          generated = models_->GenerateQueries(pool_, n_g);
        } else {
          // Ablation G→AUG: Gaussian-noise copies of arrived queries.
          for (size_t i = 0; i < n_g; ++i) {
            const auto& seed = invocation.new_queries[static_cast<size_t>(
                rng_.UniformInt(0,
                                static_cast<int64_t>(
                                    invocation.new_queries.size()) -
                                    1))];
            std::vector<double> features = seed.features;
            for (double& f : features) {
              f += rng_.Normal(0.0, config_.ablation_noise_stddev);
            }
            generated.push_back(std::move(features));
          }
        }
        for (auto& features : generated) {
          pool_.AppendUnlabeled(domain_->CanonicalizeFeatures(features),
                                Source::kGen);
        }
        result.generated = generated.size();
      }
    } else {
      WARPER_SPAN("warper.update_AutoEncoder");
      result.gan_stats = models_->UpdateAutoEncoder(pool_, config_.n_i);
    }

    // Refresh embeddings and discriminator outputs for the records the
    // picker will look at.
    WARPER_SPAN("warper.embed");
    std::vector<size_t> to_embed;
    for (size_t i = 0; i < pool_.Size(); ++i) to_embed.push_back(i);
    models_->encoder().EmbedRecords(&pool_, to_embed);
    models_->discriminator().ClassifyRecords(&pool_, to_embed);
  }

  // --- Targeted adaptation (TrackerConfig.targeted): concentrate the pick
  // budget n_p on the unhealthy templates. The effective budget scales with
  // the unhealthy traffic share (floored by min_targeted_fraction), and
  // candidates whose fingerprint is healthy are dropped before picking.
  // When nothing matches (e.g. the generator produced only novel shapes)
  // the pass falls back to global behavior — targeting must never make an
  // invocation blind, only cheaper.
  bool targeting = config_.tracker.targeted && tracker_->enabled() &&
                   tracker_->HasVerdict();
  std::unordered_set<uint64_t> unhealthy;
  size_t targeted_np = config_.n_p;
  if (targeting) {
    unhealthy = tracker_->UnhealthySet();
    if (unhealthy.empty()) {
      targeting = false;
    } else {
      double share = std::min(1.0, std::max(config_.tracker.min_targeted_fraction,
                                            tracker_->UnhealthyShare()));
      targeted_np = std::max<size_t>(
          1, static_cast<size_t>(
                 std::ceil(static_cast<double>(config_.n_p) * share)));
      result.unhealthy_templates = unhealthy.size();
    }
  }
  auto is_unhealthy = [&](size_t i) {
    return unhealthy.count(tracker_->Fingerprint(cpool.record(i).features)) >
           0;
  };

  // --- Alg. 1 line 9: pick and annotate. ---
  std::vector<size_t> picked;
  {
    PhaseScope phase("warper.pick", &result.timing, &cpu_, &wall_);
    if (result.mode.c2) {
      std::vector<size_t> gen_candidates;
      for (size_t i : pool_.IndicesBySource(Source::kGen)) {
        if (!pool_.record(i).HasLabel()) gen_candidates.push_back(i);
      }
      std::vector<size_t> gen_picked;
      switch (config_.picker_variant) {
        case PickerVariant::kWarper:
          gen_picked = picker_.PickGenerated(pool_, models_->discriminator(),
                                             config_.n_p);
          break;
        case PickerVariant::kRandom:
          gen_picked = picker_.PickRandom(gen_candidates, config_.n_p);
          break;
        case PickerVariant::kEntropy:
          gen_picked = picker_.PickEntropy(pool_, gen_candidates,
                                           models_->discriminator(),
                                           config_.n_p);
          break;
      }
      if (targeting) {
        // The picker ranked by discriminator confidence / entropy; keep
        // that order, drop healthy-template picks, cap at the scaled n_p.
        std::vector<size_t> focused;
        for (size_t i : gen_picked) {
          if (is_unhealthy(i)) focused.push_back(i);
        }
        if (!focused.empty()) {
          if (focused.size() > targeted_np) focused.resize(targeted_np);
          gen_picked = std::move(focused);
          result.targeted = true;
        }
      }
      picked.insert(picked.end(), gen_picked.begin(), gen_picked.end());
    }
    if (result.mode.c1 || result.mode.c3) {
      std::vector<size_t> candidates = pool_.StaleOrUnlabeledIndices();
      // Generated-but-unlabeled records are handled by the c2 path only.
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](size_t i) {
                           return cpool.record(i).label == Source::kGen &&
                                  !cpool.record(i).HasLabel();
                         }),
          candidates.end());
      size_t np_for_pick = config_.n_p;
      if (targeting) {
        std::vector<size_t> focused;
        for (size_t i : candidates) {
          if (is_unhealthy(i)) focused.push_back(i);
        }
        if (!focused.empty()) {
          candidates = std::move(focused);
          np_for_pick = targeted_np;
          result.targeted = true;
        }
      }
      std::vector<size_t> stratified;
      switch (config_.picker_variant) {
        case PickerVariant::kWarper:
          stratified =
              picker_.PickStratified(pool_, candidates, *model_, np_for_pick);
          break;
        case PickerVariant::kRandom:
          stratified = picker_.PickRandom(candidates, np_for_pick);
          break;
        case PickerVariant::kEntropy:
          stratified = picker_.PickEntropy(pool_, candidates,
                                           models_->discriminator(),
                                           np_for_pick);
          break;
      }
      picked.insert(picked.end(), stratified.begin(), stratified.end());
    }
  }
  result.picked = picked.size();

  // Annotation pays only for the *unique* picked records that lack a fresh
  // label; the multiset (duplicates included) weights the model update.
  // No cpu/wall accumulators here: annotation cost belongs to the domain's
  // annotator (the Table 6 c_A column), not to the controller.
  std::vector<size_t> annotated_indices;
  {
    PhaseScope phase("warper.annotate", &result.timing);
    std::vector<size_t> unique = picked;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    unique.erase(std::remove_if(unique.begin(), unique.end(),
                                [&](size_t i) {
                                  return cpool.record(i).HasFreshLabel();
                                }),
                 unique.end());
    result.annotated = AnnotateRecords(unique, budget);
    annotated_indices.assign(unique.begin(),
                             unique.begin() + result.annotated);
  }

  // Feed the freshly annotated labels to the template tracker against the
  // *pre-update* model: that is the estimate serving traffic would have
  // seen, so the per-template error history stays honest about what the
  // adaptation is correcting.
  if (tracker_->enabled() && !annotated_indices.empty()) {
    nn::Matrix x(annotated_indices.size(),
                 static_cast<size_t>(domain_->FeatureDim()));
    for (size_t i = 0; i < annotated_indices.size(); ++i) {
      x.SetRow(i, cpool.record(annotated_indices[i]).features);
    }
    std::vector<double> targets = model_->EstimateTargets(x);
    for (size_t i = 0; i < annotated_indices.size(); ++i) {
      const PoolRecord& record = cpool.record(annotated_indices[i]);
      tracker_->Observe(record.features, ce::TargetToCard(targets[i]),
                        record.gt);
    }
  }

  // --- Alg. 1 line 10: update M. ---
  {
    PhaseScope phase("warper.update_model", &result.timing, &cpu_, &wall_);
    UpdateModel(result.mode, result.delta_m_valid ? result.delta_m : 0.0,
                picked);
    result.model_updated = true;
  }

  // Drop synthetic queries that were generated but never annotated.
  pool_.PruneUnlabeledGenerated();
  // Pool indices may have shifted after pruning; rebuild the episode order.
  new_record_order_.clear();
  for (size_t i = 0; i < pool_.Size(); ++i) {
    if (pool_.record(i).label == Source::kNew) new_record_order_.push_back(i);
  }

  // --- Early-stop feedback (§3.4). ---
  {
    PhaseScope phase("warper.eval", &result.timing);
    double gmq_after = 0.0;
    if (RecentNewGmq(&gmq_after)) {
      result.gmq_after = gmq_after;
      if (result.delta_m_valid) {
        // Early stop with patience: a single flat step can be noise from the
        // small arrived-query window, so the episode only ends (and π only
        // grows) after two consecutive small gains.
        double gain = result.gmq_before - gmq_after;
        if (gain < config_.early_stop_gain) {
          if (++small_gain_streak_ >= 2) {
            detector_.ReportAdaptationGain(gain, result.mode);
            episode_active_ = false;
            small_gain_streak_ = 0;
          }
        } else {
          small_gain_streak_ = 0;
        }
      }
    }
  }
  finalize();
  return result;
}

}  // namespace warper::core
