// The picker P (§3.2): sub-selects queries from the pool to annotate so the
// CE model updates well at a bounded annotation cost.
//
//   c2  — weighted sampling (with replacement) over generated queries by the
//         discriminator's confidence that they resemble the new workload.
//   c1/c3 — sampling stratified by CE error: labeled records are k-means
//         clustered by their q-error under M; unlabeled candidates are
//         assigned to strata by kNN over embeddings; picks spread across
//         strata.
#ifndef WARPER_CORE_PICKER_H_
#define WARPER_CORE_PICKER_H_

#include <vector>

#include "ce/estimator.h"
#include "core/config.h"
#include "core/modules.h"
#include "core/query_pool.h"
#include "util/rng.h"

namespace warper::core {

class Picker {
 public:
  Picker(const WarperConfig& config, uint64_t seed);

  // c2 mode: picks up to `n_p` distinct unlabeled generated records, sampled
  // with replacement proportionally to P(l' = new | z). Records must have
  // embeddings.
  std::vector<size_t> PickGenerated(const QueryPool& pool,
                                    const Discriminator& discriminator,
                                    size_t n_p);

  // c1/c3 mode: picks up to `n_p` distinct records out of `candidates`
  // (records whose labels are missing or stale), stratified by the CE error
  // of the labeled pool records under `model`.
  std::vector<size_t> PickStratified(const QueryPool& pool,
                                     const std::vector<size_t>& candidates,
                                     const ce::CardinalityEstimator& model,
                                     size_t n_p);

  // Ablation (Table 10): uniform-random picking.
  std::vector<size_t> PickRandom(const std::vector<size_t>& candidates,
                                 size_t n_p);

  // Ablation (Table 10): entropy-based uncertainty sampling — candidates are
  // weighted by the entropy of the discriminator's class distribution.
  std::vector<size_t> PickEntropy(const QueryPool& pool,
                                  const std::vector<size_t>& candidates,
                                  const Discriminator& discriminator,
                                  size_t n_p);

 private:
  WarperConfig config_;
  util::Rng rng_;
};

}  // namespace warper::core

#endif  // WARPER_CORE_PICKER_H_
