#include "core/modules.h"

#include <cmath>

#include "ce/estimator.h"
#include "nn/losses.h"
#include "util/stats.h"
#include "util/status.h"

namespace warper::core {
namespace {

// Trunk per Table 3: `layers` FC-`width` + LeakyReLU, then a linear head.
nn::MlpConfig TrunkConfig(size_t input, size_t output, const WarperConfig& c,
                          nn::Activation output_activation) {
  nn::MlpConfig config;
  config.layer_sizes.push_back(input);
  for (size_t i = 0; i < c.hidden_layers; ++i) {
    config.layer_sizes.push_back(c.hidden_units);
  }
  config.layer_sizes.push_back(output);
  config.hidden_activation = nn::Activation::kLeakyRelu;
  config.output_activation = output_activation;
  return config;
}

}  // namespace

// --- Encoder ---

Encoder::Encoder(size_t feature_dim, const WarperConfig& config,
                 double max_card, util::Rng* rng)
    : feature_dim_(feature_dim),
      log_card_scale_(std::max(1.0, std::log1p(max_card))),
      mlp_(TrunkConfig(feature_dim + 2, config.embedding_dim, config,
                       nn::Activation::kIdentity),
           rng) {}

std::vector<double> Encoder::BuildInput(const PoolRecord& record,
                                        bool use_label) const {
  WARPER_CHECK(record.features.size() == feature_dim_);
  std::vector<double> input = record.features;
  if (use_label && record.HasLabel()) {
    input.push_back(std::log1p(record.gt) / log_card_scale_);
    input.push_back(1.0);
  } else {
    input.push_back(0.0);
    input.push_back(0.0);
  }
  return input;
}

nn::Matrix Encoder::BuildInputs(const QueryPool& pool,
                                const std::vector<size_t>& indices,
                                bool use_label) const {
  WARPER_CHECK(!indices.empty());
  nn::Matrix inputs(indices.size(), input_dim());
  for (size_t i = 0; i < indices.size(); ++i) {
    inputs.SetRow(i, BuildInput(pool.record(indices[i]), use_label));
  }
  return inputs;
}

void Encoder::EmbedRecords(QueryPool* pool,
                           const std::vector<size_t>& indices) const {
  if (indices.empty()) return;
  nn::Matrix inputs = BuildInputs(*pool, indices, /*use_label=*/false);
  nn::Matrix z = mlp_.Predict(inputs);
  for (size_t i = 0; i < indices.size(); ++i) {
    pool->record(indices[i]).z = z.Row(i);
  }
}

// --- Generator ---

Generator::Generator(size_t feature_dim, const WarperConfig& config,
                     util::Rng* rng)
    : mlp_(TrunkConfig(config.embedding_dim, feature_dim, config,
                       nn::Activation::kSigmoid),
           rng) {}

nn::Matrix Generator::PerturbEmbeddings(const nn::Matrix& base,
                                        util::Rng* rng) {
  WARPER_CHECK(base.rows() > 0);
  // σ per dimension from the base embeddings.
  std::vector<double> sigma(base.cols(), 0.0);
  for (size_t c = 0; c < base.cols(); ++c) {
    std::vector<double> col(base.rows());
    for (size_t r = 0; r < base.rows(); ++r) col[r] = base.At(r, c);
    sigma[c] = util::StdDev(col);
  }
  nn::Matrix out = base;
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      out.At(r, c) += rng->Normal(0.0, sigma[c]);
    }
  }
  return out;
}

nn::Matrix Generator::Generate(const nn::Matrix& z) const {
  return mlp_.Predict(z);
}

// --- Discriminator ---

Discriminator::Discriminator(const WarperConfig& config, util::Rng* rng)
    : mlp_(nn::MlpConfig{{config.embedding_dim, kNumSources},
                         nn::Activation::kLeakyRelu,
                         nn::Activation::kIdentity},
           rng) {}

void Discriminator::ClassifyRecords(QueryPool* pool,
                                    const std::vector<size_t>& indices) const {
  if (indices.empty()) return;
  nn::Matrix z(indices.size(), mlp_.input_size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const PoolRecord& r = pool->record(indices[i]);
    WARPER_CHECK_MSG(!r.z.empty(), "record has no embedding; run E first");
    z.SetRow(i, r.z);
  }
  nn::Matrix probs = nn::Softmax(mlp_.Predict(z));
  for (size_t i = 0; i < indices.size(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < probs.cols(); ++c) {
      if (probs.At(i, c) > probs.At(i, best)) best = c;
    }
    PoolRecord& r = pool->record(indices[i]);
    r.predicted_label = static_cast<int>(best);
    r.confidence = probs.At(i, best);
  }
}

std::vector<double> Discriminator::ClassProbability(const nn::Matrix& z,
                                                    Source source) const {
  nn::Matrix probs = nn::Softmax(mlp_.Predict(z));
  std::vector<double> out(z.rows());
  for (size_t i = 0; i < z.rows(); ++i) {
    out[i] = probs.At(i, static_cast<size_t>(source));
  }
  return out;
}

}  // namespace warper::core
