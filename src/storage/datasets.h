// Synthetic dataset generators.
//
// Substitution note (DESIGN.md §3): the paper evaluates on UCI Higgs, PRSA
// and Poker, TPC-H SF-10, and IMDB. Those inputs are not available here, so
// each generator reproduces the schema shape of Table 4 (column counts and
// types, distinct-count spread, correlation structure and heavy tails) at a
// configurable row count. CE accuracy and drift behaviour depend on the
// value distributions and selectivity spread, which these preserve; absolute
// row count only scales annotation cost.
#ifndef WARPER_STORAGE_DATASETS_H_
#define WARPER_STORAGE_DATASETS_H_

#include <cstdint>

#include "storage/join_annotator.h"
#include "storage/table.h"

namespace warper::storage {

// HIGGS-like: 8 numeric physics features driven by a latent signal /
// background class; heavy-tailed momenta, a 3-valued b-tag column, and
// correlated invariant masses (distinct counts from 3 to ~100K).
Table MakeHiggs(size_t rows, uint64_t seed);

// PRSA-like (Beijing air quality): 6 numeric columns (year, month, hour,
// pm2.5, temperature, pressure) with seasonal structure and a heavy-tailed
// pollution column, plus 2 categorical columns (wind direction, station).
Table MakePrsa(size_t rows, uint64_t seed);

// Poker-hand-like: 11 categorical columns — 5 suits (4 values), 5 ranks
// (13 values), and a derived hand-class column (10 values).
Table MakePoker(size_t rows, uint64_t seed);

// TPC-H-shaped Lineitem and Orders, joined on orderkey with 1–7 lineitems
// per order. `num_orders` controls scale (SF-10 ≈ 15M orders in the paper;
// the default benches use a few tens of thousands).
struct TpchTables {
  Table orders;
  Table lineitem;
  size_t orders_pk_col = 0;    // o_orderkey
  size_t lineitem_fk_col = 0;  // l_orderkey
};
TpchTables MakeTpch(size_t num_orders, uint64_t seed);

// IMDB-like star schema: title (dimension) joined by cast_info and
// movie_companies fact tables with zipfian movie popularity.
struct ImdbTables {
  Table title;
  Table cast_info;
  Table movie_companies;

  // Builds a StarSchema view over the member tables. The returned schema
  // holds pointers into this struct; keep it alive.
  StarSchema Schema() const;
};
ImdbTables MakeImdb(size_t num_titles, uint64_t seed);

}  // namespace warper::storage

#endif  // WARPER_STORAGE_DATASETS_H_
