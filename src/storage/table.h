// An in-memory columnar table with mutation telemetry.
//
// The telemetry (a monotonic count of changed rows) backs Warper's data-drift
// detection: "counting the fraction of rows that are new or have changed
// since the model was last trained" (§3.1).
#ifndef WARPER_STORAGE_TABLE_H_
#define WARPER_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace warper::storage {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumColumns() const { return columns_.size(); }

  // Adds an empty column; all columns must stay row-aligned.
  Column* AddColumn(std::string column_name, ColumnType type);

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  // Index of a column by name, or an error.
  Result<size_t> ColumnIndex(const std::string& column_name) const;

  // Appends one row (values aligned with columns). Counts as `1` changed row.
  void AppendRow(const std::vector<double>& values);
  // Overwrites one cell; counts as a changed row.
  void UpdateCell(size_t row, size_t col, double value);
  // Keeps only the first `new_size` rows; removed rows count as changed.
  void Truncate(size_t new_size);
  // Reorders rows so that column `col` is ascending. Does NOT count as a
  // change by itself (used to set up the paper's sort+truncate data drift).
  void SortByColumn(size_t col);

  // Verifies all columns have equal length; dies otherwise.
  void CheckRowAlignment() const;

  // Monotonic count of row-change events since construction. Drift
  // telemetry compares two snapshots of this counter.
  uint64_t ChangeCounter() const { return change_counter_; }
  // Fraction of the current table changed since `snapshot` (clamped to 1).
  double ChangedFractionSince(uint64_t snapshot) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  uint64_t change_counter_ = 0;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_TABLE_H_
