// Conjunctive range predicates — the predicate class supported by the CE
// models in the paper (§2):
//   SELECT count(*) FROM T WHERE ⋀_i  l_i <= Col_i <= u_i
// Equality predicates set l_i = u_i; one-sided ranges pin one end to the
// column domain; unconstrained columns span the full domain.
#ifndef WARPER_STORAGE_PREDICATE_H_
#define WARPER_STORAGE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace warper::storage {

struct RangePredicate {
  // Per-column bounds, aligned with the table's columns.
  std::vector<double> low;
  std::vector<double> high;

  size_t NumColumns() const { return low.size(); }

  // A predicate that spans the full domain of every column of `table`.
  static RangePredicate FullRange(const Table& table);

  // True iff row `row` of `table` satisfies every bound.
  bool Matches(const Table& table, size_t row) const;

  // True iff the bound on column `col` is tighter than the full column
  // domain (i.e. the column actually participates in the predicate).
  bool Constrains(const Table& table, size_t col) const;

  // Swaps any inverted bounds (low > high) and clamps to the column domain;
  // used to repair GAN-generated predicates before annotation.
  void Canonicalize(const Table& table);

  // Canonical featurization {low_1..low_d, high_1..high_d}, each normalized
  // to [0, 1] by the column domain (the LM featurization of §3.2).
  std::vector<double> Featurize(const Table& table) const;

  // Inverse of Featurize: rebuilds a predicate from a (possibly noisy)
  // normalized feature vector, clamping into the domain and fixing inverted
  // bounds. Used to decode generator outputs.
  static RangePredicate FromFeatures(const Table& table,
                                     const std::vector<double>& features);

  bool operator==(const RangePredicate& other) const = default;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_PREDICATE_H_
