// Scalar reference kernels + the dispatch half of the annotate-kernel layer.
// The AVX2 twins live in annotate_kernels_avx2.cc (the only storage TU built
// with -mavx2).
#include "storage/annotate_kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/annotations.h"
#include "util/cpu_features.h"
#include "util/logging.h"

namespace warper::storage::internal {
namespace {

// The scan predicate, spelled so NaN matches — the exact semantics of
// RangePredicate::Matches and of the seed row-at-a-time scan.
inline bool MatchScalar(double v, double lo, double hi) {
  return !(v < lo) && !(v > hi);
}

WARPER_DETERMINISTIC int64_t ScalarCountRange(const double* v, size_t n, double lo, double hi) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += MatchScalar(v[i], lo, hi) ? 1 : 0;
  return count;
}

WARPER_DETERMINISTIC void ScalarMaskRange(const double* v, size_t n, double lo, double hi,
                     uint64_t* mask) {
  size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = 0;
    size_t begin = w * 64;
    size_t end = begin + 64 < n ? begin + 64 : n;
    for (size_t r = begin; r < end; ++r) {
      bits |= static_cast<uint64_t>(MatchScalar(v[r], lo, hi)) << (r - begin);
    }
    mask[w] = bits;
  }
}

WARPER_DETERMINISTIC void ScalarMaskRangeAnd(const double* v, size_t n, double lo, double hi,
                        uint64_t* mask) {
  size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = 0;
    size_t begin = w * 64;
    size_t end = begin + 64 < n ? begin + 64 : n;
    for (size_t r = begin; r < end; ++r) {
      bits |= static_cast<uint64_t>(MatchScalar(v[r], lo, hi)) << (r - begin);
    }
    mask[w] &= bits;
  }
}

const AnnotateKernelTable kScalarTable = {
    "scalar",
    &ScalarCountRange,
    &ScalarMaskRange,
    &ScalarMaskRangeAnd,
};

// The installed table, read on every annotation pass (possibly from pool
// workers while a config change lands elsewhere) — hence atomic. nullptr
// means "not yet resolved": first use resolves the default config.
std::atomic<const AnnotateKernelTable*> g_kernels{nullptr};

}  // namespace

const AnnotateKernelTable& ScalarAnnotateKernels() { return kScalarTable; }

const AnnotateKernelTable& ResolveAnnotateKernels(
    const util::ParallelConfig& config) {
  util::SimdMode mode = config.simd;
  if (mode == util::SimdMode::kAuto) {
    if (const char* env = std::getenv("WARPER_SIMD")) {
      std::string value(env);
      if (value == "scalar") {
        mode = util::SimdMode::kScalar;
      } else if (value == "avx2") {
        mode = util::SimdMode::kAvx2;
      }
      // Unknown values are warned about by the nn dispatcher; stay quiet
      // here to avoid double logging.
    }
  }
  switch (mode) {
    case util::SimdMode::kScalar:
      return ScalarAnnotateKernels();
    case util::SimdMode::kAvx2:
      if (util::BestSupportedSimdLevel() != util::SimdLevel::kAvx2 ||
          !Avx2AnnotateKernelsCompiled()) {
        WARPER_LOG(Warn) << "simd=avx2 requested but unavailable ("
                         << (Avx2AnnotateKernelsCompiled()
                                 ? "CPU lacks AVX2+FMA"
                                 : "binary built without AVX2 kernels")
                         << "); using scalar annotate kernels";
        return ScalarAnnotateKernels();
      }
      return Avx2AnnotateKernels();
    case util::SimdMode::kAuto:
      break;
  }
  // kAuto: counts are integer-exact on every path, so — unlike the nn GEMM
  // dispatcher — deterministic configs still take the best supported level.
  if (util::BestSupportedSimdLevel() == util::SimdLevel::kAvx2 &&
      Avx2AnnotateKernelsCompiled()) {
    return Avx2AnnotateKernels();
  }
  return ScalarAnnotateKernels();
}

void SetAnnotateKernels(const util::ParallelConfig& config) {
  g_kernels.store(&ResolveAnnotateKernels(config), std::memory_order_release);
}

const AnnotateKernelTable& ActiveAnnotateKernels() {
  const AnnotateKernelTable* table = g_kernels.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = &ResolveAnnotateKernels(util::ParallelConfig{});
    g_kernels.store(table, std::memory_order_release);
  }
  return *table;
}

const char* ActiveAnnotateKernelName() { return ActiveAnnotateKernels().name; }

}  // namespace warper::storage::internal
