// Internal range-scan kernel table for the annotation engine.
//
// Every inner loop of ground-truth annotation — "does row r satisfy
// low <= v <= high" over a contiguous slice of Column::values() — lives in
// one of these tables. Two implementations ship in the binary, mirroring
// the nn kernel layer (src/nn/kernels.h):
//
//   ScalarAnnotateKernels() — portable reference loops.
//   Avx2AnnotateKernels()   — AVX2 compare+mask kernels: 4 doubles per
//     vector, matches accumulated by subtracting all-ones compare lanes
//     (count) or assembled into 64-row bitset words via movemask (mask).
//
// Unlike the floating-point GEMM kernels, annotation kernels count integers:
// SIMD and scalar agree EXACTLY, bit for bit, on every input — including
// NaN, which matches every range under the scan's !(v < lo) && !(v > hi)
// semantics (the unordered-compare predicates NLT/NGT reproduce this in
// AVX2). Because equality is exact, SimdMode::kAuto resolves to the best
// CPU-supported level even when ParallelConfig::deterministic is true; the
// deterministic contract (bit-identical results) is preserved on every
// path. WARPER_SIMD=scalar|avx2|auto refines kAuto, and kScalar/kAvx2 pin a
// path, exactly as in the nn dispatcher.
//
// Callers outside src/storage should use Annotator / ParallelAnnotator, not
// this header.
#ifndef WARPER_STORAGE_ANNOTATE_KERNELS_H_
#define WARPER_STORAGE_ANNOTATE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/thread_pool.h"

namespace warper::storage::internal {

// All kernels define "match" as !(v < low) && !(v > high) — identical to
// RangePredicate::Matches, NaN included.
struct AnnotateKernelTable {
  // Dispatch-table name as reported by ActiveAnnotateKernelName().
  const char* name;

  // Number of rows r in [0, n) matching [low, high].
  int64_t (*count_range)(const double* v, size_t n, double low, double high);

  // mask[w] bit b ← match(v[64·w + b]) for 64·w + b < n; the trailing bits
  // of the last word are zeroed. mask holds (n + 63) / 64 words.
  void (*mask_range)(const double* v, size_t n, double low, double high,
                     uint64_t* mask);

  // mask[w] &= match bits, same layout. Trailing bits stay zero because the
  // computed tail bits are themselves zero past n.
  void (*mask_range_and)(const double* v, size_t n, double low, double high,
                         uint64_t* mask);
};

const AnnotateKernelTable& ScalarAnnotateKernels();

// The AVX2 table; aliases the scalar table when the binary was built without
// AVX2 codegen (non-x86 target or compiler lacking -mavx2).
const AnnotateKernelTable& Avx2AnnotateKernels();
bool Avx2AnnotateKernelsCompiled();

// Resolves `config.simd` (plus the WARPER_SIMD env refinement of kAuto) to a
// table. Counts are integer-exact on both paths, so kAuto ignores
// `deterministic` and takes the best supported level; kAvx2 on hardware
// without AVX2 falls back to scalar with a warning.
const AnnotateKernelTable& ResolveAnnotateKernels(
    const util::ParallelConfig& config);

// Installs the process-wide table used by annotators constructed without an
// explicit ParallelConfig (mirrors nn::SetMatrixParallelism; called from
// core::ApplyParallelConfig).
void SetAnnotateKernels(const util::ParallelConfig& config);

// The installed table. Before any SetAnnotateKernels call this lazily
// resolves a default config (kAuto → best supported level).
const AnnotateKernelTable& ActiveAnnotateKernels();
const char* ActiveAnnotateKernelName();

}  // namespace warper::storage::internal

#endif  // WARPER_STORAGE_ANNOTATE_KERNELS_H_
