#include "storage/annotate_engine.h"

#include <algorithm>
#include <bit>

#include "util/status.h"

namespace warper::storage::internal {
namespace {

constexpr size_t kZ = Column::kZoneBlockRows;
constexpr size_t kMaskWords = kZ / 64;

// Zone-map verdict for one (predicate, block) pair. `active` (capacity
// kMaxConstrainedCols, on the caller's stack — the evaluation loops are
// WARPER_HOT_PATH and must not touch the heap) receives the indices (into
// pred.cols) of the columns that still need row evaluation; columns whose
// zone range lies fully inside the bounds are redundant on this block and
// are skipped. `*num_active` is the count written.
enum class BlockVerdict { kReject, kAllMatch, kPartial };

BlockVerdict JudgeBlock(const CompiledBatch& batch,
                        const CompiledBatch::Pred& pred, size_t block,
                        uint32_t* active, size_t* num_active) {
  *num_active = 0;
  for (uint32_t i = 0; i < pred.cols.size(); ++i) {
    const Column::ZoneEntry& zone = batch.col(pred.cols[i]).zones[block];
    if (zone.max < pred.low[i] || zone.min > pred.high[i]) {
      return BlockVerdict::kReject;
    }
    if (!(pred.low[i] <= zone.min && zone.max <= pred.high[i])) {
      active[(*num_active)++] = i;
    }
  }
  return *num_active == 0 ? BlockVerdict::kAllMatch : BlockVerdict::kPartial;
}

int64_t PopcountWords(const uint64_t* mask, size_t words) {
  int64_t total = 0;
  for (size_t w = 0; w < words; ++w) total += std::popcount(mask[w]);
  return total;
}

}  // namespace

CompiledBatch::CompiledBatch(const Table& table,
                             const std::vector<RangePredicate>& preds) {
  rows_ = table.NumRows();
  cols_.resize(table.NumColumns());
  preds_.reserve(preds.size());
  for (const RangePredicate& pred : preds) {
    WARPER_CHECK(pred.NumColumns() == table.NumColumns());
    // The evaluation loops carry the per-block active set in a fixed stack
    // array (no heap on the hot path); cap the width here, on the cold
    // compile path, where violating inputs can still be rejected loudly.
    WARPER_CHECK_MSG(pred.NumColumns() <= kMaxConstrainedCols,
                     "CompiledBatch: predicate constrains more columns than "
                     "kMaxConstrainedCols");
    Pred compiled;
    for (size_t c = 0; c < pred.NumColumns(); ++c) {
      if (!pred.Constrains(table, c)) continue;
      compiled.cols.push_back(static_cast<uint32_t>(c));
      compiled.low.push_back(pred.low[c]);
      compiled.high.push_back(pred.high[c]);
      Col& col = cols_[c];
      if (col.values == nullptr) {
        // Freshen once, on this (single) thread, so pool workers only read.
        table.column(c).EnsureZoneMapFresh();
        col.values = table.column(c).values().data();
        col.zones = table.column(c).zone_entries();
      }
    }
    preds_.push_back(std::move(compiled));
  }
}

void FusedCount(const CompiledBatch& batch, const AnnotateKernelTable& kernels,
                size_t row_begin, size_t row_end, int64_t* counts,
                AnnotateStats* stats) {
  uint64_t mask[kMaskWords];
  uint32_t active[kMaxConstrainedCols];
  size_t num_active = 0;
  for (size_t b0 = row_begin; b0 < row_end;) {
    size_t block = b0 / kZ;
    size_t b1 = std::min(row_end, (block + 1) * kZ);
    size_t span = b1 - b0;
    for (size_t p = 0; p < batch.num_preds(); ++p) {
      const CompiledBatch::Pred& pred = batch.preds()[p];
      if (pred.cols.empty()) {
        counts[p] += static_cast<int64_t>(span);
        continue;
      }
      switch (JudgeBlock(batch, pred, block, active, &num_active)) {
        case BlockVerdict::kReject:
          if (stats != nullptr) ++stats->blocks_pruned;
          continue;
        case BlockVerdict::kAllMatch:
          counts[p] += static_cast<int64_t>(span);
          if (stats != nullptr) ++stats->blocks_shortcircuited;
          continue;
        case BlockVerdict::kPartial:
          break;
      }
      if (stats != nullptr) stats->rows_scanned += static_cast<int64_t>(span);
      if (num_active == 1) {
        uint32_t i = active[0];
        counts[p] += kernels.count_range(batch.col(pred.cols[i]).values + b0,
                                         span, pred.low[i], pred.high[i]);
        continue;
      }
      // Fused multi-column evaluation: the first active column seeds the
      // block's match bitset, the rest AND into it.
      uint32_t first = active[0];
      kernels.mask_range(batch.col(pred.cols[first]).values + b0, span,
                         pred.low[first], pred.high[first], mask);
      for (size_t a = 1; a < num_active; ++a) {
        uint32_t i = active[a];
        kernels.mask_range_and(batch.col(pred.cols[i]).values + b0, span,
                               pred.low[i], pred.high[i], mask);
      }
      counts[p] += PopcountWords(mask, (span + 63) / 64);
    }
    b0 = b1;
  }
}

void PredicateMask(const CompiledBatch& batch, size_t pred_idx,
                   const AnnotateKernelTable& kernels, uint64_t* mask,
                   AnnotateStats* stats) {
  WARPER_CHECK(pred_idx < batch.num_preds());
  const CompiledBatch::Pred& pred = batch.preds()[pred_idx];
  size_t rows = batch.num_rows();
  uint32_t active[kMaxConstrainedCols];
  size_t num_active = 0;

  auto fill_span = [&](uint64_t* words, size_t span, uint64_t value) {
    size_t full = span / 64;
    for (size_t w = 0; w < full; ++w) words[w] = value;
    if (span % 64 != 0) {
      words[full] = value & ((uint64_t{1} << (span % 64)) - 1);
    }
  };

  for (size_t b0 = 0; b0 < rows; b0 += kZ) {
    size_t block = b0 / kZ;
    size_t span = std::min(rows - b0, kZ);
    // kZ is a multiple of 64, so every block starts on a word boundary.
    uint64_t* words = mask + block * kMaskWords;
    if (pred.cols.empty()) {
      fill_span(words, span, ~uint64_t{0});
      continue;
    }
    switch (JudgeBlock(batch, pred, block, active, &num_active)) {
      case BlockVerdict::kReject:
        fill_span(words, span, 0);
        if (stats != nullptr) ++stats->blocks_pruned;
        continue;
      case BlockVerdict::kAllMatch:
        fill_span(words, span, ~uint64_t{0});
        if (stats != nullptr) ++stats->blocks_shortcircuited;
        continue;
      case BlockVerdict::kPartial:
        break;
    }
    if (stats != nullptr) stats->rows_scanned += static_cast<int64_t>(span);
    uint32_t first = active[0];
    kernels.mask_range(batch.col(pred.cols[first]).values + b0, span,
                       pred.low[first], pred.high[first], words);
    for (size_t a = 1; a < num_active; ++a) {
      uint32_t i = active[a];
      kernels.mask_range_and(batch.col(pred.cols[i]).values + b0, span,
                             pred.low[i], pred.high[i], words);
    }
  }
}

}  // namespace warper::storage::internal
