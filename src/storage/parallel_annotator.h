// A multi-threaded batch annotator.
//
// The paper notes that "many calls [of Alg. 1] can be parallelized" and its
// tech report sketches a multi-threaded variant; ground-truth annotation is
// the dominant cost (Table 6), and it parallelizes trivially by row range:
// each worker scans a horizontal slice of the table against every predicate
// and the per-predicate counts are summed. Results are bit-identical to
// Annotator::BatchCount.
#ifndef WARPER_STORAGE_PARALLEL_ANNOTATOR_H_
#define WARPER_STORAGE_PARALLEL_ANNOTATOR_H_

#include <cstdint>
#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"

namespace warper::storage {

class ParallelAnnotator {
 public:
  // `table` must outlive the annotator. `num_threads` ≤ 0 uses the hardware
  // concurrency.
  explicit ParallelAnnotator(const Table* table, int num_threads = 0);

  // Ground-truth cardinalities for a batch; one parallel pass over the rows.
  std::vector<int64_t> BatchCount(const std::vector<RangePredicate>& preds) const;

  int num_threads() const { return num_threads_; }

 private:
  const Table* table_;
  int num_threads_;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_PARALLEL_ANNOTATOR_H_
