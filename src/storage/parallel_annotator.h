// A multi-threaded batch annotator.
//
// The paper notes that "many calls [of Alg. 1] can be parallelized" and its
// tech report sketches a multi-threaded variant; ground-truth annotation is
// the dominant cost (Table 6), and it parallelizes trivially by row range:
// each chunk runs the fused per-block engine (storage/annotate_engine.h —
// SIMD kernels + zone-map pruning, every predicate per cache-resident
// block) over a horizontal slice of the table and the per-predicate counts
// are summed. Counts are integers, so the sum is exact in any order and
// results are bit-identical to Annotator::BatchCount on every kernel path.
// Work is dispatched onto the shared util::ThreadPool rather than ad-hoc
// threads; ParallelConfig::simd picks the kernel set for this annotator.
#ifndef WARPER_STORAGE_PARALLEL_ANNOTATOR_H_
#define WARPER_STORAGE_PARALLEL_ANNOTATOR_H_

#include <cstdint>
#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"
#include "util/thread_pool.h"

namespace warper::storage {

class ParallelAnnotator {
 public:
  // `table` must outlive the annotator. `config.threads` ≤ 0 uses the full
  // shared pool; the row grain keeps tiny tables on one thread.
  explicit ParallelAnnotator(const Table* table,
                             util::ParallelConfig config = {});
  // Back-compat shorthand: cap at `num_threads` (≤ 0 = hardware).
  ParallelAnnotator(const Table* table, int num_threads);

  // Ground-truth cardinalities for a batch; one parallel pass over the rows.
  std::vector<int64_t> BatchCount(const std::vector<RangePredicate>& preds) const;

  int num_threads() const { return config_.ResolvedThreads(); }

 private:
  const Table* table_;
  util::ParallelConfig config_;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_PARALLEL_ANNOTATOR_H_
