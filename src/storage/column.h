// A typed in-memory column. Values are stored as doubles; categorical
// columns hold dictionary codes (0..distinct-1), matching the paper's LM
// setup where "for columns with categorical values, predicates are integer
// dictionary identities" (§4.1).
#ifndef WARPER_STORAGE_COLUMN_H_
#define WARPER_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warper::storage {

enum class ColumnType { kNumeric, kCategorical };

class Column {
 public:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }

  size_t size() const { return values_.size(); }
  double Value(size_t row) const { return values_[row]; }
  void SetValue(size_t row, double v);
  void Append(double v);
  void Truncate(size_t new_size);

  const std::vector<double>& values() const { return values_; }

  // Domain statistics, recomputed lazily after mutations.
  double Min() const;
  double Max() const;
  size_t DistinctCount() const;

 private:
  void RefreshStats() const;

  std::string name_;
  ColumnType type_;
  std::vector<double> values_;

  mutable bool stats_valid_ = false;
  mutable double min_ = 0.0;
  mutable double max_ = 0.0;
  mutable size_t distinct_ = 0;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_COLUMN_H_
