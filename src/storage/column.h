// A typed in-memory column. Values are stored as doubles; categorical
// columns hold dictionary codes (0..distinct-1), matching the paper's LM
// setup where "for columns with categorical values, predicates are integer
// dictionary identities" (§4.1).
//
// Besides the values the column maintains two derived structures:
//   - Domain stats (Min/Max/DistinctCount). Min/max update incrementally on
//     Append — a drifted append burst never forces a rescan — and fall back
//     to a lazy rescan only after SetValue/Truncate. The distinct count is
//     always lazy (it needs a full hash pass) and is tracked by its own
//     dirty flag so Min()/Max() never pay for it.
//   - A zone map: per-block min/max over fixed kZoneBlockRows-row blocks,
//     used by the annotation engine to skip blocks a range predicate
//     provably rejects (or fully matches). Entries are maintained
//     incrementally: Append extends the tail block exactly; SetValue widens
//     the touched block's bounds (a safe superset) and marks it stale;
//     EnsureZoneMapFresh() re-tightens stale blocks lazily.
//
// Thread-safety follows the tree's lazy-cache convention: concurrent reads
// are safe only after the caches are materialized (EnsureZoneMapFresh /
// Min()/Max() called once from a single thread); mutations require exclusive
// access.
#ifndef WARPER_STORAGE_COLUMN_H_
#define WARPER_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warper::storage {

enum class ColumnType { kNumeric, kCategorical };

class Column {
 public:
  // Zone-map block size, in rows. 4096 doubles = 32 KiB per column block —
  // one L1-sized unit of scan work, and 4096/64 = 64 whole mask words for
  // the annotation engine's bitset kernels.
  static constexpr size_t kZoneBlockRows = 4096;

  // Per-block bounds. When `stale` is set the bounds are a superset of the
  // block's actual value range (still safe for pruning decisions, just less
  // selective); EnsureZoneMapFresh() tightens them. Blocks containing NaN
  // carry [-inf, +inf] so they are never pruned or short-circuited — NaN
  // matches every range predicate under the scan's !(v < lo) && !(v > hi)
  // semantics.
  struct ZoneEntry {
    double min;
    double max;
    bool stale;
  };

  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }

  size_t size() const { return values_.size(); }
  double Value(size_t row) const { return values_[row]; }
  void SetValue(size_t row, double v);
  void Append(double v);
  void Truncate(size_t new_size);

  const std::vector<double>& values() const { return values_; }

  // Domain statistics. Min/Max are O(1) after any Append-only mutation
  // burst; DistinctCount recomputes lazily after any mutation.
  double Min() const;
  double Max() const;
  size_t DistinctCount() const;

  // --- Zone map ---
  size_t NumZoneBlocks() const { return zones_.size(); }
  // Re-tightens stale entries. Must be called (from one thread) before
  // zone entries are read concurrently, e.g. by pool workers.
  void EnsureZoneMapFresh() const;
  // Raw entries, indexed by block = row / kZoneBlockRows. Only meaningful
  // after EnsureZoneMapFresh() unless conservative bounds are acceptable.
  const ZoneEntry* zone_entries() const { return zones_.data(); }

 private:
  void RefreshMinMax() const;
  void RefreshDistinct() const;

  std::string name_;
  ColumnType type_;
  std::vector<double> values_;

  // min_/max_ stay valid across Appends (running update); distinct_ has its
  // own flag so Min()/Max() never pay the hash-set pass.
  mutable bool minmax_valid_ = false;
  mutable bool distinct_valid_ = false;
  mutable double min_ = 0.0;
  mutable double max_ = 0.0;
  mutable size_t distinct_ = 0;

  mutable std::vector<ZoneEntry> zones_;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_COLUMN_H_
