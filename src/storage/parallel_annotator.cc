#include "storage/parallel_annotator.h"

#include <algorithm>
#include <thread>

#include "util/status.h"

namespace warper::storage {
namespace {

struct CompiledPredicate {
  std::vector<size_t> cols;
  std::vector<double> low;
  std::vector<double> high;
};

CompiledPredicate Compile(const Table& table, const RangePredicate& pred) {
  WARPER_CHECK(pred.NumColumns() == table.NumColumns());
  CompiledPredicate cp;
  for (size_t c = 0; c < pred.NumColumns(); ++c) {
    if (pred.Constrains(table, c)) {
      cp.cols.push_back(c);
      cp.low.push_back(pred.low[c]);
      cp.high.push_back(pred.high[c]);
    }
  }
  return cp;
}

void CountRange(const Table& table,
                const std::vector<CompiledPredicate>& compiled,
                size_t row_begin, size_t row_end,
                std::vector<int64_t>* counts) {
  for (size_t r = row_begin; r < row_end; ++r) {
    for (size_t p = 0; p < compiled.size(); ++p) {
      const CompiledPredicate& cp = compiled[p];
      bool match = true;
      for (size_t i = 0; i < cp.cols.size(); ++i) {
        double v = table.column(cp.cols[i]).Value(r);
        if (v < cp.low[i] || v > cp.high[i]) {
          match = false;
          break;
        }
      }
      (*counts)[p] += match ? 1 : 0;
    }
  }
}

}  // namespace

ParallelAnnotator::ParallelAnnotator(const Table* table, int num_threads)
    : table_(table), num_threads_(num_threads) {
  WARPER_CHECK(table != nullptr);
  if (num_threads_ <= 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<int64_t> ParallelAnnotator::BatchCount(
    const std::vector<RangePredicate>& preds) const {
  std::vector<CompiledPredicate> compiled;
  compiled.reserve(preds.size());
  for (const auto& p : preds) compiled.push_back(Compile(*table_, p));

  size_t n = table_->NumRows();
  size_t workers = std::min<size_t>(static_cast<size_t>(num_threads_),
                                    std::max<size_t>(1, n / 1024));
  if (workers <= 1 || n == 0) {
    std::vector<int64_t> counts(preds.size(), 0);
    CountRange(*table_, compiled, 0, n, &counts);
    return counts;
  }

  std::vector<std::vector<int64_t>> partials(
      workers, std::vector<int64_t>(preds.size(), 0));
  std::vector<std::thread> threads;
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    threads.emplace_back([&, w, begin, end] {
      CountRange(*table_, compiled, begin, end, &partials[w]);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<int64_t> counts(preds.size(), 0);
  for (const auto& partial : partials) {
    for (size_t p = 0; p < counts.size(); ++p) counts[p] += partial[p];
  }
  return counts;
}

}  // namespace warper::storage
