#include "storage/parallel_annotator.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace warper::storage {
namespace {

struct CompiledPredicate {
  std::vector<size_t> cols;
  std::vector<double> low;
  std::vector<double> high;
};

CompiledPredicate Compile(const Table& table, const RangePredicate& pred) {
  WARPER_CHECK(pred.NumColumns() == table.NumColumns());
  CompiledPredicate cp;
  for (size_t c = 0; c < pred.NumColumns(); ++c) {
    if (pred.Constrains(table, c)) {
      cp.cols.push_back(c);
      cp.low.push_back(pred.low[c]);
      cp.high.push_back(pred.high[c]);
    }
  }
  return cp;
}

void CountRange(const Table& table,
                const std::vector<CompiledPredicate>& compiled,
                size_t row_begin, size_t row_end,
                std::vector<int64_t>* counts) {
  for (size_t r = row_begin; r < row_end; ++r) {
    for (size_t p = 0; p < compiled.size(); ++p) {
      const CompiledPredicate& cp = compiled[p];
      bool match = true;
      for (size_t i = 0; i < cp.cols.size(); ++i) {
        double v = table.column(cp.cols[i]).Value(r);
        if (v < cp.low[i] || v > cp.high[i]) {
          match = false;
          break;
        }
      }
      (*counts)[p] += match ? 1 : 0;
    }
  }
}

}  // namespace

ParallelAnnotator::ParallelAnnotator(const Table* table,
                                     util::ParallelConfig config)
    : table_(table), config_(config) {
  WARPER_CHECK(table != nullptr);
}

ParallelAnnotator::ParallelAnnotator(const Table* table, int num_threads)
    : ParallelAnnotator(table, util::ParallelConfig{
                                   num_threads <= 0 ? 0 : num_threads,
                                   /*grain=*/256, /*deterministic=*/true}) {}

std::vector<int64_t> ParallelAnnotator::BatchCount(
    const std::vector<RangePredicate>& preds) const {
  util::ScopedSpan span("annotator.batch_count_parallel");
  span.Arg("predicates", static_cast<double>(preds.size()));
  span.Arg("rows", static_cast<double>(table_->NumRows()));
  // Shares the serial annotator's cost counters: the execution strategy
  // changes, the work accounted does not.
  static util::Counter* calls = util::Metrics().GetCounter("annotator.calls");
  static util::Counter* predicates =
      util::Metrics().GetCounter("annotator.predicates");
  static util::Counter* rows_scanned =
      util::Metrics().GetCounter("annotator.rows_scanned");
  calls->Increment();
  predicates->Increment(preds.size());
  rows_scanned->Increment(table_->NumRows());

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(preds.size());
  for (const auto& p : preds) compiled.push_back(Compile(*table_, p));

  size_t n = table_->NumRows();
  std::vector<int64_t> counts(preds.size(), 0);
  if (n == 0 || preds.empty()) return counts;

  // The row grain keeps each chunk worth the dispatch and bounds the chunk
  // count at the configured thread cap.
  size_t min_rows = std::max<size_t>(config_.grain, 1024 / std::max<size_t>(
                                                        1, preds.size()));
  size_t grain = std::max(min_rows,
                          (n + static_cast<size_t>(config_.ResolvedThreads()) -
                           1) /
                              static_cast<size_t>(config_.ResolvedThreads()));

  // Chunk-local tallies merged under a lock: integer sums are exact in any
  // order, so the result is bit-identical to the serial scan.
  util::Mutex merge_mutex;
  util::ThreadPool::Global().ParallelFor(
      0, n, grain, [&](size_t begin, size_t end) {
        std::vector<int64_t> local(compiled.size(), 0);
        CountRange(*table_, compiled, begin, end, &local);
        util::MutexLock lock(&merge_mutex);
        for (size_t p = 0; p < counts.size(); ++p) counts[p] += local[p];
      });
  return counts;
}

}  // namespace warper::storage
