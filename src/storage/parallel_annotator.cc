#include "storage/parallel_annotator.h"

#include <algorithm>

#include "storage/annotate_engine.h"
#include "storage/annotate_kernels.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace warper::storage {

ParallelAnnotator::ParallelAnnotator(const Table* table,
                                     util::ParallelConfig config)
    : table_(table), config_(config) {
  WARPER_CHECK(table != nullptr);
}

ParallelAnnotator::ParallelAnnotator(const Table* table, int num_threads)
    : ParallelAnnotator(table, util::ParallelConfig{
                                   num_threads <= 0 ? 0 : num_threads,
                                   /*grain=*/256, /*deterministic=*/true}) {}

std::vector<int64_t> ParallelAnnotator::BatchCount(
    const std::vector<RangePredicate>& preds) const {
  util::ScopedSpan span("annotator.batch_count_parallel");
  span.Arg("predicates", static_cast<double>(preds.size()));
  span.Arg("rows", static_cast<double>(table_->NumRows()));
  // Shares the serial annotator's cost counters: the execution strategy
  // changes, the work accounted does not. rows_scanned counts rows actually
  // evaluated under pruning, exactly as in the serial path.
  static util::Counter* calls = util::Metrics().GetCounter("annotator.calls");
  static util::Counter* predicates =
      util::Metrics().GetCounter("annotator.predicates");
  static util::Counter* rows_scanned =
      util::Metrics().GetCounter("annotator.rows_scanned");
  static util::Counter* blocks_pruned =
      util::Metrics().GetCounter("annotator.blocks_pruned");
  static util::Counter* blocks_shortcircuited =
      util::Metrics().GetCounter("annotator.blocks_shortcircuited");
  calls->Increment();
  predicates->Increment(preds.size());

  size_t n = table_->NumRows();
  std::vector<int64_t> counts(preds.size(), 0);
  if (n == 0 || preds.empty()) return counts;

  // Compiling freshens the referenced zone maps on this thread, so the
  // fan-out below only reads the table.
  internal::CompiledBatch batch(*table_, preds);
  const internal::AnnotateKernelTable& kernels =
      internal::ResolveAnnotateKernels(config_);

  // The row grain keeps each chunk worth the dispatch and bounds the chunk
  // count at the configured thread cap; rounding it to whole zone blocks
  // keeps the fused per-block pass from splitting a block across workers.
  size_t min_rows = std::max<size_t>(config_.grain, 1024 / std::max<size_t>(
                                                        1, preds.size()));
  size_t grain = std::max(min_rows,
                          (n + static_cast<size_t>(config_.ResolvedThreads()) -
                           1) /
                              static_cast<size_t>(config_.ResolvedThreads()));
  if (grain > Column::kZoneBlockRows) {
    grain = (grain + Column::kZoneBlockRows - 1) / Column::kZoneBlockRows *
            Column::kZoneBlockRows;
  }

  // Chunk-local tallies merged under a lock: integer sums are exact in any
  // order, so the result is bit-identical to the serial scan.
  internal::AnnotateStats stats;
  util::Mutex merge_mutex;
  util::ThreadPool::Global().ParallelFor(
      0, n, grain, [&](size_t begin, size_t end) {
        std::vector<int64_t> local(batch.num_preds(), 0);
        internal::AnnotateStats local_stats;
        internal::FusedCount(batch, kernels, begin, end, local.data(),
                             &local_stats);
        util::MutexLock lock(&merge_mutex);
        for (size_t p = 0; p < counts.size(); ++p) counts[p] += local[p];
        stats.rows_scanned += local_stats.rows_scanned;
        stats.blocks_pruned += local_stats.blocks_pruned;
        stats.blocks_shortcircuited += local_stats.blocks_shortcircuited;
      });
  rows_scanned->Increment(static_cast<uint64_t>(stats.rows_scanned));
  blocks_pruned->Increment(static_cast<uint64_t>(stats.blocks_pruned));
  blocks_shortcircuited->Increment(
      static_cast<uint64_t>(stats.blocks_shortcircuited));
  return counts;
}

}  // namespace warper::storage
