#include "storage/column.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/status.h"

namespace warper::storage {

void Column::SetValue(size_t row, double v) {
  WARPER_CHECK(row < values_.size());
  values_[row] = v;
  stats_valid_ = false;
}

void Column::Append(double v) {
  values_.push_back(v);
  stats_valid_ = false;
}

void Column::Truncate(size_t new_size) {
  WARPER_CHECK(new_size <= values_.size());
  values_.resize(new_size);
  stats_valid_ = false;
}

void Column::RefreshStats() const {
  if (stats_valid_) return;
  stats_valid_ = true;
  if (values_.empty()) {
    min_ = max_ = 0.0;
    distinct_ = 0;
    return;
  }
  min_ = max_ = values_[0];
  for (double v : values_) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  std::unordered_set<double> seen(values_.begin(), values_.end());
  distinct_ = seen.size();
}

double Column::Min() const {
  RefreshStats();
  return min_;
}

double Column::Max() const {
  RefreshStats();
  return max_;
}

size_t Column::DistinctCount() const {
  RefreshStats();
  return distinct_;
}

}  // namespace warper::storage
