#include "storage/column.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/status.h"

namespace warper::storage {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Widens `entry` to cover `v`. NaN poisons the block to [-inf, +inf]: NaN
// matches every range predicate under the scan semantics, so a NaN block
// must never be pruned.
void WidenZone(Column::ZoneEntry* entry, double v) {
  if (v != v) {
    entry->min = -kInf;
    entry->max = kInf;
    return;
  }
  if (v < entry->min) entry->min = v;
  if (v > entry->max) entry->max = v;
}

}  // namespace

void Column::SetValue(size_t row, double v) {
  WARPER_CHECK(row < values_.size());
  values_[row] = v;
  minmax_valid_ = false;
  distinct_valid_ = false;
  // The stored bounds stay a superset of the block's values (the overwritten
  // value may have been the extremum), so pruning decisions remain safe;
  // `stale` queues the block for lazy re-tightening.
  ZoneEntry& entry = zones_[row / kZoneBlockRows];
  WidenZone(&entry, v);
  entry.stale = true;
}

void Column::Append(double v) {
  size_t row = values_.size();
  values_.push_back(v);
  if (minmax_valid_) {
    // Running min/max: appends never invalidate, so a drifted append burst
    // answers Min()/Max() without a rescan.
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  } else if (values_.size() == 1) {
    min_ = max_ = v;
    minmax_valid_ = true;
  }
  distinct_valid_ = false;
  if (row / kZoneBlockRows == zones_.size()) {
    ZoneEntry fresh{kInf, -kInf, false};
    WidenZone(&fresh, v);
    zones_.push_back(fresh);
  } else {
    // Extending the tail block keeps its entry exact (unless already stale).
    WidenZone(&zones_.back(), v);
  }
}

void Column::Truncate(size_t new_size) {
  WARPER_CHECK(new_size <= values_.size());
  if (new_size == values_.size()) return;
  values_.resize(new_size);
  minmax_valid_ = false;
  distinct_valid_ = false;
  zones_.resize((new_size + kZoneBlockRows - 1) / kZoneBlockRows);
  if (!zones_.empty() && new_size % kZoneBlockRows != 0) {
    // The surviving partial block lost rows; its bounds are now only a
    // superset.
    zones_.back().stale = true;
  }
}

void Column::RefreshMinMax() const {
  if (minmax_valid_) return;
  minmax_valid_ = true;
  if (values_.empty()) {
    min_ = max_ = 0.0;
    return;
  }
  min_ = max_ = values_[0];
  for (double v : values_) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

void Column::RefreshDistinct() const {
  if (distinct_valid_) return;
  distinct_valid_ = true;
  std::unordered_set<double> seen(values_.begin(), values_.end());
  distinct_ = seen.size();
}

double Column::Min() const {
  RefreshMinMax();
  return min_;
}

double Column::Max() const {
  RefreshMinMax();
  return max_;
}

size_t Column::DistinctCount() const {
  RefreshDistinct();
  return distinct_;
}

void Column::EnsureZoneMapFresh() const {
  for (size_t b = 0; b < zones_.size(); ++b) {
    ZoneEntry& entry = zones_[b];
    if (!entry.stale) continue;
    size_t begin = b * kZoneBlockRows;
    size_t end = std::min(values_.size(), begin + kZoneBlockRows);
    ZoneEntry tight{kInf, -kInf, false};
    for (size_t r = begin; r < end; ++r) WidenZone(&tight, values_[r]);
    entry = tight;
  }
}

}  // namespace warper::storage
