// AVX2 range-scan kernels — the fast annotate dispatch path.
//
// This is the only storage TU compiled with -mavx2 (see
// src/storage/CMakeLists.txt); util::GetCpuFeatures() gates execution at
// runtime so the binary stays portable. When the compiler can't target AVX2
// the file degrades to an alias of the scalar table.
//
// Match semantics are the scan's !(v < lo) && !(v > hi): the unordered
// compare predicates _CMP_NLT_UQ / _CMP_NGT_UQ are true for NaN, so NaN
// matches — exactly like the scalar reference. A true lane is all-ones
// (-1 as int64), so the count kernel accumulates matches by *subtracting*
// the compare mask from four packed int64 counters: no movemask or popcount
// in the hot loop. The mask kernels assemble 64-row bitset words from
// sixteen 4-bit movemask groups.
#include "storage/annotate_kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(WARPER_BUILD_AVX2)
#define WARPER_ANNOTATE_AVX2_IMPL 1
#endif

#ifdef WARPER_ANNOTATE_AVX2_IMPL

#include <immintrin.h>

namespace warper::storage::internal {
namespace {

inline bool MatchScalar(double v, double lo, double hi) {
  return !(v < lo) && !(v > hi);
}

// All-ones lanes where !(v < lo) && !(v > hi).
inline __m256d MatchMask(__m256d v, __m256d lo, __m256d hi) {
  return _mm256_and_pd(_mm256_cmp_pd(v, lo, _CMP_NLT_UQ),
                       _mm256_cmp_pd(v, hi, _CMP_NGT_UQ));
}

int64_t Avx2CountRange(const double* v, size_t n, double lo, double hi) {
  __m256d vlo = _mm256_set1_pd(lo);
  __m256d vhi = _mm256_set1_pd(hi);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d m0 = MatchMask(_mm256_loadu_pd(v + i), vlo, vhi);
    __m256d m1 = MatchMask(_mm256_loadu_pd(v + i + 4), vlo, vhi);
    acc0 = _mm256_sub_epi64(acc0, _mm256_castpd_si256(m0));
    acc1 = _mm256_sub_epi64(acc1, _mm256_castpd_si256(m1));
  }
  if (i + 4 <= n) {
    __m256d m0 = MatchMask(_mm256_loadu_pd(v + i), vlo, vhi);
    acc0 = _mm256_sub_epi64(acc0, _mm256_castpd_si256(m0));
    i += 4;
  }
  alignas(32) int64_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), acc1);
  int64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                  lanes[5] + lanes[6] + lanes[7];
  for (; i < n; ++i) count += MatchScalar(v[i], lo, hi) ? 1 : 0;
  return count;
}

// One 64-row bitset word starting at v (v + 64 must be in range).
inline uint64_t MaskWord(const double* v, __m256d lo, __m256d hi) {
  uint64_t bits = 0;
  for (int g = 0; g < 16; ++g) {
    __m256d m = MatchMask(_mm256_loadu_pd(v + 4 * g), lo, hi);
    bits |= static_cast<uint64_t>(_mm256_movemask_pd(m))
            << (4 * g);
  }
  return bits;
}

inline uint64_t TailWord(const double* v, size_t n, double lo, double hi) {
  uint64_t bits = 0;
  for (size_t r = 0; r < n; ++r) {
    bits |= static_cast<uint64_t>(MatchScalar(v[r], lo, hi)) << r;
  }
  return bits;
}

void Avx2MaskRange(const double* v, size_t n, double lo, double hi,
                   uint64_t* mask) {
  __m256d vlo = _mm256_set1_pd(lo);
  __m256d vhi = _mm256_set1_pd(hi);
  size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) mask[w] = MaskWord(v + 64 * w, vlo, vhi);
  if (n % 64 != 0) mask[full] = TailWord(v + 64 * full, n % 64, lo, hi);
}

void Avx2MaskRangeAnd(const double* v, size_t n, double lo, double hi,
                      uint64_t* mask) {
  __m256d vlo = _mm256_set1_pd(lo);
  __m256d vhi = _mm256_set1_pd(hi);
  size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) mask[w] &= MaskWord(v + 64 * w, vlo, vhi);
  if (n % 64 != 0) mask[full] &= TailWord(v + 64 * full, n % 64, lo, hi);
}

const AnnotateKernelTable kAvx2Table = {
    "avx2",
    &Avx2CountRange,
    &Avx2MaskRange,
    &Avx2MaskRangeAnd,
};

}  // namespace

const AnnotateKernelTable& Avx2AnnotateKernels() { return kAvx2Table; }
bool Avx2AnnotateKernelsCompiled() { return true; }

}  // namespace warper::storage::internal

#else  // !WARPER_ANNOTATE_AVX2_IMPL

namespace warper::storage::internal {

const AnnotateKernelTable& Avx2AnnotateKernels() {
  return ScalarAnnotateKernels();
}
bool Avx2AnnotateKernelsCompiled() { return false; }

}  // namespace warper::storage::internal

#endif  // WARPER_ANNOTATE_AVX2_IMPL
