// The annotator A: computes ground-truth cardinalities by scanning the
// table. The paper notes that annotation "typically requires querying the
// DBMS ... batching predicates into a single evaluation tree and executing
// many predicates in one query still scans the underlying table at least
// once" (§2); BatchCount implements that single-scan batching through the
// fused per-block engine (storage/annotate_engine.h): SIMD range kernels,
// zone-map pruning, and all predicates evaluated per cache-resident block.
// Count is a batch of one on the same path, so single-predicate and batched
// annotation can never diverge. The optional CpuAccumulator feeds the cost
// tables (Table 6 / Table 11).
#ifndef WARPER_STORAGE_ANNOTATOR_H_
#define WARPER_STORAGE_ANNOTATOR_H_

#include <cstdint>
#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"
#include "util/timer.h"

namespace warper::storage {

class Annotator {
 public:
  explicit Annotator(const Table* table, util::CpuAccumulator* cpu = nullptr)
      : table_(table), cpu_(cpu) {}

  // Ground-truth cardinality of one predicate.
  int64_t Count(const RangePredicate& pred) const;

  // Ground-truth cardinalities for a batch in one pass over the table.
  std::vector<int64_t> BatchCount(const std::vector<RangePredicate>& preds) const;

  // Total predicates annotated so far (for cost accounting).
  int64_t annotations() const { return annotations_; }
  // Credits annotations performed on this annotator's table by an external
  // executor (e.g. storage::ParallelAnnotator) so cost accounting stays
  // accurate across execution strategies. Call from one thread only.
  void RecordAnnotations(int64_t n) const { annotations_ += n; }

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
  util::CpuAccumulator* cpu_;
  mutable int64_t annotations_ = 0;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_ANNOTATOR_H_
