#include "storage/data_drift.h"

#include "storage/parallel_annotator.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::storage {

void AppendShiftedRows(Table* table, double fraction, double shift,
                       util::Rng* rng) {
  WARPER_CHECK(fraction >= 0.0);
  size_t n = table->NumRows();
  WARPER_CHECK(n > 0);
  size_t to_add = static_cast<size_t>(fraction * static_cast<double>(n));

  // Capture domain spans before mutating.
  std::vector<double> spans(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    spans[c] = table->column(c).Max() - table->column(c).Min();
  }

  for (size_t i = 0; i < to_add; ++i) {
    size_t src = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    std::vector<double> row(table->NumColumns());
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      double v = table->column(c).Value(src);
      if (table->column(c).type() == ColumnType::kNumeric) {
        v += shift * spans[c];
      }
      row[c] = v;
    }
    table->AppendRow(row);
  }
}

void UpdateRandomRows(Table* table, double fraction, util::Rng* rng) {
  WARPER_CHECK(fraction >= 0.0 && fraction <= 1.0);
  size_t n = table->NumRows();
  WARPER_CHECK(n > 0);
  size_t to_update = static_cast<size_t>(fraction * static_cast<double>(n));

  std::vector<double> mins(table->NumColumns()), maxs(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    mins[c] = table->column(c).Min();
    maxs[c] = table->column(c).Max();
  }

  std::vector<size_t> rows = rng->SampleWithoutReplacement(n, to_update);
  for (size_t r : rows) {
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      if (table->column(c).type() != ColumnType::kNumeric) continue;
      table->UpdateCell(r, c, rng->Uniform(mins[c], maxs[c]));
    }
  }
}

void SortTruncateHalf(Table* table, size_t col) {
  WARPER_CHECK(col < table->NumColumns());
  table->SortByColumn(col);
  table->Truncate(table->NumRows() / 2);
}

std::vector<RangePredicate> MakeCanaryPredicates(const Table& table, size_t n,
                                                 util::Rng* rng) {
  std::vector<RangePredicate> canaries;
  canaries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RangePredicate p = RangePredicate::FullRange(table);
    // Constrain 1–2 random columns to random sub-ranges.
    int64_t num_cols = rng->UniformInt(1, 2);
    for (int64_t k = 0; k < num_cols; ++k) {
      size_t c = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(table.NumColumns()) - 1));
      double lo = rng->Uniform(p.low[c], p.high[c]);
      double hi = rng->Uniform(lo, p.high[c]);
      p.low[c] = lo;
      p.high[c] = hi;
    }
    canaries.push_back(std::move(p));
  }
  return canaries;
}

namespace {

double ShiftFromCounts(const std::vector<int64_t>& current,
                       const std::vector<int64_t>& baseline) {
  double total = 0.0;
  for (size_t i = 0; i < current.size(); ++i) {
    double before = static_cast<double>(baseline[i]);
    double after = static_cast<double>(current[i]);
    double denom = std::max(1.0, std::max(before, after));
    total += std::abs(after - before) / denom;
  }
  return total / static_cast<double>(current.size());
}

}  // namespace

double CanaryShift(const Annotator& annotator,
                   const std::vector<RangePredicate>& canaries,
                   const std::vector<int64_t>& baseline) {
  WARPER_CHECK(canaries.size() == baseline.size());
  if (canaries.empty()) return 0.0;
  return ShiftFromCounts(annotator.BatchCount(canaries), baseline);
}

double CanaryShift(const ParallelAnnotator& annotator,
                   const std::vector<RangePredicate>& canaries,
                   const std::vector<int64_t>& baseline) {
  WARPER_CHECK(canaries.size() == baseline.size());
  if (canaries.empty()) return 0.0;
  return ShiftFromCounts(annotator.BatchCount(canaries), baseline);
}

}  // namespace warper::storage
