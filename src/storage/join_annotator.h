// Star-schema join queries and their ground-truth cardinalities.
//
// Backs the join-CE experiment (Table 7d): MSCN-style queries over a center
// (dimension) table joined to one or more fact tables via key–foreign-key
// equi-joins, with range predicates on every participating table.
#ifndef WARPER_STORAGE_JOIN_ANNOTATOR_H_
#define WARPER_STORAGE_JOIN_ANNOTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/annotator.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "util/thread_pool.h"

namespace warper::storage {

// A star schema: `center` has a primary key column; each fact table joins to
// it via a foreign-key column.
struct StarSchema {
  const Table* center = nullptr;
  size_t center_pk_col = 0;
  struct Fact {
    const Table* table = nullptr;
    size_t fk_col = 0;
  };
  std::vector<Fact> facts;
};

// A join query: which fact tables participate (join_mask bit i ↔ facts[i]),
// plus a range predicate per table. Non-participating fact predicates are
// ignored.
struct JoinQuery {
  uint32_t join_mask = 0;
  RangePredicate center_pred;
  std::vector<RangePredicate> fact_preds;

  size_t NumJoins() const;
};

class JoinAnnotator {
 public:
  explicit JoinAnnotator(const StarSchema* schema,
                         util::CpuAccumulator* cpu = nullptr)
      : schema_(schema), cpu_(cpu) {}

  // Exact cardinality of SELECT count(*) over the star join with the given
  // predicates. One hash-aggregation pass over each participating fact table
  // plus one scan of the center table.
  int64_t Count(const JoinQuery& query) const;

  std::vector<int64_t> BatchCount(const std::vector<JoinQuery>& queries) const;

  // Batch counting with the queries fanned out across the shared thread
  // pool. Each query is independent and writes only its own slot, so results
  // are bit-identical to BatchCount; the CPU accumulator (if any) receives
  // one wall-clock charge for the whole batch instead of per-query charges.
  std::vector<int64_t> BatchCountParallel(const std::vector<JoinQuery>& queries,
                                          const util::ParallelConfig& config)
      const;

  const StarSchema& schema() const { return *schema_; }

 private:
  // Count without CPU accounting (safe to call from pool workers).
  int64_t CountImpl(const JoinQuery& query) const;

  const StarSchema* schema_;
  util::CpuAccumulator* cpu_;
};

}  // namespace warper::storage

#endif  // WARPER_STORAGE_JOIN_ANNOTATOR_H_
