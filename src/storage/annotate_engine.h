// The shared annotation engine: compiled predicate batches, zone-map
// pruning, and the fused per-block multi-predicate scan.
//
// The seed annotators walked the table row-at-a-time, re-testing every
// predicate against every row. The engine restructures the pass to
// per-block-all-predicates: each kZoneBlockRows-row column block is loaded
// once and every predicate's bounds are evaluated against the resident
// data, so the n_p predicates of one adaptation pass cost one pass over the
// table (§2's "single evaluation tree", now also single in the cache).
// Before any block is touched, its zone-map entry decides the cheap cases:
//
//   reject      zone [min, max] disjoint from a predicate's bounds on any
//               constrained column → the block contributes 0 rows, skip it.
//   all-match   every constrained column's zone range lies inside the
//               bounds → credit the whole block without touching rows.
//   partial     evaluate — but only the columns whose zone range is not
//               fully inside the bounds (the others are redundant on this
//               block).
//
// Counts are integer sums, so every path (scalar/AVX2 kernels, pruned or
// not, serial or any row partition) is bit-identical to the seed scan.
//
// Used by Annotator, ParallelAnnotator and JoinAnnotator; callers outside
// src/storage should use those classes.
#ifndef WARPER_STORAGE_ANNOTATE_ENGINE_H_
#define WARPER_STORAGE_ANNOTATE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "storage/annotate_kernels.h"
#include "storage/column.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "util/annotations.h"

namespace warper::storage::internal {

// Widest predicate a CompiledBatch accepts (checked at compile time of the
// batch, i.e. the cold path). The per-block active-column scratch in the
// evaluation loops is a fixed stack array of this size so the hot path
// never allocates; every dataset in the tree is far below it.
inline constexpr size_t kMaxConstrainedCols = 64;

// Work accounting for one engine pass, merged into the annotator.* metrics
// by the caller. rows_scanned counts rows actually evaluated against a
// predicate (summed over predicates); pruned and short-circuited blocks
// contribute nothing to it.
struct AnnotateStats {
  int64_t rows_scanned = 0;
  int64_t blocks_pruned = 0;
  int64_t blocks_shortcircuited = 0;
};

// A batch of predicates compiled against one table: per-predicate bounds on
// only the constrained columns, plus raw value/zone-map pointers per
// referenced column. Construction freshens every referenced column's zone
// map, so evaluation afterwards — including from pool workers — is
// read-only on the table.
//
// The table must outlive the batch and must not be mutated while the batch
// is in use.
class CompiledBatch {
 public:
  CompiledBatch(const Table& table, const std::vector<RangePredicate>& preds);

  size_t num_rows() const { return rows_; }
  size_t num_preds() const { return preds_.size(); }

  struct Pred {
    std::vector<uint32_t> cols;  // constrained column ids
    std::vector<double> low;
    std::vector<double> high;
  };
  struct Col {
    const double* values = nullptr;
    const Column::ZoneEntry* zones = nullptr;
  };

  const std::vector<Pred>& preds() const { return preds_; }
  const Col& col(uint32_t c) const { return cols_[c]; }

 private:
  std::vector<Pred> preds_;
  std::vector<Col> cols_;  // indexed by column id; unreferenced stay null
  size_t rows_ = 0;
};

// Adds each predicate's match count over rows [row_begin, row_end) into
// counts[0..num_preds). Any contiguous partition of [0, rows) sums to the
// full-table counts exactly, so parallel callers merge chunk-local tallies.
// `stats` may be null.
WARPER_HOT_PATH void FusedCount(const CompiledBatch& batch,
                                const AnnotateKernelTable& kernels,
                                size_t row_begin, size_t row_end,
                                int64_t* counts, AnnotateStats* stats);

// Match bitmap of predicate `pred` over the whole table: bit r of
// mask[r / 64] ← row r matches. mask holds (num_rows + 63) / 64 words;
// trailing bits are zeroed. Zone-pruned like FusedCount (rejected blocks
// write zero words, all-match blocks write all-ones without touching rows).
WARPER_HOT_PATH void PredicateMask(const CompiledBatch& batch, size_t pred,
                                   const AnnotateKernelTable& kernels,
                                   uint64_t* mask, AnnotateStats* stats);

}  // namespace warper::storage::internal

#endif  // WARPER_STORAGE_ANNOTATE_ENGINE_H_
