#include "storage/predicate.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace warper::storage {

RangePredicate RangePredicate::FullRange(const Table& table) {
  RangePredicate p;
  p.low.resize(table.NumColumns());
  p.high.resize(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    p.low[c] = table.column(c).Min();
    p.high[c] = table.column(c).Max();
  }
  return p;
}

bool RangePredicate::Matches(const Table& table, size_t row) const {
  WARPER_CHECK(low.size() == table.NumColumns());
  for (size_t c = 0; c < low.size(); ++c) {
    double v = table.column(c).Value(row);
    if (v < low[c] || v > high[c]) return false;
  }
  return true;
}

bool RangePredicate::Constrains(const Table& table, size_t col) const {
  WARPER_CHECK(col < low.size());
  return low[col] > table.column(col).Min() ||
         high[col] < table.column(col).Max();
}

void RangePredicate::Canonicalize(const Table& table) {
  WARPER_CHECK(low.size() == table.NumColumns());
  for (size_t c = 0; c < low.size(); ++c) {
    if (low[c] > high[c]) std::swap(low[c], high[c]);
    double cmin = table.column(c).Min();
    double cmax = table.column(c).Max();
    low[c] = std::clamp(low[c], cmin, cmax);
    high[c] = std::clamp(high[c], cmin, cmax);
  }
}

std::vector<double> RangePredicate::Featurize(const Table& table) const {
  WARPER_CHECK(low.size() == table.NumColumns());
  size_t d = low.size();
  std::vector<double> features(2 * d);
  for (size_t c = 0; c < d; ++c) {
    double cmin = table.column(c).Min();
    double cmax = table.column(c).Max();
    double span = cmax - cmin;
    if (span <= 0.0) {
      features[c] = 0.0;
      features[d + c] = 1.0;
      continue;
    }
    features[c] = (low[c] - cmin) / span;
    features[d + c] = (high[c] - cmin) / span;
  }
  return features;
}

RangePredicate RangePredicate::FromFeatures(const Table& table,
                                            const std::vector<double>& features) {
  size_t d = table.NumColumns();
  WARPER_CHECK_MSG(features.size() == 2 * d,
                   "feature width " << features.size() << " != 2*" << d);
  RangePredicate p;
  p.low.resize(d);
  p.high.resize(d);
  for (size_t c = 0; c < d; ++c) {
    double cmin = table.column(c).Min();
    double cmax = table.column(c).Max();
    double span = cmax - cmin;
    p.low[c] = cmin + std::clamp(features[c], 0.0, 1.0) * span;
    p.high[c] = cmin + std::clamp(features[d + c], 0.0, 1.0) * span;
    if (p.low[c] > p.high[c]) std::swap(p.low[c], p.high[c]);
    // Categorical columns hold integer dictionary codes: snap bounds inward
    // so decoded (e.g. GAN-generated) predicates are featurization-
    // consistent with real ones.
    if (table.column(c).type() == ColumnType::kCategorical) {
      double lo = std::ceil(p.low[c]);
      double hi = std::floor(p.high[c]);
      if (lo > hi) lo = hi = std::round(0.5 * (p.low[c] + p.high[c]));
      p.low[c] = lo;
      p.high[c] = hi;
    }
  }
  p.Canonicalize(table);
  return p;
}

}  // namespace warper::storage
