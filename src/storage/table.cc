#include "storage/table.h"

#include <algorithm>
#include <numeric>

namespace warper::storage {

Column* Table::AddColumn(std::string column_name, ColumnType type) {
  WARPER_CHECK_MSG(NumRows() == 0,
                   "columns must be added before any rows are appended");
  columns_.emplace_back(std::move(column_name), type);
  return &columns_.back();
}

Result<size_t> Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == column_name) return i;
  }
  return Status::NotFound("no column named '" + column_name + "' in table '" +
                          name_ + "'");
}

void Table::AppendRow(const std::vector<double>& values) {
  WARPER_CHECK_MSG(values.size() == columns_.size(),
                   "row width " << values.size() << " != column count "
                                << columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].Append(values[i]);
  ++change_counter_;
}

void Table::UpdateCell(size_t row, size_t col, double value) {
  WARPER_CHECK(col < columns_.size() && row < NumRows());
  columns_[col].SetValue(row, value);
  ++change_counter_;
}

void Table::Truncate(size_t new_size) {
  size_t old_size = NumRows();
  WARPER_CHECK(new_size <= old_size);
  for (auto& c : columns_) c.Truncate(new_size);
  change_counter_ += old_size - new_size;
}

void Table::SortByColumn(size_t col) {
  WARPER_CHECK(col < columns_.size());
  size_t n = NumRows();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto& key = columns_[col].values();
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return key[a] < key[b]; });
  for (auto& c : columns_) {
    std::vector<double> reordered(n);
    for (size_t i = 0; i < n; ++i) reordered[i] = c.Value(order[i]);
    for (size_t i = 0; i < n; ++i) c.SetValue(i, reordered[i]);
  }
}

void Table::CheckRowAlignment() const {
  for (const auto& c : columns_) {
    WARPER_CHECK_MSG(c.size() == NumRows(),
                     "column '" << c.name() << "' misaligned");
  }
}

double Table::ChangedFractionSince(uint64_t snapshot) const {
  WARPER_CHECK(snapshot <= change_counter_);
  size_t n = NumRows();
  if (n == 0) return change_counter_ > snapshot ? 1.0 : 0.0;
  double frac = static_cast<double>(change_counter_ - snapshot) /
                static_cast<double>(n);
  return std::min(1.0, frac);
}

}  // namespace warper::storage
