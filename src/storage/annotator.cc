#include "storage/annotator.h"

#include <memory>
#include <optional>

#include "storage/annotate_engine.h"
#include "storage/annotate_kernels.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace warper::storage {
namespace {

// Annotation is the dominant adaptation cost (Table 6): count every call,
// every predicate labeled and every row touched so cost attribution survives
// into metric snapshots. Under zone-map pruning rows_scanned counts rows
// *actually* evaluated against a predicate (summed over predicates) — not
// table passes: blocks the zone map rejects outright (blocks_pruned) or
// credits wholesale (blocks_shortcircuited) contribute nothing to it.
struct AnnotatorMetrics {
  util::Counter* calls = util::Metrics().GetCounter("annotator.calls");
  util::Counter* predicates = util::Metrics().GetCounter("annotator.predicates");
  util::Counter* rows_scanned =
      util::Metrics().GetCounter("annotator.rows_scanned");
  util::Counter* blocks_pruned =
      util::Metrics().GetCounter("annotator.blocks_pruned");
  util::Counter* blocks_shortcircuited =
      util::Metrics().GetCounter("annotator.blocks_shortcircuited");
};

AnnotatorMetrics& GetAnnotatorMetrics() {
  static AnnotatorMetrics* metrics = new AnnotatorMetrics();
  return *metrics;
}

void MergeStats(const internal::AnnotateStats& stats) {
  AnnotatorMetrics& metrics = GetAnnotatorMetrics();
  metrics.rows_scanned->Increment(static_cast<uint64_t>(stats.rows_scanned));
  metrics.blocks_pruned->Increment(static_cast<uint64_t>(stats.blocks_pruned));
  metrics.blocks_shortcircuited->Increment(
      static_cast<uint64_t>(stats.blocks_shortcircuited));
}

}  // namespace

int64_t Annotator::Count(const RangePredicate& pred) const {
  // A batch of one: single-predicate and batched annotation share the
  // compiled-kernel path, so the two can never diverge.
  return BatchCount({pred})[0];
}

std::vector<int64_t> Annotator::BatchCount(
    const std::vector<RangePredicate>& preds) const {
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  annotations_ += static_cast<int64_t>(preds.size());
  util::ScopedSpan span("annotator.batch_count");
  span.Arg("predicates", static_cast<double>(preds.size()));
  span.Arg("rows", static_cast<double>(table_->NumRows()));
  AnnotatorMetrics& metrics = GetAnnotatorMetrics();
  metrics.calls->Increment();
  metrics.predicates->Increment(preds.size());

  internal::CompiledBatch batch(*table_, preds);
  std::vector<int64_t> counts(preds.size(), 0);
  internal::AnnotateStats stats;
  internal::FusedCount(batch, internal::ActiveAnnotateKernels(), 0,
                       table_->NumRows(), counts.data(), &stats);
  MergeStats(stats);
  return counts;
}

}  // namespace warper::storage
