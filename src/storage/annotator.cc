#include "storage/annotator.h"

#include <memory>
#include <optional>

#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace warper::storage {
namespace {

// Annotation is the dominant adaptation cost (Table 6): count every call,
// every predicate labeled and every row touched so cost attribution survives
// into metric snapshots. (row, predicate) pairs actually evaluated can be
// far below rows × predicates thanks to the early-exit scan, so rows_scanned
// counts full table passes, not pair evaluations.
struct AnnotatorMetrics {
  util::Counter* calls = util::Metrics().GetCounter("annotator.calls");
  util::Counter* predicates = util::Metrics().GetCounter("annotator.predicates");
  util::Counter* rows_scanned =
      util::Metrics().GetCounter("annotator.rows_scanned");
};

AnnotatorMetrics& GetAnnotatorMetrics() {
  static AnnotatorMetrics* metrics = new AnnotatorMetrics();
  return *metrics;
}

// Per-predicate list of (column, low, high) for only the constrained
// columns; skipping full-range columns makes the scan proportional to the
// predicate's active width.
struct CompiledPredicate {
  std::vector<size_t> cols;
  std::vector<double> low;
  std::vector<double> high;
};

CompiledPredicate Compile(const Table& table, const RangePredicate& pred) {
  WARPER_CHECK(pred.NumColumns() == table.NumColumns());
  CompiledPredicate cp;
  for (size_t c = 0; c < pred.NumColumns(); ++c) {
    if (pred.Constrains(table, c)) {
      cp.cols.push_back(c);
      cp.low.push_back(pred.low[c]);
      cp.high.push_back(pred.high[c]);
    }
  }
  return cp;
}

}  // namespace

int64_t Annotator::Count(const RangePredicate& pred) const {
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  ++annotations_;
  AnnotatorMetrics& metrics = GetAnnotatorMetrics();
  metrics.calls->Increment();
  metrics.predicates->Increment();
  metrics.rows_scanned->Increment(table_->NumRows());

  CompiledPredicate cp = Compile(*table_, pred);
  size_t n = table_->NumRows();
  if (cp.cols.empty()) return static_cast<int64_t>(n);

  int64_t count = 0;
  for (size_t r = 0; r < n; ++r) {
    bool match = true;
    for (size_t i = 0; i < cp.cols.size(); ++i) {
      double v = table_->column(cp.cols[i]).Value(r);
      if (v < cp.low[i] || v > cp.high[i]) {
        match = false;
        break;
      }
    }
    count += match ? 1 : 0;
  }
  return count;
}

std::vector<int64_t> Annotator::BatchCount(
    const std::vector<RangePredicate>& preds) const {
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  annotations_ += static_cast<int64_t>(preds.size());
  util::ScopedSpan span("annotator.batch_count");
  span.Arg("predicates", static_cast<double>(preds.size()));
  span.Arg("rows", static_cast<double>(table_->NumRows()));
  AnnotatorMetrics& metrics = GetAnnotatorMetrics();
  metrics.calls->Increment();
  metrics.predicates->Increment(preds.size());
  metrics.rows_scanned->Increment(table_->NumRows());

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(preds.size());
  for (const auto& p : preds) compiled.push_back(Compile(*table_, p));

  std::vector<int64_t> counts(preds.size(), 0);
  size_t n = table_->NumRows();
  // One pass over the rows, evaluating every predicate — the "single
  // evaluation tree" batching from §2.
  for (size_t r = 0; r < n; ++r) {
    for (size_t p = 0; p < compiled.size(); ++p) {
      const CompiledPredicate& cp = compiled[p];
      bool match = true;
      for (size_t i = 0; i < cp.cols.size(); ++i) {
        double v = table_->column(cp.cols[i]).Value(r);
        if (v < cp.low[i] || v > cp.high[i]) {
          match = false;
          break;
        }
      }
      counts[p] += match ? 1 : 0;
    }
  }
  return counts;
}

}  // namespace warper::storage
