// Data-drift operators and telemetry (§2 "data drift", §3.1, §4.1.2).
//
// The paper's data drifts are inserts / appends / deletes / updates to rows;
// its c1 experiment "sorts the dataset by one column and truncates the table
// in half to differentiate the data distributions". The telemetry mirrors
// what a DBMS would report: the fraction of rows changed since a snapshot,
// plus cardinality shift on a handful of canary predicates.
#ifndef WARPER_STORAGE_DATA_DRIFT_H_
#define WARPER_STORAGE_DATA_DRIFT_H_

#include <cstdint>
#include <vector>

#include "storage/annotator.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "util/rng.h"

namespace warper::storage {

// Appends `fraction`·NumRows new rows sampled from existing rows with each
// numeric value shifted by `shift` × column range (a distribution-moving
// append, like the Power-dataset experiment in §2).
void AppendShiftedRows(Table* table, double fraction, double shift,
                       util::Rng* rng);

// Overwrites the numeric cells of `fraction`·NumRows random rows with values
// re-drawn uniformly from the column domain (an in-place update drift).
void UpdateRandomRows(Table* table, double fraction, util::Rng* rng);

// The paper's c1 drift: sort by `col` ascending, then truncate to half the
// rows. The remaining data covers only the lower half of `col`'s domain, so
// every previously-computed label is stale.
void SortTruncateHalf(Table* table, size_t col);

// Canary predicates: a fixed set of random single/two-column ranges whose
// cardinalities are tracked across drift checks.
std::vector<RangePredicate> MakeCanaryPredicates(const Table& table, size_t n,
                                                 util::Rng* rng);

// Mean relative cardinality change of the canaries vs. their `baseline`
// counts (values in [0, 1]; 0 = unchanged).
double CanaryShift(const Annotator& annotator,
                   const std::vector<RangePredicate>& canaries,
                   const std::vector<int64_t>& baseline);

// Same telemetry with the canary pass executed by a ParallelAnnotator on
// the shared thread pool; counts — and therefore the shift — are
// bit-identical to the serial overload.
class ParallelAnnotator;
double CanaryShift(const ParallelAnnotator& annotator,
                   const std::vector<RangePredicate>& canaries,
                   const std::vector<int64_t>& baseline);

}  // namespace warper::storage

#endif  // WARPER_STORAGE_DATA_DRIFT_H_
