#include "storage/datasets.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"
#include "util/status.h"

namespace warper::storage {
namespace {

using util::Rng;

// Rounds to `digits` decimal places; controls distinct counts.
double RoundTo(double v, int digits) {
  double scale = std::pow(10.0, digits);
  return std::round(v * scale) / scale;
}

}  // namespace

Table MakeHiggs(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("higgs");
  t.AddColumn("lepton_pt", ColumnType::kNumeric);
  t.AddColumn("lepton_eta", ColumnType::kNumeric);
  t.AddColumn("missing_energy", ColumnType::kNumeric);
  t.AddColumn("jet1_pt", ColumnType::kNumeric);
  t.AddColumn("jet1_btag", ColumnType::kNumeric);  // 3 discrete levels
  t.AddColumn("m_jj", ColumnType::kNumeric);
  t.AddColumn("m_wbb", ColumnType::kNumeric);
  t.AddColumn("m_wwbb", ColumnType::kNumeric);

  for (size_t i = 0; i < rows; ++i) {
    // Latent signal/background class shifts the invariant-mass peaks, the
    // way the real HIGGS features separate the two processes.
    bool signal = rng.Bernoulli(0.5);
    double lepton_pt = RoundTo(std::exp(rng.Normal(0.0, 0.45)), 3);
    double lepton_eta = RoundTo(rng.Normal(0.0, 1.1), 3);
    double missing_energy = RoundTo(rng.Exponential(1.0), 3);
    double jet1_pt = RoundTo(std::exp(rng.Normal(signal ? 0.2 : 0.0, 0.5)), 3);
    double btag = static_cast<double>(rng.UniformInt(0, 2));
    double m_jj =
        RoundTo(signal ? rng.Normal(1.25, 0.35) : rng.Normal(0.95, 0.55), 3);
    double m_wbb = RoundTo(0.6 * m_jj + rng.Normal(0.5, 0.25), 3);
    double m_wwbb = RoundTo(0.4 * m_wbb + 0.3 * jet1_pt + rng.Normal(0.4, 0.2), 3);
    t.AppendRow({lepton_pt, lepton_eta, missing_energy, jet1_pt, btag, m_jj,
                 m_wbb, m_wwbb});
  }
  return t;
}

Table MakePrsa(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("prsa");
  t.AddColumn("year", ColumnType::kNumeric);   // 5 distinct years
  t.AddColumn("month", ColumnType::kNumeric);  // 1..12
  t.AddColumn("hour", ColumnType::kNumeric);   // 0..23
  t.AddColumn("pm25", ColumnType::kNumeric);   // heavy-tailed pollution
  t.AddColumn("temp", ColumnType::kNumeric);   // seasonal
  t.AddColumn("pres", ColumnType::kNumeric);
  t.AddColumn("wind_dir", ColumnType::kCategorical);  // 16 compass points
  t.AddColumn("station", ColumnType::kCategorical);   // 12 stations

  for (size_t i = 0; i < rows; ++i) {
    double year = static_cast<double>(2013 + rng.UniformInt(0, 4));
    double month = static_cast<double>(rng.UniformInt(1, 12));
    double hour = static_cast<double>(rng.UniformInt(0, 23));
    // Winter months are more polluted (heating season), matching PRSA.
    double season = std::cos((month - 1.0) / 12.0 * 2.0 * std::numbers::pi);
    double pm25 = RoundTo(std::exp(rng.Normal(3.6 + 0.6 * season, 0.8)), 1);
    double temp = RoundTo(-12.0 * season + rng.Normal(12.0, 5.0) +
                              3.0 * std::sin(hour / 24.0 * 2.0 * std::numbers::pi),
                          1);
    double pres = RoundTo(1016.0 + 8.0 * season + rng.Normal(0.0, 6.0), 1);
    double wind_dir = static_cast<double>(rng.Zipf(16, 0.8));
    double station = static_cast<double>(rng.UniformInt(0, 11));
    t.AppendRow({year, month, hour, pm25, temp, pres, wind_dir, station});
  }
  return t;
}

Table MakePoker(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("poker");
  for (int h = 1; h <= 5; ++h) {
    t.AddColumn("s" + std::to_string(h), ColumnType::kCategorical);
    t.AddColumn("c" + std::to_string(h), ColumnType::kCategorical);
  }
  t.AddColumn("hand", ColumnType::kCategorical);

  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row;
    std::vector<int> ranks, suits;
    // Deal five distinct cards from a 52-card deck (as in the real dataset):
    // the without-replacement draw induces the negative correlations between
    // the card columns that make the count function non-trivial.
    std::vector<size_t> deal = rng.SampleWithoutReplacement(52, 5);
    for (int h = 0; h < 5; ++h) {
      int suit = static_cast<int>(deal[h] / 13) + 1;
      int rank = static_cast<int>(deal[h] % 13) + 1;
      suits.push_back(suit);
      ranks.push_back(rank);
      row.push_back(suit);
      row.push_back(rank);
    }
    // Simplified hand classification (pairs/trips/flush), enough to give the
    // class column the real dataset's skew (most hands are "nothing").
    std::vector<int> counts(14, 0);
    for (int r : ranks) ++counts[r];
    int max_count = *std::max_element(counts.begin(), counts.end());
    int pairs = 0;
    for (int c : counts) pairs += c == 2 ? 1 : 0;
    bool flush = std::all_of(suits.begin(), suits.end(),
                             [&](int s) { return s == suits[0]; });
    double hand = 0;
    if (flush) hand = 5;
    else if (max_count == 4) hand = 7;
    else if (max_count == 3 && pairs == 1) hand = 6;
    else if (max_count == 3) hand = 3;
    else if (pairs == 2) hand = 2;
    else if (pairs == 1) hand = 1;
    row.push_back(hand);
    t.AppendRow(row);
  }
  return t;
}

TpchTables MakeTpch(size_t num_orders, uint64_t seed) {
  Rng rng(seed);
  TpchTables out{Table("orders"), Table("lineitem")};

  out.orders.AddColumn("o_orderkey", ColumnType::kNumeric);
  out.orders.AddColumn("o_custkey", ColumnType::kNumeric);
  out.orders.AddColumn("o_totalprice", ColumnType::kNumeric);
  out.orders.AddColumn("o_orderdate", ColumnType::kNumeric);  // days since epoch
  out.orders.AddColumn("o_orderpriority", ColumnType::kCategorical);
  out.orders_pk_col = 0;

  out.lineitem.AddColumn("l_orderkey", ColumnType::kNumeric);
  out.lineitem.AddColumn("l_quantity", ColumnType::kNumeric);
  out.lineitem.AddColumn("l_extendedprice", ColumnType::kNumeric);
  out.lineitem.AddColumn("l_discount", ColumnType::kNumeric);
  out.lineitem.AddColumn("l_shipdate", ColumnType::kNumeric);
  out.lineitem.AddColumn("l_returnflag", ColumnType::kCategorical);
  out.lineitem_fk_col = 0;

  size_t num_customers = std::max<size_t>(1, num_orders / 10);
  for (size_t o = 0; o < num_orders; ++o) {
    double orderdate = static_cast<double>(rng.UniformInt(0, 2555));  // 7 years
    int64_t lines = rng.UniformInt(1, 7);
    double total = 0.0;
    for (int64_t l = 0; l < lines; ++l) {
      double qty = static_cast<double>(rng.UniformInt(1, 50));
      double price = RoundTo(qty * rng.Uniform(900.0, 1100.0), 2);
      double discount = RoundTo(rng.Uniform(0.0, 0.10), 2);
      double shipdate = orderdate + static_cast<double>(rng.UniformInt(1, 121));
      double returnflag = static_cast<double>(rng.UniformInt(0, 2));
      out.lineitem.AppendRow({static_cast<double>(o), qty, price, discount,
                              shipdate, returnflag});
      total += price * (1.0 - discount);
    }
    double custkey =
        static_cast<double>(rng.UniformInt(0, static_cast<int64_t>(num_customers) - 1));
    double priority = static_cast<double>(rng.UniformInt(0, 4));
    out.orders.AppendRow(
        {static_cast<double>(o), custkey, RoundTo(total, 2), orderdate, priority});
  }
  return out;
}

ImdbTables MakeImdb(size_t num_titles, uint64_t seed) {
  Rng rng(seed);
  ImdbTables out{Table("title"), Table("cast_info"), Table("movie_companies")};

  out.title.AddColumn("id", ColumnType::kNumeric);
  out.title.AddColumn("production_year", ColumnType::kNumeric);
  out.title.AddColumn("kind_id", ColumnType::kCategorical);
  out.title.AddColumn("votes", ColumnType::kNumeric);

  out.cast_info.AddColumn("movie_id", ColumnType::kNumeric);
  out.cast_info.AddColumn("person_id", ColumnType::kNumeric);
  out.cast_info.AddColumn("role_id", ColumnType::kCategorical);

  out.movie_companies.AddColumn("movie_id", ColumnType::kNumeric);
  out.movie_companies.AddColumn("company_type", ColumnType::kCategorical);
  out.movie_companies.AddColumn("country", ColumnType::kCategorical);

  size_t num_people = std::max<size_t>(1, num_titles * 3);
  for (size_t m = 0; m < num_titles; ++m) {
    // Recent years dominate, as in IMDB.
    double year = 2020.0 - std::floor(rng.Exponential(0.04));
    year = std::max(year, 1900.0);
    double kind = static_cast<double>(rng.Zipf(7, 1.0));
    double votes = std::floor(std::exp(rng.Normal(4.0, 2.0)));
    out.title.AppendRow({static_cast<double>(m), year, kind, votes});

    // Popular (high-vote) movies have larger casts and more companies.
    int64_t cast_size = 1 + static_cast<int64_t>(std::log1p(votes));
    for (int64_t c = 0; c < cast_size; ++c) {
      double person = static_cast<double>(
          rng.Zipf(static_cast<int64_t>(num_people), 1.1));
      double role = static_cast<double>(rng.Zipf(11, 1.2));
      out.cast_info.AppendRow({static_cast<double>(m), person, role});
    }
    int64_t companies = rng.UniformInt(1, 3);
    for (int64_t c = 0; c < companies; ++c) {
      double type = static_cast<double>(rng.UniformInt(0, 1));
      double country = static_cast<double>(rng.Zipf(60, 1.1));
      out.movie_companies.AppendRow({static_cast<double>(m), type, country});
    }
  }
  return out;
}

StarSchema ImdbTables::Schema() const {
  StarSchema schema;
  schema.center = &title;
  schema.center_pk_col = 0;
  schema.facts.push_back({&cast_info, 0});
  schema.facts.push_back({&movie_companies, 0});
  return schema;
}

}  // namespace warper::storage
