#include "storage/join_annotator.h"

#include <bit>
#include <optional>
#include <unordered_map>

#include "storage/annotate_engine.h"
#include "storage/annotate_kernels.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace warper::storage {
namespace {

// rows_touched counts the rows every join pass actually visits (each active
// fact table once plus the center relation), the join-domain analogue of
// annotator.rows_scanned.
struct JoinAnnotatorMetrics {
  util::Counter* calls = util::Metrics().GetCounter("join_annotator.calls");
  util::Counter* queries = util::Metrics().GetCounter("join_annotator.queries");
  util::Counter* rows_touched =
      util::Metrics().GetCounter("join_annotator.rows_touched");
};

JoinAnnotatorMetrics& GetJoinAnnotatorMetrics() {
  static JoinAnnotatorMetrics* metrics = new JoinAnnotatorMetrics();
  return *metrics;
}

// Match bitmap of `pred` over every row of `table`, via the fused engine
// (SIMD compare kernels + zone-map pruning). ForEachMatch then walks only
// the set bits, so the per-row hash work below touches exactly the
// predicate-matching rows. Bit-identical to RangePredicate::Matches.
std::vector<uint64_t> MatchBitmap(const Table& table,
                                  const RangePredicate& pred) {
  internal::CompiledBatch batch(table, {pred});
  std::vector<uint64_t> mask((table.NumRows() + 63) / 64, 0);
  if (!mask.empty()) {
    internal::PredicateMask(batch, 0, internal::ActiveAnnotateKernels(),
                            mask.data(), /*stats=*/nullptr);
  }
  return mask;
}

// Materializes every participating table's lazy caches (domain stats read
// by Constrains, zone maps read by the engine) on the calling thread, so
// per-query batch compilation inside pool workers is read-only.
void WarmTableCaches(const StarSchema& s) {
  auto warm = [](const Table& t) {
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      t.column(c).Min();
      t.column(c).EnsureZoneMapFresh();
    }
  };
  warm(*s.center);
  for (const StarSchema::Fact& fact : s.facts) warm(*fact.table);
}

template <typename Fn>
void ForEachMatch(const std::vector<uint64_t>& mask, Fn&& fn) {
  for (size_t w = 0; w < mask.size(); ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      size_t r = w * 64 + static_cast<size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      fn(r);
    }
  }
}

}  // namespace

size_t JoinQuery::NumJoins() const {
  size_t n = 0;
  for (uint32_t m = join_mask; m != 0; m >>= 1) n += m & 1;
  return n;
}

int64_t JoinAnnotator::Count(const JoinQuery& query) const {
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  GetJoinAnnotatorMetrics().calls->Increment();
  return CountImpl(query);
}

int64_t JoinAnnotator::CountImpl(const JoinQuery& query) const {
  const StarSchema& s = *schema_;
  WARPER_CHECK(s.center != nullptr);
  WARPER_CHECK(query.fact_preds.size() == s.facts.size());

  JoinAnnotatorMetrics& metrics = GetJoinAnnotatorMetrics();
  metrics.queries->Increment();
  uint64_t rows = s.center->NumRows();
  for (size_t f = 0; f < s.facts.size(); ++f) {
    if ((query.join_mask >> f) & 1) rows += s.facts[f].table->NumRows();
  }
  metrics.rows_touched->Increment(rows);

  // Per participating fact table: key → number of matching rows.
  std::vector<std::unordered_map<int64_t, int64_t>> fact_counts;
  std::vector<size_t> active;
  for (size_t f = 0; f < s.facts.size(); ++f) {
    if ((query.join_mask >> f) & 1) active.push_back(f);
  }
  fact_counts.resize(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    const StarSchema::Fact& fact = s.facts[active[i]];
    const double* keys = fact.table->column(fact.fk_col).values().data();
    ForEachMatch(MatchBitmap(*fact.table, query.fact_preds[active[i]]),
                 [&](size_t r) {
                   ++fact_counts[i][static_cast<int64_t>(keys[r])];
                 });
  }

  int64_t total = 0;
  const double* center_keys =
      s.center->column(s.center_pk_col).values().data();
  ForEachMatch(MatchBitmap(*s.center, query.center_pred), [&](size_t r) {
    int64_t key = static_cast<int64_t>(center_keys[r]);
    int64_t product = 1;
    for (const auto& counts : fact_counts) {
      auto it = counts.find(key);
      if (it == counts.end()) {
        product = 0;
        break;
      }
      product *= it->second;
    }
    total += product;
  });
  return total;
}

std::vector<int64_t> JoinAnnotator::BatchCount(
    const std::vector<JoinQuery>& queries) const {
  util::ScopedSpan span("join_annotator.batch_count");
  span.Arg("queries", static_cast<double>(queries.size()));
  std::vector<int64_t> counts;
  counts.reserve(queries.size());
  for (const auto& q : queries) counts.push_back(Count(q));
  return counts;
}

std::vector<int64_t> JoinAnnotator::BatchCountParallel(
    const std::vector<JoinQuery>& queries,
    const util::ParallelConfig& config) const {
  // One accumulator charge for the whole batch, taken on the calling thread
  // so pool workers never touch the (non-atomic) accumulator.
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  util::ScopedSpan span("join_annotator.batch_count_parallel");
  span.Arg("queries", static_cast<double>(queries.size()));
  GetJoinAnnotatorMetrics().calls->Increment();
  WarmTableCaches(*schema_);

  std::vector<int64_t> counts(queries.size(), 0);
  // Join counting is expensive per query, so fan out per query rather than
  // by row range; a grain of 1 still bounds chunks at pool size + 1.
  size_t grain = std::max<size_t>(
      1, queries.size() / static_cast<size_t>(config.ResolvedThreads()));
  util::ThreadPool::Global().ParallelFor(
      0, queries.size(), grain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) counts[i] = CountImpl(queries[i]);
      });
  return counts;
}

}  // namespace warper::storage
