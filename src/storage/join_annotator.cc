#include "storage/join_annotator.h"

#include <optional>
#include <unordered_map>

#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace warper::storage {
namespace {

// rows_touched counts the rows every join pass actually visits (each active
// fact table once plus the center relation), the join-domain analogue of
// annotator.rows_scanned.
struct JoinAnnotatorMetrics {
  util::Counter* calls = util::Metrics().GetCounter("join_annotator.calls");
  util::Counter* queries = util::Metrics().GetCounter("join_annotator.queries");
  util::Counter* rows_touched =
      util::Metrics().GetCounter("join_annotator.rows_touched");
};

JoinAnnotatorMetrics& GetJoinAnnotatorMetrics() {
  static JoinAnnotatorMetrics* metrics = new JoinAnnotatorMetrics();
  return *metrics;
}

}  // namespace

size_t JoinQuery::NumJoins() const {
  size_t n = 0;
  for (uint32_t m = join_mask; m != 0; m >>= 1) n += m & 1;
  return n;
}

int64_t JoinAnnotator::Count(const JoinQuery& query) const {
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  GetJoinAnnotatorMetrics().calls->Increment();
  return CountImpl(query);
}

int64_t JoinAnnotator::CountImpl(const JoinQuery& query) const {
  const StarSchema& s = *schema_;
  WARPER_CHECK(s.center != nullptr);
  WARPER_CHECK(query.fact_preds.size() == s.facts.size());

  JoinAnnotatorMetrics& metrics = GetJoinAnnotatorMetrics();
  metrics.queries->Increment();
  uint64_t rows = s.center->NumRows();
  for (size_t f = 0; f < s.facts.size(); ++f) {
    if ((query.join_mask >> f) & 1) rows += s.facts[f].table->NumRows();
  }
  metrics.rows_touched->Increment(rows);

  // Per participating fact table: key → number of matching rows.
  std::vector<std::unordered_map<int64_t, int64_t>> fact_counts;
  std::vector<size_t> active;
  for (size_t f = 0; f < s.facts.size(); ++f) {
    if ((query.join_mask >> f) & 1) active.push_back(f);
  }
  fact_counts.resize(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    const StarSchema::Fact& fact = s.facts[active[i]];
    const RangePredicate& pred = query.fact_preds[active[i]];
    for (size_t r = 0; r < fact.table->NumRows(); ++r) {
      if (!pred.Matches(*fact.table, r)) continue;
      int64_t key = static_cast<int64_t>(fact.table->column(fact.fk_col).Value(r));
      ++fact_counts[i][key];
    }
  }

  int64_t total = 0;
  for (size_t r = 0; r < s.center->NumRows(); ++r) {
    if (!query.center_pred.Matches(*s.center, r)) continue;
    int64_t key = static_cast<int64_t>(s.center->column(s.center_pk_col).Value(r));
    int64_t product = 1;
    for (const auto& counts : fact_counts) {
      auto it = counts.find(key);
      if (it == counts.end()) {
        product = 0;
        break;
      }
      product *= it->second;
    }
    total += product;
  }
  return total;
}

std::vector<int64_t> JoinAnnotator::BatchCount(
    const std::vector<JoinQuery>& queries) const {
  util::ScopedSpan span("join_annotator.batch_count");
  span.Arg("queries", static_cast<double>(queries.size()));
  std::vector<int64_t> counts;
  counts.reserve(queries.size());
  for (const auto& q : queries) counts.push_back(Count(q));
  return counts;
}

std::vector<int64_t> JoinAnnotator::BatchCountParallel(
    const std::vector<JoinQuery>& queries,
    const util::ParallelConfig& config) const {
  // One accumulator charge for the whole batch, taken on the calling thread
  // so pool workers never touch the (non-atomic) accumulator.
  std::optional<util::ScopedCpuTimer> timer;
  if (cpu_ != nullptr) timer.emplace(cpu_);
  util::ScopedSpan span("join_annotator.batch_count_parallel");
  span.Arg("queries", static_cast<double>(queries.size()));
  GetJoinAnnotatorMetrics().calls->Increment();

  std::vector<int64_t> counts(queries.size(), 0);
  // Join counting is expensive per query, so fan out per query rather than
  // by row range; a grain of 1 still bounds chunks at pool size + 1.
  size_t grain = std::max<size_t>(
      1, queries.size() / static_cast<size_t>(config.ResolvedThreads()));
  util::ThreadPool::Global().ParallelFor(
      0, queries.size(), grain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) counts[i] = CountImpl(queries[i]);
      });
  return counts;
}

}  // namespace warper::storage
