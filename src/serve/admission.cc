#include "serve/admission.h"

#include "util/metrics.h"

namespace warper::serve {
namespace {

struct AdmissionMetrics {
  util::Counter* shed = util::Metrics().GetCounter("serve.shed");
  util::Counter* expired = util::Metrics().GetCounter("serve.expired");
  util::Gauge* queue_depth = util::Metrics().GetGauge("serve.queue_depth");
};

AdmissionMetrics& GetAdmissionMetrics() {
  static AdmissionMetrics* metrics = new AdmissionMetrics();
  return *metrics;
}

}  // namespace

AdmissionController::AdmissionController(const core::ServeConfig& config)
    : config_(config) {}

AdmissionController::Decision AdmissionController::Admit(size_t depth) const {
  if (depth < config_.queue_capacity) return Decision::kAdmit;
  return config_.overflow == core::ServeConfig::Overflow::kShed
             ? Decision::kShed
             : Decision::kWait;
}

AdmissionController::Clock::time_point AdmissionController::DeadlineFor(
    int64_t deadline_us) const {
  if (deadline_us <= 0) deadline_us = config_.default_deadline_us;
  if (deadline_us <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::microseconds(deadline_us);
}

Status AdmissionController::Shed() {
  GetAdmissionMetrics().shed->Increment();
  return Status::Unavailable("serving queue full (" +
                             std::to_string(config_.queue_capacity) +
                             " requests); request shed");
}

Status AdmissionController::Expire() {
  GetAdmissionMetrics().expired->Increment();
  return Status::DeadlineExceeded("request deadline elapsed before serving");
}

void AdmissionController::RecordDepth(size_t depth) {
  GetAdmissionMetrics().queue_depth->Set(static_cast<double>(depth));
}

}  // namespace warper::serve
