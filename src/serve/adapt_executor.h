// The shared background-adaptation executor: one prioritized work queue and
// a small worker set multiplexing the adaptation passes of EVERY tenant in
// a ServingFleet — replacing the one-adaptation-thread-per-server model,
// which cannot scale to 32+ tenants.
//
// Scheduling: a pending pass's base priority follows the ROADMAP formula
// "drift severity × traffic",
//
//   severity  = max(drift_severity, offender_pressure)
//   base      = (floor + drift_weight · severity) · (1 + traffic_weight · traffic)
//   effective = base + aging_rate · seconds_waiting
//
// with the priority signals re-probed at every pick so a tenant whose drift
// worsened while queued moves up without resubmission. The additive aging
// term makes the schedule starvation-free: any bounded base priority is
// eventually overtaken by a tenant that has waited long enough (ServeConfig
// knobs adapt_priority_*, adapt_aging_rate).
//
// Per-tenant serialization: at most one pass per tenant runs at a time, no
// matter how many workers the executor has — a second submission for the
// same tenant stays queued until the first completes. EstimationServer's
// publish path (next_version_, module capture) depends on this guarantee;
// cross-tenant passes run concurrently.
//
// The executor is deliberately generic — it runs closures, not servers —
// so the scheduler is testable without standing up 32 Warpers.
#ifndef WARPER_SERVE_ADAPT_EXECUTOR_H_
#define WARPER_SERVE_ADAPT_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/warper.h"
#include "util/mutex.h"
#include "util/status.h"

namespace warper::serve {

// What one background adaptation pass did to the serving state. Defined
// here (not in server.h) because it is the currency both sides trade in:
// EstimationServer::Adapt produces it, the executor's queue carries it.
struct AdaptationOutcome {
  core::Warper::InvocationResult result;
  // Gate evidence: model quality before / after the pass, on the fixed eval
  // set when one is installed, else on the invocation's recent labeled
  // window (zeros when neither had labels — the gate passes vacuously).
  double gate_before = 0.0;
  double gate_after = 0.0;
  bool published = false;
  bool rolled_back = false;
  // The serving version AFTER the pass. Only meaningful post-publish: it
  // advances exactly when `published` is true. On rollback (and on a pass
  // that neither published nor rolled back) it still reports the version
  // that was ALREADY serving — i.e. it stays unchanged, it does not name
  // the rejected model. Tested by AdaptationOutcomeVersionContract in
  // tests/serve/fleet_test.cc.
  uint64_t version = 0;
};

// What a tenant's pending adaptation is worth right now. Probed under the
// executor's lock at every scheduling decision, so probe callbacks MUST be
// wait-free (read atomics; never take a lock).
struct PrioritySignals {
  // Last observed drift severity (DriftDetector::Severity; ≥ 0).
  double drift_severity = 0.0;
  // Traffic since the tenant's last adaptation pass (request count; ≥ 0).
  double traffic = 0.0;
  // Per-template offender pressure: the tenant's unhealthy traffic share
  // (TemplateTracker::UnhealthyShare, ∈ [0, 1]). The drift term of
  // BasePriority uses max(drift_severity, offender_pressure), so a tenant
  // whose global δ_m looks calm still ranks up when a localized template
  // is failing — and a tenant whose templates are all healthy is not
  // boosted above its global severity.
  double offender_pressure = 0.0;
};

class AdaptationExecutor {
 public:
  using Clock = std::chrono::steady_clock;
  using Task = std::function<Result<AdaptationOutcome>()>;
  using Probe = std::function<PrioritySignals()>;

  // Scheduling weights and worker count come from `config`
  // (adapt_threads, adapt_priority_*, adapt_aging_rate).
  explicit AdaptationExecutor(const core::ServeConfig& config);
  ~AdaptationExecutor();

  AdaptationExecutor(const AdaptationExecutor&) = delete;
  AdaptationExecutor& operator=(const AdaptationExecutor&) = delete;

  // Spawns the worker threads. FailedPrecondition on double Start or after
  // Stop().
  Status Start();
  // Joins the workers after they finish in-flight passes; still-queued
  // submissions are answered Unavailable. Idempotent. Callers must stop the
  // executor BEFORE stopping/destroying the servers its tasks touch.
  void Stop();
  bool running() const;

  // Enqueues one adaptation pass for `tenant_id`. `probe` supplies the
  // tenant's current priority signals (wait-free; called at every
  // scheduling decision); `task` runs the pass on a worker thread. The
  // future resolves with the task's outcome, or Unavailable when the
  // executor stops first. FailedPrecondition when not running.
  std::future<Result<AdaptationOutcome>> Submit(uint64_t tenant_id,
                                                Probe probe, Task task);

  // The scheduling formula, exposed for tests and for DESIGN.md to cite.
  static double BasePriority(const PrioritySignals& signals,
                             const core::ServeConfig& config);
  static double EffectivePriority(double base, double age_seconds,
                                  const core::ServeConfig& config);

  // Pending (not yet running) submissions.
  size_t PendingCount() const;

 private:
  struct PendingPass {
    uint64_t tenant_id = 0;
    Probe probe;
    Task task;
    std::promise<Result<AdaptationOutcome>> promise;
    Clock::time_point submitted;
  };

  void WorkerLoop();
  // Picks the highest-effective-priority pending pass whose tenant has no
  // pass in flight; false when none is eligible. The queue is scanned
  // linearly: it holds at most a handful of passes per tenant, and a scan
  // re-probes every tenant's live signals — a heap keyed on stale
  // priorities would starve exactly the tenants whose drift just worsened.
  bool PickNext(Clock::time_point now, size_t* index) WARPER_REQUIRES(mu_);

  core::ServeConfig config_;

  mutable util::Mutex mu_;
  util::CondVar work_ready_;
  std::deque<PendingPass> queue_ WARPER_GUARDED_BY(mu_);
  // Tenants with a pass currently running on some worker.
  std::vector<uint64_t> running_tenants_ WARPER_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_ADAPT_EXECUTOR_H_
