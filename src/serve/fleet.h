// The multi-tenant serving fleet: N per-tenant EstimationServer shards
// behind a tenant/predicate router, sharing one dispatch ThreadPool and ONE
// prioritized background-adaptation executor — so a 32-tenant deployment
// runs on O(cores) threads instead of O(tenants) (per-tenant dispatcher +
// adaptation threads do not scale past a few tenants on one box).
//
// What the fleet adds over a loose collection of servers:
//   - Routing: EstimateRequest::tenant_id → shard via ShardRouter (exact),
//     or predicate-hash routing (EstimateHashed) for callers that partition
//     one logical workload without explicit tenant ids.
//   - Shared adaptation: every tenant's SubmitInvocation lands on one
//     AdaptationExecutor, scheduled by drift severity × traffic with aging
//     (starvation-free); at most one pass per tenant in flight.
//   - Isolation: each tenant gets its own micro-batcher queue
//     (tenant_queue_depth) plus an optional shed budget — a saturated
//     tenant is refused (Unavailable) before it can park caller threads or
//     consume fleet-wide headroom; EstimateRequest::priority > 0 bypasses
//     the budget.
//   - Fleet epoch: one atomic bumped on EVERY tenant's publish. Readers of
//     any tenant keep serving lock-free from their own SnapshotStore while
//     another tenant hot-swaps — the epoch is how cross-tenant observers
//     (benchmarks, cache invalidation) notice "something swapped" without
//     polling N stores.
//
// Lifecycle: AddTenant/SetEvalSet (setup phase, single-threaded) → Start()
// → concurrent Estimate/EstimateAsync/SubmitInvocation from any thread →
// Stop() (executor first, so no adaptation pass touches a stopping server).
#ifndef WARPER_SERVE_FLEET_H_
#define WARPER_SERVE_FLEET_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/warper.h"
#include "serve/adapt_executor.h"
#include "serve/request.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::serve {

class ServingFleet {
 public:
  // `config` is the fleet-wide ServeConfig; each tenant serves with a
  // per-tenant derivation (queue_capacity = tenant_queue_depth). Dispatch
  // runs on `dispatch_pool` (must outlive the fleet), or on
  // util::ThreadPool::Global() when null.
  explicit ServingFleet(const core::ServeConfig& config,
                        util::ThreadPool* dispatch_pool = nullptr);
  ~ServingFleet();

  ServingFleet(const ServingFleet&) = delete;
  ServingFleet& operator=(const ServingFleet&) = delete;

  // Registers a tenant before Start(). `warper` must be Initialize()d and
  // outlive the fleet; `tenant_id` must be unique. Setup phase only (not
  // thread-safe).
  Status AddTenant(uint64_t tenant_id, core::Warper* warper);
  // Installs a tenant's publish-gate eval set (see
  // EstimationServer::SetEvalSet). Before Start() only.
  Status SetEvalSet(uint64_t tenant_id,
                    std::vector<ce::LabeledExample> eval_set);

  // Validates the fleet config, freezes the router, starts the shared
  // executor and every tenant's server. InvalidArgument for a bad config,
  // FailedPrecondition with zero tenants / double Start.
  Status Start();
  // Stops the shared executor FIRST (joining in-flight adaptation passes),
  // then every tenant's server. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Serves `request` on the shard owning request.tenant_id. NotFound for an
  // unregistered tenant; Unavailable when the tenant is over its shed
  // budget (priority > 0 bypasses); FailedPrecondition when not running.
  Result<EstimateResponse> Estimate(const EstimateRequest& request);
  std::future<Result<EstimateResponse>> EstimateAsync(EstimateRequest request);
  // Predicate-hash routing: ignores request.tenant_id and routes by FNV-1a
  // over the features (ShardRouter::ShardForFeatures). The response's
  // tenant_id reports the shard that actually served it.
  Result<EstimateResponse> EstimateHashed(const EstimateRequest& request);

  // Hands `invocation` to the shared executor as tenant `tenant_id`'s next
  // adaptation pass, prioritized by that tenant's live drift severity ×
  // traffic signals.
  std::future<Result<AdaptationOutcome>> SubmitInvocation(
      uint64_t tenant_id, core::Warper::Invocation invocation);

  // Feeds one executed query's true cardinality back to the tenant's
  // template tracker (EstimationServer::ReportObservation). NotFound for an
  // unregistered tenant.
  Status ReportObservation(uint64_t tenant_id,
                           const std::vector<double>& features, double actual);
  // The tenant's k worst templates by EWMA error — the per-tenant offender
  // view the shared executor's priority probes key off. NotFound (empty
  // result unavailable via Status) for an unregistered tenant.
  Result<std::vector<core::TemplateTracker::Offender>> TenantTopOffenders(
      uint64_t tenant_id, size_t k);

  // Fleet-wide snapshot epoch: total publishes across all tenants since
  // Start. One relaxed-atomic read; never blocks a publisher or reader.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  size_t NumTenants() const { return tenants_.size(); }
  // The tenant's server, for inspection (version, store, signals); null for
  // unregistered ids.
  EstimationServer* tenant(uint64_t tenant_id);
  const ShardRouter& router() const { return router_; }
  AdaptationExecutor* executor() { return &executor_; }

 private:
  struct TenantEntry {
    uint64_t id = 0;
    core::ServeConfig config;  // per-tenant derivation of the fleet config
    std::unique_ptr<EstimationServer> server;
    util::Counter* requests = nullptr;  // serve.tenant.requests.<id>
    util::Counter* shed = nullptr;      // serve.tenant.shed.<id>
  };

  // Routing + shed-budget admission; the entry to delegate to, or the
  // refusal status.
  Result<TenantEntry*> Admit(const EstimateRequest& request);

  core::ServeConfig config_;
  util::ThreadPool* dispatch_pool_;
  AdaptationExecutor executor_;
  ShardRouter router_;
  std::atomic<uint64_t> epoch_{0};
  // Indexed by shard (router maps tenant i → shard i in registration
  // order). Mutated only during setup; immutable once running_ is
  // published, so the serving hot path reads it lock-free.
  std::vector<std::unique_ptr<TenantEntry>> tenants_;

  // Published by Start() (release) after the table above is final; the hot
  // path gates on it (acquire) instead of taking a lock.
  std::atomic<bool> running_{false};
  mutable util::Mutex mu_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_FLEET_H_
