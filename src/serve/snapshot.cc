#include "serve/snapshot.h"

#include "util/metrics.h"
#include "util/trace.h"

namespace warper::serve {

void SnapshotStore::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  WARPER_SPAN("serve.swap");
  static util::Counter* swaps = util::Metrics().GetCounter("serve.swaps");
  static util::Gauge* version = util::Metrics().GetGauge("serve.version");
  version->Set(static_cast<double>(snapshot->version()));
  current_.store(std::move(snapshot), std::memory_order_release);
  swaps->Increment();
}

uint64_t SnapshotStore::CurrentVersion() const {
  std::shared_ptr<const ModelSnapshot> snap = Current();
  return snap == nullptr ? 0 : snap->version();
}

}  // namespace warper::serve

#if defined(__SANITIZE_THREAD__)
// Suppress the known false positive inside libstdc++'s atomic<shared_ptr>:
// _Sp_atomic::load() releases its internal lock bit with a relaxed
// fetch_sub, so TSan never sees the reader->writer happens-before edge the
// lock-word CAS order provides on hardware, and flags the guarded pointer
// accesses in load()/swap() as a race. The suppression is scoped to the
// _Sp_atomic frames — every access in our own code stays checked. tsan.supp
// at the repo root carries the same pattern for runs where this hook is not
// picked up (shared libtsan without dynamic symbol export); ctest injects
// it via TSAN_OPTIONS on thread-sanitized builds.
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::_Sp_atomic\n";
}
#endif
