#include "serve/router.h"

#include <algorithm>
#include <cstring>

namespace warper::serve {

Status ShardRouter::AddTenant(uint64_t tenant_id, size_t shard) {
  if (frozen_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ShardRouter::AddTenant: router is frozen");
  }
  if (map_.count(tenant_id) != 0) {
    return Status::InvalidArgument("tenant " + std::to_string(tenant_id) +
                                   " is already registered");
  }
  map_.emplace(tenant_id, shard);
  num_shards_ = std::max(num_shards_, shard + 1);
  return Status::OK();
}

void ShardRouter::Freeze() { frozen_.store(true, std::memory_order_release); }

Result<size_t> ShardRouter::ShardFor(uint64_t tenant_id) const {
  if (!frozen_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ShardRouter: lookups require Freeze() first");
  }
  auto it = map_.find(tenant_id);
  if (it == map_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " is not registered");
  }
  return it->second;
}

Result<size_t> ShardRouter::ShardForFeatures(
    const std::vector<double>& features) const {
  if (!frozen_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ShardRouter: lookups require Freeze() first");
  }
  if (num_shards_ == 0) {
    return Status::FailedPrecondition("ShardRouter has no shards");
  }
  // FNV-1a over the raw predicate encoding: cheap, deterministic across
  // runs, and spreads adjacent predicates (which differ in a few bytes)
  // across shards.
  uint64_t hash = 1469598103934665603ULL;
  for (double value : features) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &value, sizeof(double));
    for (unsigned char b : bytes) {
      hash ^= b;
      hash *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(hash % num_shards_);
}

}  // namespace warper::serve
