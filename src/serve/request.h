// The serving request/response surface.
//
// One struct in, one struct out: every estimate — single-tenant
// EstimationServer or multi-tenant ServingFleet, blocking or async — takes
// an EstimateRequest and yields an EstimateResponse. The struct form exists
// so the surface can grow (tenant routing, deadlines, priorities, and
// whatever comes next) without another positional-parameter migration; the
// old Estimate(features, deadline_us) pair survives only as deprecated
// shims over this API.
#ifndef WARPER_SERVE_REQUEST_H_
#define WARPER_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warper::serve {

struct EstimateRequest {
  // Which estimator answers: a ServingFleet routes on it; a standalone
  // EstimationServer ignores it (and echoes it back in the response).
  uint64_t tenant_id = 0;
  // The featurized predicate, in the tenant domain's featurization width.
  std::vector<double> features;
  // Answer-by deadline in µs from submission; 0 falls back to the
  // ServeConfig default (whose 0 means no deadline). A request still queued
  // past its deadline is answered DeadlineExceeded.
  int64_t deadline_us = 0;
  // Admission hint: requests with priority > 0 bypass the fleet's
  // per-tenant shed budget (ServeConfig::tenant_shed_budget) — they are
  // still bounded by the tenant's queue capacity. 0 is the normal lane.
  int32_t priority = 0;
};

struct EstimateResponse {
  // Estimated cardinality.
  double estimate = 0.0;
  // The snapshot version that computed it — consecutive responses with the
  // same (tenant_id, version) came from bit-identical weights.
  uint64_t version = 0;
  // Echo of the request's tenant_id (the tenant that actually served it).
  uint64_t tenant_id = 0;
};

// Per-tenant metric instance name: family "serve.tenant.<what>" plus the
// tenant id, e.g. TenantMetricName("serve.tenant.rollbacks", 7) ==
// "serve.tenant.rollbacks.7". tools/lint_invariants.py recognizes the
// family literal at TenantMetricName call sites, so families stay subject
// to the bidirectional metric-name check even though the full instance
// names are dynamic.
inline std::string TenantMetricName(const char* family, uint64_t tenant_id) {
  return std::string(family) + "." + std::to_string(tenant_id);
}

}  // namespace warper::serve

#endif  // WARPER_SERVE_REQUEST_H_
