// The micro-batcher: concurrent Estimate() callers enqueue featurized
// predicates into a bounded MPSC queue; a dispatcher thread coalesces up to
// `batch_max` of them (waiting at most `batch_timeout_us` after the first)
// into ONE EstimateTargets matrix pass over the current snapshot — turning
// the SIMD GEMM into real serving throughput instead of per-query GEMV.
//
// Determinism: a batched pass computes each row with exactly the per-row
// operations of a 1-row pass, so under ParallelConfig::deterministic = true
// batched and unbatched estimates are bit-identical.
#ifndef WARPER_SERVE_BATCHER_H_
#define WARPER_SERVE_BATCHER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/config.h"
#include "serve/admission.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"

namespace warper::serve {

class MicroBatcher {
 public:
  // `store` must outlive the batcher and have a snapshot published before
  // requests are served. `feature_dim` is the domain's featurization width;
  // requests of any other width are refused before they can poison a batch.
  MicroBatcher(const core::ServeConfig& config, const SnapshotStore* store,
               size_t feature_dim);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Starts the dispatcher thread. Requests enqueued beforehand (EstimateAsync)
  // are served as soon as it runs. FailedPrecondition on a double Start or
  // after Stop().
  Status Start();
  // Stops the dispatcher after it drains the queue; idempotent.
  void Stop();
  bool running() const;

  // Blocking: estimated cardinality for one featurized predicate.
  //
  // With batch_max == 1 this is the lock-free fast path: the estimate is
  // computed inline on the caller's thread against the current snapshot —
  // no queue, no dispatcher, no lock shared with Publish(). With
  // batch_max > 1 the request rides the queue (admission control and
  // deadlines apply) and resolves when its batch completes.
  Result<double> Estimate(std::vector<double> features,
                          int64_t deadline_us = 0);

  // Pipelining variant: enqueues and returns immediately; the future
  // resolves when the request's batch completes (or it is shed / expires).
  // Always takes the queue path so callers can keep many requests in
  // flight; requires a running dispatcher to make progress.
  std::future<Result<double>> EstimateAsync(std::vector<double> features,
                                            int64_t deadline_us = 0);

  // The unbatched reference path: one snapshot load + one 1-row matrix pass
  // on the calling thread. Lock-free with respect to Publish(); safe from
  // any thread at any time after the first snapshot is published.
  Result<double> EstimateDirect(const std::vector<double>& features) const;

 private:
  struct Pending {
    std::vector<double> features;
    AdmissionController::Clock::time_point deadline;
    AdmissionController::Clock::time_point enqueued;
    std::promise<Result<double>> promise;
  };

  // Admission + enqueue; returns the future, or a terminal status when the
  // request was shed / expired / refused. `block_until_admitted` is false
  // for EstimateAsync (a pipelining caller must not be parked by kBlock —
  // it is told Unavailable instead).
  Result<std::future<Result<double>>> Enqueue(std::vector<double> features,
                                              int64_t deadline_us,
                                              bool block_until_admitted);

  void DispatchLoop();
  // Answers every request of `batch`: expired ones with DeadlineExceeded,
  // the rest from one EstimateTargets pass.
  void ServeBatch(std::vector<Pending>* batch);

  core::ServeConfig config_;
  const SnapshotStore* store_;
  size_t feature_dim_;
  AdmissionController admission_;

  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<Pending> queue_ WARPER_GUARDED_BY(mu_);
  std::thread dispatcher_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;

  // qps gauge upkeep (dispatcher thread only).
  uint64_t window_served_ = 0;
  AdmissionController::Clock::time_point window_start_{};
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_BATCHER_H_
