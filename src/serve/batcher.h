// The micro-batcher: concurrent Estimate() callers enqueue featurized
// predicates into a bounded MPSC queue; a dispatcher coalesces up to
// `batch_max` of them into ONE EstimateTargets matrix pass over the current
// snapshot — turning the SIMD GEMM into real serving throughput instead of
// per-query GEMV.
//
// The dispatcher runs in one of two modes:
//   - Start(): a dedicated dispatcher thread per batcher (the single-tenant
//     model). After the first request of a batch it waits up to
//     `batch_timeout_us` for stragglers before running a partial batch.
//   - StartOnPool(pool): no owned thread — ready batches are drained by
//     tasks on the shared util::ThreadPool. This is how a ServingFleet runs
//     32+ tenants without 32+ dispatcher threads. Pool mode is
//     work-conserving: it never waits for stragglers (coalescing happens
//     naturally under load), and a drain task hands the worker back after a
//     few batches so sibling tenants get their turn.
//
// Determinism: a batched pass computes each row with exactly the per-row
// operations of a 1-row pass, so under ParallelConfig::deterministic = true
// batched and unbatched estimates are bit-identical.
#ifndef WARPER_SERVE_BATCHER_H_
#define WARPER_SERVE_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/config.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::serve {

class MicroBatcher {
 public:
  // `store` must outlive the batcher and have a snapshot published before
  // requests are served. `feature_dim` is the domain's featurization width;
  // requests of any other width are refused before they can poison a batch.
  MicroBatcher(const core::ServeConfig& config, const SnapshotStore* store,
               size_t feature_dim);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Starts the dedicated dispatcher thread. Requests enqueued beforehand
  // (EstimateAsync) are served as soon as it runs. FailedPrecondition on a
  // double Start or after Stop().
  Status Start();
  // Pool mode: dispatch runs as drain tasks on `pool` (which must outlive
  // the batcher) instead of an owned thread. Same preconditions as Start().
  Status StartOnPool(util::ThreadPool* pool);
  // Stops dispatch; in thread mode the dispatcher drains the queue first,
  // in pool mode still-queued requests are answered Unavailable. Idempotent.
  void Stop();
  bool running() const;

  // Blocking: the estimate for one featurized predicate.
  //
  // With batch_max == 1 this is the lock-free fast path: the estimate is
  // computed inline on the caller's thread against the current snapshot —
  // no queue, no dispatcher, no lock shared with Publish(). With
  // batch_max > 1 the request rides the queue (admission control and
  // deadlines apply) and resolves when its batch completes.
  Result<EstimateResponse> Estimate(const EstimateRequest& request);

  // Pipelining variant: enqueues and returns immediately; the future
  // resolves when the request's batch completes (or it is shed / expires).
  // Always takes the queue path so callers can keep many requests in
  // flight; requires a running dispatcher to make progress.
  std::future<Result<EstimateResponse>> EstimateAsync(EstimateRequest request);

  // The unbatched reference path: one snapshot load + one 1-row matrix pass
  // on the calling thread. Lock-free with respect to Publish(); safe from
  // any thread at any time after the first snapshot is published.
  WARPER_HOT_PATH Result<EstimateResponse> EstimateDirect(
      const EstimateRequest& request) const;

  // --- Deprecated positional shims (pre-fleet API). ---
  [[deprecated("use Estimate(const EstimateRequest&)")]]
  Result<double> Estimate(std::vector<double> features,
                          int64_t deadline_us = 0);
  [[deprecated("use EstimateAsync(EstimateRequest)")]]
  std::future<Result<double>> EstimateAsync(std::vector<double> features,
                                            int64_t deadline_us = 0);
  [[deprecated("use EstimateDirect(const EstimateRequest&)")]]
  Result<double> EstimateDirect(const std::vector<double>& features) const;

  // Requests answered with an estimate since construction (all paths).
  // The serving fleet reads this as the executor's traffic signal.
  uint64_t served_total() const {
    return served_total_.load(std::memory_order_relaxed);
  }

  // Instantaneous queued depth — the fleet's per-tenant shed budget checks
  // it before enqueueing. Advisory: the depth can change before the caller
  // acts on it.
  size_t ApproxQueueDepth() const;

 private:
  struct Pending {
    EstimateRequest request;
    AdmissionController::Clock::time_point deadline;
    AdmissionController::Clock::time_point enqueued;
    std::promise<Result<EstimateResponse>> promise;
  };

  // Admission + enqueue; returns the future, or a terminal status when the
  // request was shed / expired / refused. `block_until_admitted` is false
  // for EstimateAsync (a pipelining caller must not be parked by kBlock —
  // it is told Unavailable instead).
  WARPER_BLOCKING Result<std::future<Result<EstimateResponse>>> Enqueue(
      EstimateRequest request, bool block_until_admitted);

  void DispatchLoop();
  // Pool mode: drain up to kDrainRoundsPerTask batches, then either clear
  // the scheduled flag (queue empty / stopping) or resubmit itself.
  void DrainOnPool();
  // Pops up to batch_max requests into *batch; returns whether any were
  // popped. Updates the queue-depth gauge.
  bool PopBatch(std::vector<Pending>* batch) WARPER_REQUIRES(mu_);
  // Answers every request of `batch`: expired ones with DeadlineExceeded,
  // the rest from one EstimateTargets pass.
  void ServeBatch(std::vector<Pending>* batch);

  core::ServeConfig config_;
  const SnapshotStore* store_;
  size_t feature_dim_;
  AdmissionController admission_;
  util::ThreadPool* pool_ = nullptr;  // set by StartOnPool, else null

  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  // Pool mode: signaled when a drain task clears drain_scheduled_, so
  // Stop() can wait out an in-flight task before orphaning the queue.
  util::CondVar drain_idle_;
  std::deque<Pending> queue_ WARPER_GUARDED_BY(mu_);
  std::thread dispatcher_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;
  // Pool mode: true while a drain task is queued or running, so at most one
  // exists per batcher at any time.
  bool drain_scheduled_ WARPER_GUARDED_BY(mu_) = false;

  // mutable: EstimateDirect is logically const (reads the snapshot) but
  // still counts as served traffic.
  mutable std::atomic<uint64_t> served_total_{0};

  // qps gauge upkeep (dispatch path only; pool mode guards it with mu_-free
  // single-drainer discipline: one drain task exists at a time).
  uint64_t window_served_ = 0;
  AdmissionController::Clock::time_point window_start_{};
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_BATCHER_H_
