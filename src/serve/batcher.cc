#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "nn/matrix.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace warper::serve {
namespace {

struct BatcherMetrics {
  util::Counter* requests = util::Metrics().GetCounter("serve.requests");
  util::Counter* batches = util::Metrics().GetCounter("serve.batches");
  util::Gauge* qps = util::Metrics().GetGauge("serve.qps");
  util::Histogram* batch_size = util::Metrics().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  util::Histogram* latency_us = util::Metrics().GetHistogram(
      "serve.latency_us",
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000, 200000});
};

BatcherMetrics& GetBatcherMetrics() {
  static BatcherMetrics* metrics = new BatcherMetrics();
  return *metrics;
}

}  // namespace

MicroBatcher::MicroBatcher(const core::ServeConfig& config,
                           const SnapshotStore* store, size_t feature_dim)
    : config_(config),
      store_(store),
      feature_dim_(feature_dim),
      admission_(config) {
  WARPER_CHECK(store != nullptr && feature_dim > 0);
}

MicroBatcher::~MicroBatcher() { Stop(); }

Status MicroBatcher::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "MicroBatcher::Start: already started or stopped");
  }
  started_ = true;
  window_start_ = AdmissionController::Clock::now();
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void MicroBatcher::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  // No dispatcher will ever run again: answer anything still queued (only
  // possible when Stop() came before Start()).
  std::deque<Pending> orphans;
  {
    util::MutexLock lk(&mu_);
    orphans.swap(queue_);
  }
  for (Pending& p : orphans) {
    p.promise.set_value(
        Status::Unavailable("serving stopped before the request ran"));
  }
}

bool MicroBatcher::running() const {
  util::MutexLock lk(&mu_);
  return started_ && !stop_;
}

Result<double> MicroBatcher::EstimateDirect(
    const std::vector<double>& features) const {
  if (features.size() != feature_dim_) {
    return Status::InvalidArgument(
        "Estimate: got " + std::to_string(features.size()) +
        " features; domain expects " + std::to_string(feature_dim_));
  }
  std::shared_ptr<const ModelSnapshot> snap = store_->Current();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no model snapshot published yet");
  }
  GetBatcherMetrics().requests->Increment();
  nn::Matrix x(1, features.size());
  x.SetRow(0, features);
  std::vector<double> targets = snap->model().EstimateTargets(x);
  return ce::TargetToCard(targets[0]);
}

Result<double> MicroBatcher::Estimate(std::vector<double> features,
                                      int64_t deadline_us) {
  if (config_.batch_max == 1) return EstimateDirect(features);
  Result<std::future<Result<double>>> enqueued =
      Enqueue(std::move(features), deadline_us, /*block_until_admitted=*/true);
  if (!enqueued.ok()) return enqueued.status();
  return enqueued.ValueOrDie().get();
}

std::future<Result<double>> MicroBatcher::EstimateAsync(
    std::vector<double> features, int64_t deadline_us) {
  Result<std::future<Result<double>>> enqueued = Enqueue(
      std::move(features), deadline_us, /*block_until_admitted=*/false);
  if (enqueued.ok()) return enqueued.MoveValueOrDie();
  std::promise<Result<double>> failed;
  failed.set_value(enqueued.status());
  return failed.get_future();
}

Result<std::future<Result<double>>> MicroBatcher::Enqueue(
    std::vector<double> features, int64_t deadline_us,
    bool block_until_admitted) {
  if (features.size() != feature_dim_) {
    return Status::InvalidArgument(
        "Estimate: got " + std::to_string(features.size()) +
        " features; domain expects " + std::to_string(feature_dim_));
  }
  AdmissionController::Clock::time_point deadline =
      admission_.DeadlineFor(deadline_us);
  std::future<Result<double>> future;
  size_t depth = 0;
  {
    util::MutexLock lk(&mu_);
    while (true) {
      if (stop_) {
        return Status::FailedPrecondition("MicroBatcher is stopped");
      }
      AdmissionController::Decision decision = admission_.Admit(queue_.size());
      if (decision == AdmissionController::Decision::kAdmit) break;
      if (decision == AdmissionController::Decision::kShed ||
          !block_until_admitted) {
        return admission_.Shed();
      }
      // kBlock: wait for the dispatcher to drain, bounded by the deadline.
      if (deadline == AdmissionController::Clock::time_point::max()) {
        not_full_.Wait(&mu_);
      } else if (not_full_.WaitUntil(&mu_, deadline) ==
                 std::cv_status::timeout) {
        return admission_.Expire();
      }
    }
    Pending pending;
    pending.features = std::move(features);
    pending.deadline = deadline;
    pending.enqueued = AdmissionController::Clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    depth = queue_.size();
    admission_.RecordDepth(depth);
  }
  // The dispatcher only has something new to act on when the queue went
  // non-empty or a full batch just completed; signaling every enqueue would
  // pay a wakeup syscall per request at exactly the throughput-bound depths.
  if (depth == 1 || depth % config_.batch_max == 0) not_empty_.NotifyOne();
  return future;
}

void MicroBatcher::DispatchLoop() {
  std::vector<Pending> batch;
  while (true) {
    {
      util::MutexLock lk(&mu_);
      while (!stop_ && queue_.empty()) not_empty_.Wait(&mu_);
      if (queue_.empty()) break;  // stop_ with a drained queue
      // Coalesce: after the first request, give stragglers a short window
      // to fill the batch (skipped once it is already full or stopping).
      if (queue_.size() < config_.batch_max && config_.batch_timeout_us > 0 &&
          !stop_) {
        AdmissionController::Clock::time_point straggler_deadline =
            AdmissionController::Clock::now() +
            std::chrono::microseconds(config_.batch_timeout_us);
        while (!stop_ && queue_.size() < config_.batch_max &&
               not_empty_.WaitUntil(&mu_, straggler_deadline) !=
                   std::cv_status::timeout) {
        }
      }
      size_t n = std::min<size_t>(queue_.size(), config_.batch_max);
      batch.clear();
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      admission_.RecordDepth(queue_.size());
    }
    not_full_.NotifyAll();
    ServeBatch(&batch);
  }
}

void MicroBatcher::ServeBatch(std::vector<Pending>* batch) {
  WARPER_SPAN("serve.batch");
  BatcherMetrics& m = GetBatcherMetrics();
  AdmissionController::Clock::time_point now =
      AdmissionController::Clock::now();
  std::vector<size_t> live;
  live.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    if (AdmissionController::Expired((*batch)[i].deadline, now)) {
      (*batch)[i].promise.set_value(admission_.Expire());
    } else {
      live.push_back(i);
    }
  }
  if (!live.empty()) {
    std::shared_ptr<const ModelSnapshot> snap = store_->Current();
    if (snap == nullptr) {
      for (size_t i : live) {
        (*batch)[i].promise.set_value(
            Status::FailedPrecondition("no model snapshot published yet"));
      }
      return;
    }
    nn::Matrix x(live.size(), feature_dim_);
    for (size_t k = 0; k < live.size(); ++k) {
      x.SetRow(k, (*batch)[live[k]].features);
    }
    std::vector<double> targets = snap->model().EstimateTargets(x);
    AdmissionController::Clock::time_point done =
        AdmissionController::Clock::now();
    for (size_t k = 0; k < live.size(); ++k) {
      Pending& p = (*batch)[live[k]];
      m.latency_us->Observe(
          std::chrono::duration<double, std::micro>(done - p.enqueued)
              .count());
      p.promise.set_value(ce::TargetToCard(targets[k]));
    }
    m.requests->Increment(live.size());
    m.batch_size->Observe(static_cast<double>(live.size()));
  }
  m.batches->Increment();

  // serve.qps: served requests over a sliding ~half-second window.
  window_served_ += live.size();
  double elapsed = std::chrono::duration<double>(
                       AdmissionController::Clock::now() - window_start_)
                       .count();
  if (elapsed >= 0.5) {
    m.qps->Set(static_cast<double>(window_served_) / elapsed);
    window_served_ = 0;
    window_start_ = AdmissionController::Clock::now();
  }
}

}  // namespace warper::serve
