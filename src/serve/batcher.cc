#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "nn/matrix.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace warper::serve {
namespace {

// Pool mode: batches one drain task serves before handing its worker back
// (and resubmitting itself if the queue is still non-empty) — keeps a hot
// tenant from pinning a shared worker while siblings wait for a slot.
constexpr int kDrainRoundsPerTask = 4;

struct BatcherMetrics {
  util::Counter* requests = util::Metrics().GetCounter("serve.requests");
  util::Counter* batches = util::Metrics().GetCounter("serve.batches");
  util::Gauge* qps = util::Metrics().GetGauge("serve.qps");
  util::Histogram* batch_size = util::Metrics().GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  util::Histogram* latency_us = util::Metrics().GetHistogram(
      "serve.latency_us",
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000, 200000});
};

BatcherMetrics& GetBatcherMetrics() {
  WARPER_ANALYZER_SUPPRESS("hot-path-purity",
                           "function-static handle cache: the allocation and "
                           "registry locks run once, on the first call #10");
  static BatcherMetrics* metrics = new BatcherMetrics();
  return *metrics;
}

}  // namespace

MicroBatcher::MicroBatcher(const core::ServeConfig& config,
                           const SnapshotStore* store, size_t feature_dim)
    : config_(config),
      store_(store),
      feature_dim_(feature_dim),
      admission_(config) {
  WARPER_CHECK(store != nullptr && feature_dim > 0);
}

MicroBatcher::~MicroBatcher() { Stop(); }

Status MicroBatcher::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "MicroBatcher::Start: already started or stopped");
  }
  started_ = true;
  window_start_ = AdmissionController::Clock::now();
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

Status MicroBatcher::StartOnPool(util::ThreadPool* pool) {
  WARPER_CHECK(pool != nullptr);
  bool schedule_drain = false;
  {
    util::MutexLock lk(&mu_);
    if (started_ || stop_) {
      return Status::FailedPrecondition(
          "MicroBatcher::StartOnPool: already started or stopped");
    }
    started_ = true;
    pool_ = pool;
    window_start_ = AdmissionController::Clock::now();
    // Anything enqueued before the start (EstimateAsync) needs a drain task.
    if (!queue_.empty() && !drain_scheduled_) {
      drain_scheduled_ = true;
      schedule_drain = true;
    }
  }
  // Submit outside mu_: a workerless pool (ThreadPool(1)) runs the task
  // inline on this thread, and DrainOnPool re-acquires mu_.
  if (schedule_drain) pool_->Submit([this] { DrainOnPool(); });
  return Status::OK();
}

void MicroBatcher::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
    // Pool mode: wait out the in-flight drain task (it exits on stop_ and
    // signals) so no task touches this object after Stop returns.
    while (drain_scheduled_) drain_idle_.Wait(&mu_);
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  // No dispatcher will ever run again: answer anything still queued (a
  // Stop() before Start(), or pool mode's undrained tail).
  std::deque<Pending> orphans;
  {
    util::MutexLock lk(&mu_);
    orphans.swap(queue_);
  }
  for (Pending& p : orphans) {
    p.promise.set_value(
        Status::Unavailable("serving stopped before the request ran"));
  }
}

bool MicroBatcher::running() const {
  util::MutexLock lk(&mu_);
  return started_ && !stop_;
}

size_t MicroBatcher::ApproxQueueDepth() const {
  util::MutexLock lk(&mu_);
  return queue_.size();
}

Result<EstimateResponse> MicroBatcher::EstimateDirect(
    const EstimateRequest& request) const {
  if (request.features.size() != feature_dim_) {
    return Status::InvalidArgument(
        "Estimate: got " + std::to_string(request.features.size()) +
        " features; domain expects " + std::to_string(feature_dim_));
  }
  std::shared_ptr<const ModelSnapshot> snap = store_->Current();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no model snapshot published yet");
  }
  GetBatcherMetrics().requests->Increment();
  served_total_.fetch_add(1, std::memory_order_relaxed);
  nn::Matrix x(1, request.features.size());
  x.SetRow(0, request.features);
  std::vector<double> targets = snap->model().EstimateTargets(x);
  EstimateResponse response;
  response.estimate = ce::TargetToCard(targets[0]);
  response.version = snap->version();
  response.tenant_id = request.tenant_id;
  return response;
}

Result<EstimateResponse> MicroBatcher::Estimate(
    const EstimateRequest& request) {
  if (config_.batch_max == 1) return EstimateDirect(request);
  Result<std::future<Result<EstimateResponse>>> enqueued =
      Enqueue(request, /*block_until_admitted=*/true);
  if (!enqueued.ok()) return enqueued.status();
  return enqueued.ValueOrDie().get();
}

std::future<Result<EstimateResponse>> MicroBatcher::EstimateAsync(
    EstimateRequest request) {
  Result<std::future<Result<EstimateResponse>>> enqueued =
      Enqueue(std::move(request), /*block_until_admitted=*/false);
  if (enqueued.ok()) return enqueued.MoveValueOrDie();
  std::promise<Result<EstimateResponse>> failed;
  failed.set_value(enqueued.status());
  return failed.get_future();
}

// --- Deprecated positional shims: thin wrappers over the struct API. ---

Result<double> MicroBatcher::Estimate(std::vector<double> features,
                                      int64_t deadline_us) {
  EstimateRequest request;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  Result<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return response.status();
  return response.ValueOrDie().estimate;
}

std::future<Result<double>> MicroBatcher::EstimateAsync(
    std::vector<double> features, int64_t deadline_us) {
  EstimateRequest request;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  std::future<Result<EstimateResponse>> inner =
      EstimateAsync(std::move(request));
  // Deferred adapter, not a thread: the request is already enqueued above;
  // get() on the returned future blocks on the inner one.
  return std::async(std::launch::deferred,
                    [f = std::move(inner)]() mutable -> Result<double> {
                      Result<EstimateResponse> r = f.get();
                      if (!r.ok()) return r.status();
                      return r.ValueOrDie().estimate;
                    });
}

Result<double> MicroBatcher::EstimateDirect(
    const std::vector<double>& features) const {
  EstimateRequest request;
  request.features = features;
  Result<EstimateResponse> response = EstimateDirect(request);
  if (!response.ok()) return response.status();
  return response.ValueOrDie().estimate;
}

Result<std::future<Result<EstimateResponse>>> MicroBatcher::Enqueue(
    EstimateRequest request, bool block_until_admitted) {
  if (request.features.size() != feature_dim_) {
    return Status::InvalidArgument(
        "Estimate: got " + std::to_string(request.features.size()) +
        " features; domain expects " + std::to_string(feature_dim_));
  }
  AdmissionController::Clock::time_point deadline =
      admission_.DeadlineFor(request.deadline_us);
  std::future<Result<EstimateResponse>> future;
  size_t depth = 0;
  bool schedule_drain = false;
  {
    util::MutexLock lk(&mu_);
    while (true) {
      if (stop_) {
        return Status::FailedPrecondition("MicroBatcher is stopped");
      }
      AdmissionController::Decision decision = admission_.Admit(queue_.size());
      if (decision == AdmissionController::Decision::kAdmit) break;
      if (decision == AdmissionController::Decision::kShed ||
          !block_until_admitted) {
        return admission_.Shed();
      }
      // kBlock: wait for the dispatcher to drain, bounded by the deadline.
      if (deadline == AdmissionController::Clock::time_point::max()) {
        not_full_.Wait(&mu_);
      } else if (not_full_.WaitUntil(&mu_, deadline) ==
                 std::cv_status::timeout) {
        return admission_.Expire();
      }
    }
    Pending pending;
    pending.request = std::move(request);
    pending.deadline = deadline;
    pending.enqueued = AdmissionController::Clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    depth = queue_.size();
    admission_.RecordDepth(depth);
    if (pool_ != nullptr && started_ && !drain_scheduled_) {
      drain_scheduled_ = true;
      schedule_drain = true;
    }
  }
  if (schedule_drain) {
    pool_->Submit([this] { DrainOnPool(); });
  } else if (pool_ == nullptr &&
             (depth == 1 || depth % config_.batch_max == 0)) {
    // Thread mode. The dispatcher only has something new to act on when the
    // queue went non-empty or a full batch just completed; signaling every
    // enqueue would pay a wakeup syscall per request at exactly the
    // throughput-bound depths.
    not_empty_.NotifyOne();
  }
  return future;
}

bool MicroBatcher::PopBatch(std::vector<Pending>* batch) {
  size_t n = std::min<size_t>(queue_.size(), config_.batch_max);
  if (n == 0) return false;
  batch->clear();
  batch->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  admission_.RecordDepth(queue_.size());
  return true;
}

void MicroBatcher::DispatchLoop() {
  std::vector<Pending> batch;
  while (true) {
    {
      util::MutexLock lk(&mu_);
      while (!stop_ && queue_.empty()) not_empty_.Wait(&mu_);
      if (queue_.empty()) break;  // stop_ with a drained queue
      // Coalesce: after the first request, give stragglers a short window
      // to fill the batch (skipped once it is already full or stopping).
      if (queue_.size() < config_.batch_max && config_.batch_timeout_us > 0 &&
          !stop_) {
        AdmissionController::Clock::time_point straggler_deadline =
            AdmissionController::Clock::now() +
            std::chrono::microseconds(config_.batch_timeout_us);
        while (!stop_ && queue_.size() < config_.batch_max &&
               not_empty_.WaitUntil(&mu_, straggler_deadline) !=
                   std::cv_status::timeout) {
        }
      }
      PopBatch(&batch);
    }
    not_full_.NotifyAll();
    ServeBatch(&batch);
  }
}

void MicroBatcher::DrainOnPool() {
  // Single-drainer discipline: exactly one drain task exists per batcher
  // (drain_scheduled_), and the task always re-acquires mu_ after its last
  // ServeBatch — the unlock/lock pair is what orders this task's unlocked
  // state (window_* counters) before the next task's.
  std::vector<Pending> batch;
  for (int round = 0; round < kDrainRoundsPerTask; ++round) {
    {
      util::MutexLock lk(&mu_);
      if (stop_ || !PopBatch(&batch)) {
        drain_scheduled_ = false;
        drain_idle_.NotifyAll();
        return;
      }
    }
    not_full_.NotifyAll();
    ServeBatch(&batch);
  }
  // Still work queued after our rounds: hand the worker back and requeue.
  bool resubmit;
  {
    util::MutexLock lk(&mu_);
    resubmit = !stop_ && !queue_.empty();
    if (!resubmit) {
      drain_scheduled_ = false;
      drain_idle_.NotifyAll();
    }
  }
  if (resubmit) pool_->Submit([this] { DrainOnPool(); });
}

void MicroBatcher::ServeBatch(std::vector<Pending>* batch) {
  WARPER_SPAN("serve.batch");
  BatcherMetrics& m = GetBatcherMetrics();
  AdmissionController::Clock::time_point now =
      AdmissionController::Clock::now();
  std::vector<size_t> live;
  live.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    if (AdmissionController::Expired((*batch)[i].deadline, now)) {
      (*batch)[i].promise.set_value(admission_.Expire());
    } else {
      live.push_back(i);
    }
  }
  if (!live.empty()) {
    std::shared_ptr<const ModelSnapshot> snap = store_->Current();
    if (snap == nullptr) {
      for (size_t i : live) {
        (*batch)[i].promise.set_value(
            Status::FailedPrecondition("no model snapshot published yet"));
      }
      return;
    }
    nn::Matrix x(live.size(), feature_dim_);
    for (size_t k = 0; k < live.size(); ++k) {
      x.SetRow(k, (*batch)[live[k]].request.features);
    }
    std::vector<double> targets = snap->model().EstimateTargets(x);
    AdmissionController::Clock::time_point done =
        AdmissionController::Clock::now();
    for (size_t k = 0; k < live.size(); ++k) {
      Pending& p = (*batch)[live[k]];
      m.latency_us->Observe(
          std::chrono::duration<double, std::micro>(done - p.enqueued)
              .count());
      EstimateResponse response;
      response.estimate = ce::TargetToCard(targets[k]);
      response.version = snap->version();
      response.tenant_id = p.request.tenant_id;
      p.promise.set_value(response);
    }
    m.requests->Increment(live.size());
    served_total_.fetch_add(live.size(), std::memory_order_relaxed);
    m.batch_size->Observe(static_cast<double>(live.size()));
  }
  m.batches->Increment();

  // serve.qps: served requests over a sliding ~half-second window.
  window_served_ += live.size();
  double elapsed = std::chrono::duration<double>(
                       AdmissionController::Clock::now() - window_start_)
                       .count();
  if (elapsed >= 0.5) {
    m.qps->Set(static_cast<double>(window_served_) / elapsed);
    window_served_ = 0;
    window_start_ = AdmissionController::Clock::now();
  }
}

}  // namespace warper::serve
