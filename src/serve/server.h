// The estimation server: the concurrent front of one Warper controller —
// one tenant of a ServingFleet, or a standalone single-tenant deployment.
//
// It composes the serving pieces — SnapshotStore (versioned immutable model
// bundles), MicroBatcher (coalesced inference) and AdmissionController
// (bounded queue, deadlines). Optimizer traffic calls Estimate() /
// EstimateAsync() with an EstimateRequest and only ever touches published
// snapshots; SubmitInvocation() hands new workload to the background
// adaptation executor, which runs Warper::Invoke, evaluates the adapted
// model against a publish gate, and either publishes the next version or
// rolls M and the learned modules back to the last good one (§3.4).
//
// Threading: standalone (the one-arg constructor) the server owns a private
// single-worker AdaptationExecutor and a dedicated batcher dispatcher
// thread — the pre-fleet behavior. Under a ServingFleet both are injected
// (ServerOptions): adaptation multiplexes onto the fleet's shared
// prioritized executor and batch dispatch onto the shared util::ThreadPool,
// so a 32-tenant fleet runs on O(cores) threads, not O(tenants).
#ifndef WARPER_SERVE_SERVER_H_
#define WARPER_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/warper.h"
#include "serve/adapt_executor.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace warper::serve {

// How a server plugs into shared fleet infrastructure. Everything optional:
// the defaults reproduce a standalone single-tenant server.
struct ServerOptions {
  // Serving knobs; when null the server uses `warper->config().serve`.
  // The fleet passes a per-tenant derivation of its own config.
  const core::ServeConfig* config = nullptr;
  // Shared adaptation executor. When set, the server owns no adaptation
  // thread — SubmitInvocation routes through this executor, prioritized by
  // drift severity × traffic. The executor must be stopped BEFORE the
  // server (the fleet enforces this ordering).
  AdaptationExecutor* executor = nullptr;
  // When set, the batcher dispatches on this shared pool instead of a
  // dedicated thread (MicroBatcher::StartOnPool).
  util::ThreadPool* dispatch_pool = nullptr;
  // Fleet-wide snapshot epoch: bumped on every publish by any tenant, so
  // cross-tenant observers can detect "some tenant swapped" with one atomic
  // load — no tenant's readers ever stall on another's swap.
  std::atomic<uint64_t>* fleet_epoch = nullptr;
  // Identity within the fleet; echoed into EstimateResponse::tenant_id for
  // requests served by this tenant and used to name per-tenant metrics.
  uint64_t tenant_id = 0;
  // Register per-tenant serve.tenant.* metric instances (rollbacks,
  // publishes). Off for standalone servers to keep the registry small.
  bool tenant_metrics = false;
};

class EstimationServer {
 public:
  // Standalone single-tenant server: owns its adaptation worker and batcher
  // dispatcher thread. `warper` must outlive the server and be
  // Initialize()d before Start(). Serving knobs come from
  // `warper->config().serve`.
  explicit EstimationServer(core::Warper* warper);
  // Fleet form: shared infrastructure injected via `options`.
  EstimationServer(core::Warper* warper, const ServerOptions& options);
  ~EstimationServer();

  EstimationServer(const EstimationServer&) = delete;
  EstimationServer& operator=(const EstimationServer&) = delete;

  // Optional fixed benchmark for the publish gate. With an eval set the
  // gate compares ModelGmq on these examples before/after each adaptation;
  // without one it falls back to the invocation's own recent-window GMQ.
  // Must be called before Start().
  Status SetEvalSet(std::vector<ce::LabeledExample> eval_set);

  // Validates the serving config, publishes version 1 (a clone of the
  // current model + captured modules) and starts the batcher plus — when no
  // shared executor was injected — the private adaptation worker.
  // InvalidArgument for a bad ServeConfig; FailedPrecondition when the
  // warper is uninitialized or its model does not support Clone().
  Status Start();
  // Stops adaptation and the batcher; pending invocations are answered
  // with Unavailable. Under a fleet, stop via the fleet (it stops the
  // shared executor first). Idempotent.
  void Stop();
  bool running() const;

  // Estimate against the current snapshot — see MicroBatcher for the
  // batched/inline/async semantics. Valid only between Start() and Stop().
  Result<EstimateResponse> Estimate(const EstimateRequest& request);
  std::future<Result<EstimateResponse>> EstimateAsync(EstimateRequest request);

  // --- Deprecated positional shims (pre-fleet API). ---
  [[deprecated("use Estimate(const EstimateRequest&)")]]
  Result<double> Estimate(std::vector<double> features,
                          int64_t deadline_us = 0);
  [[deprecated("use EstimateAsync(EstimateRequest)")]]
  std::future<Result<double>> EstimateAsync(std::vector<double> features,
                                            int64_t deadline_us = 0);

  // Hands an invocation to the background adaptation executor (shared or
  // private). The future resolves once the pass (including the
  // publish-or-rollback decision) completes. FailedPrecondition when the
  // server is not running.
  std::future<Result<AdaptationOutcome>> SubmitInvocation(
      core::Warper::Invocation invocation);

  const SnapshotStore& store() const { return store_; }
  uint64_t CurrentVersion() const { return store_.CurrentVersion(); }
  MicroBatcher* batcher() { return batcher_.get(); }
  uint64_t tenant_id() const { return options_.tenant_id; }
  const core::ServeConfig& serve_config() const { return config_; }

  // --- Priority signals for the shared executor (wait-free reads). ---
  // Last drift severity observed by an adaptation pass of this tenant
  // (InvocationResult::drift_severity); 0 until the first pass.
  double drift_severity() const {
    return drift_severity_.load(std::memory_order_relaxed);
  }
  // Requests this tenant served since its last adaptation pass finished.
  double traffic_since_adapt() const;
  // Unhealthy traffic share of this tenant's template tracker, refreshed on
  // every adaptation pass and every ReportObservation (∈ [0, 1]).
  double offender_pressure() const {
    return offender_pressure_.load(std::memory_order_relaxed);
  }

  // --- Per-template error feedback (the serving-path labeled estimates). ---
  // Feeds one executed query's true cardinality back to the tenant's
  // template tracker: the error recorded is against the CURRENT serving
  // snapshot's estimate, i.e. what the optimizer actually saw. Thread-safe;
  // callable from any thread while the server runs. FailedPrecondition when
  // the server is not running, InvalidArgument on a feature-dim mismatch.
  Status ReportObservation(const std::vector<double>& features, double actual);
  // The tenant's k worst templates (TemplateTracker::TopOffenders).
  std::vector<core::TemplateTracker::Offender> TopOffenders(size_t k) const {
    return warper_->tracker().TopOffenders(k);
  }

 private:
  friend class ServingFleet;

  // One pass: Invoke, gate, publish or roll back. Runs on an executor
  // worker (shared or private).
  Result<AdaptationOutcome> Adapt(const core::Warper::Invocation& invocation);
  // Clone M + capture modules at the current warper state and publish it as
  // the next version with gate score `gmq`. Bumps the fleet epoch.
  Status PublishCurrent(double gmq);

  core::Warper* warper_;
  ServerOptions options_;
  core::ServeConfig config_;  // resolved: options_.config or warper's
  // Written by SetEvalSet strictly before Start() (enforced with a Status);
  // immutable while adaptation passes run, so Adapt reads it unlocked.
  std::vector<ce::LabeledExample> eval_set_;
  SnapshotStore store_;
  std::unique_ptr<MicroBatcher> batcher_;
  // Standalone mode only: the private single-worker executor.
  std::unique_ptr<AdaptationExecutor> owned_executor_;
  AdaptationExecutor* executor_ = nullptr;  // shared or owned_executor_
  // Touched by Start() (before any executor worker can run a pass for this
  // server) and then only under the single in-flight pass per server —
  // never concurrently.
  uint64_t next_version_ = 1;

  std::atomic<double> drift_severity_{0.0};
  std::atomic<double> offender_pressure_{0.0};
  std::atomic<uint64_t> served_at_last_adapt_{0};
  // Per-tenant metric handles (null unless options_.tenant_metrics).
  util::Counter* tenant_rollbacks_ = nullptr;
  util::Counter* tenant_publishes_ = nullptr;
  // Per-tenant drift severity gauge (warper.drift_severity.<id>): keeps the
  // executor's priority probe and the offender view telling one story —
  // the global warper.drift_severity gauge only shows the LAST tenant that
  // adapted.
  util::Gauge* tenant_drift_severity_ = nullptr;

  mutable util::Mutex mu_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_SERVER_H_
