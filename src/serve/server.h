// The estimation server: the concurrent front of the Warper controller.
//
// It composes the three serving pieces — SnapshotStore (versioned immutable
// model bundles), MicroBatcher (coalesced inference) and AdmissionController
// (bounded queue, deadlines) — and runs adaptation on a dedicated background
// thread. Optimizer traffic calls Estimate()/EstimateAsync() and only ever
// touches published snapshots; SubmitInvocation() hands new workload to the
// adaptation thread, which runs Warper::Invoke, evaluates the adapted model
// against a publish gate, and either publishes the next version or rolls M
// and the learned modules back to the last good one (§3.4).
#ifndef WARPER_SERVE_SERVER_H_
#define WARPER_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/warper.h"
#include "serve/batcher.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"

namespace warper::serve {

// What one background adaptation pass did to the serving state.
struct AdaptationOutcome {
  core::Warper::InvocationResult result;
  // Gate evidence: model quality before / after the pass, on the fixed eval
  // set when one is installed, else on the invocation's recent labeled
  // window (zeros when neither had labels — the gate passes vacuously).
  double gate_before = 0.0;
  double gate_after = 0.0;
  bool published = false;
  bool rolled_back = false;
  // Serving version after the pass (unchanged unless published).
  uint64_t version = 0;
};

class EstimationServer {
 public:
  // `warper` must outlive the server and be Initialize()d before Start().
  // Serving knobs come from `warper->config().serve`.
  explicit EstimationServer(core::Warper* warper);
  ~EstimationServer();

  EstimationServer(const EstimationServer&) = delete;
  EstimationServer& operator=(const EstimationServer&) = delete;

  // Optional fixed benchmark for the publish gate. With an eval set the
  // gate compares ModelGmq on these examples before/after each adaptation;
  // without one it falls back to the invocation's own recent-window GMQ.
  // Must be called before Start().
  Status SetEvalSet(std::vector<ce::LabeledExample> eval_set);

  // Publishes version 1 (a clone of the current model + captured modules)
  // and starts the adaptation thread and the batcher dispatcher.
  // FailedPrecondition when the warper is uninitialized or its model does
  // not support Clone().
  Status Start();
  // Stops adaptation and the batcher; pending invocations are answered
  // with Unavailable. Idempotent.
  void Stop();
  bool running() const;

  // Estimate against the current snapshot — see MicroBatcher for the
  // batched/inline/async semantics. Valid only between Start() and Stop().
  Result<double> Estimate(std::vector<double> features,
                          int64_t deadline_us = 0);
  std::future<Result<double>> EstimateAsync(std::vector<double> features,
                                            int64_t deadline_us = 0);

  // Hands an invocation to the background adaptation thread. The future
  // resolves once the pass (including the publish-or-rollback decision)
  // completes. FailedPrecondition when the server is not running.
  std::future<Result<AdaptationOutcome>> SubmitInvocation(
      core::Warper::Invocation invocation);

  const SnapshotStore& store() const { return store_; }
  uint64_t CurrentVersion() const { return store_.CurrentVersion(); }
  MicroBatcher* batcher() { return batcher_.get(); }

 private:
  struct PendingInvocation {
    core::Warper::Invocation invocation;
    std::promise<Result<AdaptationOutcome>> promise;
  };

  void AdaptLoop();
  // One pass: Invoke, gate, publish or roll back.
  Result<AdaptationOutcome> Adapt(const core::Warper::Invocation& invocation);
  // Clone M + capture modules at the current warper state and publish it as
  // the next version with gate score `gmq`.
  Status PublishCurrent(double gmq);

  core::Warper* warper_;
  // Written by SetEvalSet strictly before Start() (enforced with a Status);
  // immutable while the adaptation thread runs, so Adapt reads it unlocked.
  std::vector<ce::LabeledExample> eval_set_;
  SnapshotStore store_;
  std::unique_ptr<MicroBatcher> batcher_;
  // Touched by Start() (before the adaptation thread exists) and then only
  // by the adaptation thread in PublishCurrent — never concurrently.
  uint64_t next_version_ = 1;

  mutable util::Mutex mu_;
  util::CondVar work_ready_;
  std::deque<PendingInvocation> adapt_queue_ WARPER_GUARDED_BY(mu_);
  std::thread adapt_thread_;
  bool started_ WARPER_GUARDED_BY(mu_) = false;
  bool stop_ WARPER_GUARDED_BY(mu_) = false;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_SERVER_H_
