#include "serve/adapt_executor.h"

#include <algorithm>
#include <utility>

#include "util/metrics.h"
#include "util/trace.h"

namespace warper::serve {
namespace {

struct ExecutorMetrics {
  util::Counter* runs = util::Metrics().GetCounter("serve.adapt.runs");
  util::Gauge* queue_depth =
      util::Metrics().GetGauge("serve.adapt.queue_depth");
  util::Histogram* wait_us = util::Metrics().GetHistogram(
      "serve.adapt.wait_us",
      {100, 1000, 10000, 100000, 1000000, 10000000, 100000000});
};

ExecutorMetrics& GetExecutorMetrics() {
  static ExecutorMetrics* metrics = new ExecutorMetrics();
  return *metrics;
}

}  // namespace

AdaptationExecutor::AdaptationExecutor(const core::ServeConfig& config)
    : config_(config) {}

AdaptationExecutor::~AdaptationExecutor() { Stop(); }

Status AdaptationExecutor::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "AdaptationExecutor::Start: already started or stopped");
  }
  started_ = true;
  workers_.reserve(config_.adapt_threads);
  for (size_t i = 0; i < config_.adapt_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void AdaptationExecutor::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::deque<PendingPass> orphans;
  {
    util::MutexLock lk(&mu_);
    orphans.swap(queue_);
  }
  for (PendingPass& p : orphans) {
    p.promise.set_value(
        Status::Unavailable("executor stopped before the pass ran"));
  }
  GetExecutorMetrics().queue_depth->Set(0.0);
}

bool AdaptationExecutor::running() const {
  util::MutexLock lk(&mu_);
  return started_ && !stop_;
}

size_t AdaptationExecutor::PendingCount() const {
  util::MutexLock lk(&mu_);
  return queue_.size();
}

std::future<Result<AdaptationOutcome>> AdaptationExecutor::Submit(
    uint64_t tenant_id, Probe probe, Task task) {
  PendingPass pending;
  pending.tenant_id = tenant_id;
  pending.probe = std::move(probe);
  pending.task = std::move(task);
  pending.submitted = Clock::now();
  std::future<Result<AdaptationOutcome>> future = pending.promise.get_future();
  {
    util::MutexLock lk(&mu_);
    if (!started_ || stop_) {
      pending.promise.set_value(
          Status::FailedPrecondition("AdaptationExecutor is not running"));
      return future;
    }
    queue_.push_back(std::move(pending));
    GetExecutorMetrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  work_ready_.NotifyOne();
  return future;
}

double AdaptationExecutor::BasePriority(const PrioritySignals& signals,
                                        const core::ServeConfig& config) {
  // Localized template failures count as drift even when the global δ_m
  // signal is quiet (see PrioritySignals::offender_pressure).
  double severity = std::max(
      {signals.drift_severity, signals.offender_pressure, 0.0});
  double traffic = std::max(signals.traffic, 0.0);
  return (config.adapt_priority_floor +
          config.adapt_priority_drift_weight * severity) *
         (1.0 + config.adapt_priority_traffic_weight * traffic);
}

double AdaptationExecutor::EffectivePriority(double base, double age_seconds,
                                             const core::ServeConfig& config) {
  return base + config.adapt_aging_rate * std::max(age_seconds, 0.0);
}

bool AdaptationExecutor::PickNext(Clock::time_point now, size_t* index) {
  bool found = false;
  double best_priority = -1.0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const PendingPass& p = queue_[i];
    if (std::find(running_tenants_.begin(), running_tenants_.end(),
                  p.tenant_id) != running_tenants_.end()) {
      continue;  // this tenant already has a pass in flight
    }
    double base = BasePriority(p.probe ? p.probe() : PrioritySignals{},
                               config_);
    double age =
        std::chrono::duration<double>(now - p.submitted).count();
    double priority = EffectivePriority(base, age, config_);
    // Strictly-greater keeps FIFO order among equal-priority passes (ages
    // only grow toward the front of the deque).
    if (priority > best_priority) {
      best_priority = priority;
      *index = i;
      found = true;
    }
  }
  return found;
}

void AdaptationExecutor::WorkerLoop() {
  while (true) {
    PendingPass pending;
    {
      util::MutexLock lk(&mu_);
      size_t pick = 0;
      while (!stop_ && !PickNext(Clock::now(), &pick)) {
        work_ready_.Wait(&mu_);
      }
      if (stop_) return;  // Stop() answers whatever is left
      pending = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(pick));
      running_tenants_.push_back(pending.tenant_id);
      GetExecutorMetrics().queue_depth->Set(
          static_cast<double>(queue_.size()));
    }
    ExecutorMetrics& m = GetExecutorMetrics();
    m.wait_us->Observe(std::chrono::duration<double, std::micro>(
                           Clock::now() - pending.submitted)
                           .count());
    {
      WARPER_SPAN("serve.adapt.pass");
      m.runs->Increment();
      pending.promise.set_value(pending.task());
    }
    {
      util::MutexLock lk(&mu_);
      running_tenants_.erase(std::find(running_tenants_.begin(),
                                       running_tenants_.end(),
                                       pending.tenant_id));
    }
    // A queued pass of this tenant may have just become eligible.
    work_ready_.NotifyOne();
  }
}

}  // namespace warper::serve
