#include "serve/fleet.h"

#include <utility>

#include "util/metrics.h"

namespace warper::serve {
namespace {

struct FleetMetrics {
  util::Gauge* tenants = util::Metrics().GetGauge("serve.fleet.tenants");
};

FleetMetrics& GetFleetMetrics() {
  static FleetMetrics* metrics = new FleetMetrics();
  return *metrics;
}

}  // namespace

ServingFleet::ServingFleet(const core::ServeConfig& config,
                           util::ThreadPool* dispatch_pool)
    : config_(config),
      dispatch_pool_(dispatch_pool != nullptr ? dispatch_pool
                                              : &util::ThreadPool::Global()),
      executor_(config) {}

ServingFleet::~ServingFleet() { Stop(); }

Status ServingFleet::AddTenant(uint64_t tenant_id, core::Warper* warper) {
  if (warper == nullptr) {
    return Status::InvalidArgument("AddTenant: warper is null");
  }
  {
    util::MutexLock lk(&mu_);
    if (started_ || stop_) {
      return Status::FailedPrecondition(
          "ServingFleet::AddTenant: fleet already started");
    }
  }
  WARPER_RETURN_NOT_OK(router_.AddTenant(tenant_id, tenants_.size()));

  auto entry = std::make_unique<TenantEntry>();
  entry->id = tenant_id;
  // Per-tenant derivation: each tenant gets its own bounded queue so one
  // saturated tenant cannot consume the whole fleet's queueing headroom.
  entry->config = config_;
  entry->config.queue_capacity = config_.tenant_queue_depth;
  entry->requests = util::Metrics().GetCounter(
      TenantMetricName("serve.tenant.requests", tenant_id));
  entry->shed = util::Metrics().GetCounter(
      TenantMetricName("serve.tenant.shed", tenant_id));

  ServerOptions options;
  options.config = &entry->config;
  options.executor = &executor_;
  options.dispatch_pool = dispatch_pool_;
  options.fleet_epoch = &epoch_;
  options.tenant_id = tenant_id;
  options.tenant_metrics = true;
  entry->server = std::make_unique<EstimationServer>(warper, options);
  tenants_.push_back(std::move(entry));
  return Status::OK();
}

Status ServingFleet::SetEvalSet(uint64_t tenant_id,
                                std::vector<ce::LabeledExample> eval_set) {
  EstimationServer* server = tenant(tenant_id);
  if (server == nullptr) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " is not registered");
  }
  return server->SetEvalSet(std::move(eval_set));
}

Status ServingFleet::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "ServingFleet::Start: already started or stopped");
  }
  if (tenants_.empty()) {
    return Status::FailedPrecondition("ServingFleet has no tenants");
  }
  WARPER_RETURN_NOT_OK(config_.Validate());
  router_.Freeze();
  WARPER_RETURN_NOT_OK(executor_.Start());
  for (std::unique_ptr<TenantEntry>& entry : tenants_) {
    Status status = entry->server->Start();
    if (!status.ok()) {
      // Unwind already-started siblings so Start is all-or-nothing.
      executor_.Stop();
      for (std::unique_ptr<TenantEntry>& other : tenants_) {
        other->server->Stop();
      }
      return status;
    }
  }
  GetFleetMetrics().tenants->Set(static_cast<double>(tenants_.size()));
  started_ = true;
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void ServingFleet::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  running_.store(false, std::memory_order_release);
  // Executor first: its workers run Adapt() against tenant servers, so they
  // must be joined before any server starts tearing down.
  executor_.Stop();
  for (std::unique_ptr<TenantEntry>& entry : tenants_) {
    if (entry->server != nullptr) entry->server->Stop();
  }
}

Result<ServingFleet::TenantEntry*> ServingFleet::Admit(
    const EstimateRequest& request) {
  if (!running()) {
    return Status::FailedPrecondition("ServingFleet is not running");
  }
  Result<size_t> shard = router_.ShardFor(request.tenant_id);
  WARPER_RETURN_NOT_OK(shard.status());
  TenantEntry* entry = tenants_[shard.ValueOrDie()].get();
  entry->requests->Increment();
  // Shed budget: refuse a saturated tenant before its request can park a
  // caller thread (Overflow::kBlock) or occupy fleet headroom. Advisory
  // depth read — the budget bounds steady-state queueing, not an exact
  // instantaneous count. priority > 0 bypasses (still subject to the
  // tenant's queue capacity).
  if (request.priority <= 0 && config_.tenant_shed_budget > 0) {
    MicroBatcher* batcher = entry->server->batcher();
    if (batcher != nullptr &&
        batcher->ApproxQueueDepth() >= config_.tenant_shed_budget) {
      entry->shed->Increment();
      return Status::Unavailable(
          "tenant " + std::to_string(request.tenant_id) +
          " is over its shed budget");
    }
  }
  return entry;
}

Result<EstimateResponse> ServingFleet::Estimate(const EstimateRequest& request) {
  Result<TenantEntry*> entry = Admit(request);
  WARPER_RETURN_NOT_OK(entry.status());
  return entry.ValueOrDie()->server->Estimate(request);
}

std::future<Result<EstimateResponse>> ServingFleet::EstimateAsync(
    EstimateRequest request) {
  Result<TenantEntry*> entry = Admit(request);
  if (!entry.ok()) {
    std::promise<Result<EstimateResponse>> failed;
    failed.set_value(entry.status());
    return failed.get_future();
  }
  return entry.ValueOrDie()->server->EstimateAsync(std::move(request));
}

Result<EstimateResponse> ServingFleet::EstimateHashed(
    const EstimateRequest& request) {
  if (!running()) {
    return Status::FailedPrecondition("ServingFleet is not running");
  }
  Result<size_t> shard = router_.ShardForFeatures(request.features);
  WARPER_RETURN_NOT_OK(shard.status());
  TenantEntry* entry = tenants_[shard.ValueOrDie()].get();
  // Rewrite the tenant id so the response names the shard that served it.
  EstimateRequest routed = request;
  routed.tenant_id = entry->id;
  entry->requests->Increment();
  return entry->server->Estimate(routed);
}

std::future<Result<AdaptationOutcome>> ServingFleet::SubmitInvocation(
    uint64_t tenant_id, core::Warper::Invocation invocation) {
  EstimationServer* server = tenant(tenant_id);
  if (server == nullptr || !running()) {
    std::promise<Result<AdaptationOutcome>> failed;
    failed.set_value(
        server == nullptr
            ? Status::NotFound("tenant " + std::to_string(tenant_id) +
                               " is not registered")
            : Status::FailedPrecondition("ServingFleet is not running"));
    return failed.get_future();
  }
  return server->SubmitInvocation(std::move(invocation));
}

Status ServingFleet::ReportObservation(uint64_t tenant_id,
                                       const std::vector<double>& features,
                                       double actual) {
  EstimationServer* server = tenant(tenant_id);
  if (server == nullptr) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " is not registered");
  }
  return server->ReportObservation(features, actual);
}

Result<std::vector<core::TemplateTracker::Offender>>
ServingFleet::TenantTopOffenders(uint64_t tenant_id, size_t k) {
  EstimationServer* server = tenant(tenant_id);
  if (server == nullptr) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " is not registered");
  }
  return server->TopOffenders(k);
}

EstimationServer* ServingFleet::tenant(uint64_t tenant_id) {
  // Registration order == shard index, but before Freeze() the router
  // cannot be queried — scan instead (tiny N, cold path).
  for (std::unique_ptr<TenantEntry>& entry : tenants_) {
    if (entry->id == tenant_id) return entry->server.get();
  }
  return nullptr;
}

}  // namespace warper::serve
