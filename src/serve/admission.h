// Admission control for the serving queue: bounded capacity with a
// configurable overflow policy (block until space, or shed with
// Unavailable) and per-request deadlines. Pulled out of the batcher so the
// policy is testable on its own and later layers (sharded servers,
// priority lanes) can reuse it unchanged.
#ifndef WARPER_SERVE_ADMISSION_H_
#define WARPER_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>

#include "core/config.h"
#include "util/status.h"

namespace warper::serve {

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(const core::ServeConfig& config);

  // What to do with an arrival while the queue holds `depth` entries:
  // enqueue it (kAdmit), make the caller wait for space (kWait, kBlock
  // policy), or refuse it (kShed, kShed policy).
  enum class Decision { kAdmit, kWait, kShed };
  Decision Admit(size_t depth) const;

  // Absolute deadline for a request carrying `deadline_us`. Zero falls back
  // to the config default; a zero default means no deadline
  // (Clock::time_point::max()). Negative values are treated as zero.
  Clock::time_point DeadlineFor(int64_t deadline_us) const;

  static bool Expired(Clock::time_point deadline, Clock::time_point now) {
    return now > deadline;
  }

  // Terminal statuses, with the matching serve.* counter bumped.
  Status Shed();
  Status Expire();

  // Publishes the instantaneous queue depth to serve.queue_depth.
  void RecordDepth(size_t depth);

  const core::ServeConfig& config() const { return config_; }

 private:
  core::ServeConfig config_;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_ADMISSION_H_
