#include "serve/server.h"

#include <utility>

#include "ce/metrics.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace warper::serve {
namespace {

struct ServerMetrics {
  util::Counter* publishes = util::Metrics().GetCounter("serve.publishes");
  util::Counter* rollbacks = util::Metrics().GetCounter("serve.rollbacks");
};

ServerMetrics& GetServerMetrics() {
  static ServerMetrics* metrics = new ServerMetrics();
  return *metrics;
}

}  // namespace

EstimationServer::EstimationServer(core::Warper* warper) : warper_(warper) {
  WARPER_CHECK(warper != nullptr);
}

EstimationServer::~EstimationServer() { Stop(); }

Status EstimationServer::SetEvalSet(std::vector<ce::LabeledExample> eval_set) {
  util::MutexLock lk(&mu_);
  if (started_) {
    return Status::FailedPrecondition(
        "SetEvalSet must be called before Start()");
  }
  const size_t dim = warper_->domain()->FeatureDim();
  for (const ce::LabeledExample& ex : eval_set) {
    if (ex.features.size() != dim) {
      return Status::InvalidArgument(
          "eval example feature dim does not match the domain");
    }
  }
  eval_set_ = std::move(eval_set);
  return Status::OK();
}

Status EstimationServer::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "EstimationServer::Start: already started or stopped");
  }
  // The gate baseline for version 1 and the proof the warper is usable:
  // CaptureModuleState fails before a successful Initialize().
  WARPER_RETURN_NOT_OK(PublishCurrent(
      eval_set_.empty() ? 0.0 : ce::ModelGmq(*warper_->model(), eval_set_)));
  batcher_ = std::make_unique<MicroBatcher>(warper_->config().serve, &store_,
                                            warper_->domain()->FeatureDim());
  WARPER_RETURN_NOT_OK(batcher_->Start());
  started_ = true;
  adapt_thread_ = std::thread([this] { AdaptLoop(); });
  return Status::OK();
}

void EstimationServer::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_ready_.NotifyAll();
  if (adapt_thread_.joinable()) adapt_thread_.join();
  std::deque<PendingInvocation> orphans;
  {
    util::MutexLock lk(&mu_);
    orphans.swap(adapt_queue_);
  }
  for (PendingInvocation& p : orphans) {
    p.promise.set_value(
        Status::Unavailable("server stopped before the invocation ran"));
  }
  if (batcher_ != nullptr) batcher_->Stop();
}

bool EstimationServer::running() const {
  util::MutexLock lk(&mu_);
  return started_ && !stop_;
}

Result<double> EstimationServer::Estimate(std::vector<double> features,
                                          int64_t deadline_us) {
  if (batcher_ == nullptr) {
    return Status::FailedPrecondition("EstimationServer is not running");
  }
  return batcher_->Estimate(std::move(features), deadline_us);
}

std::future<Result<double>> EstimationServer::EstimateAsync(
    std::vector<double> features, int64_t deadline_us) {
  if (batcher_ == nullptr) {
    std::promise<Result<double>> failed;
    failed.set_value(
        Status::FailedPrecondition("EstimationServer is not running"));
    return failed.get_future();
  }
  return batcher_->EstimateAsync(std::move(features), deadline_us);
}

std::future<Result<AdaptationOutcome>> EstimationServer::SubmitInvocation(
    core::Warper::Invocation invocation) {
  PendingInvocation pending;
  pending.invocation = std::move(invocation);
  std::future<Result<AdaptationOutcome>> future = pending.promise.get_future();
  {
    util::MutexLock lk(&mu_);
    if (!started_ || stop_) {
      pending.promise.set_value(
          Status::FailedPrecondition("EstimationServer is not running"));
      return future;
    }
    adapt_queue_.push_back(std::move(pending));
  }
  work_ready_.NotifyOne();
  return future;
}

void EstimationServer::AdaptLoop() {
  while (true) {
    PendingInvocation pending;
    {
      util::MutexLock lk(&mu_);
      while (!stop_ && adapt_queue_.empty()) work_ready_.Wait(&mu_);
      if (adapt_queue_.empty()) break;  // stop_ with nothing left to run
      pending = std::move(adapt_queue_.front());
      adapt_queue_.pop_front();
    }
    pending.promise.set_value(Adapt(pending.invocation));
  }
}

Result<AdaptationOutcome> EstimationServer::Adapt(
    const core::Warper::Invocation& invocation) {
  WARPER_SPAN("serve.adapt");
  std::shared_ptr<const ModelSnapshot> last_good = store_.Current();
  Result<core::Warper::InvocationResult> invoked = warper_->Invoke(invocation);
  if (!invoked.ok()) return invoked.status();

  AdaptationOutcome outcome;
  outcome.result = invoked.MoveValueOrDie();
  outcome.version = store_.CurrentVersion();
  if (!eval_set_.empty()) {
    // Stable benchmark: compare against the score the serving version was
    // published with, on the same examples.
    outcome.gate_before = last_good->gmq();
    outcome.gate_after = ce::ModelGmq(*warper_->model(), eval_set_);
  } else {
    // Fall back to the invocation's own recent labeled window; both stay
    // zero when it had no labels, and the gate passes vacuously.
    outcome.gate_before = outcome.result.gmq_before;
    outcome.gate_after = outcome.result.gmq_after;
  }

  const double tolerance = warper_->config().serve.regression_tolerance;
  const bool regressed = outcome.gate_before > 0.0 &&
                         outcome.gate_after > tolerance * outcome.gate_before;
  if (regressed) {
    // §3.4 rollback: put M and E/G/D back to the last published version so
    // the next episode does not refine on top of the regressed weights.
    WARPER_RETURN_NOT_OK(warper_->model()->RestoreFrom(last_good->model()));
    WARPER_RETURN_NOT_OK(warper_->RestoreModuleState(last_good->modules()));
    GetServerMetrics().rollbacks->Increment();
    outcome.rolled_back = true;
    return outcome;
  }
  if (outcome.result.model_updated) {
    WARPER_RETURN_NOT_OK(PublishCurrent(outcome.gate_after));
    outcome.published = true;
    outcome.version = store_.CurrentVersion();
  }
  return outcome;
}

Status EstimationServer::PublishCurrent(double gmq) {
  std::shared_ptr<const ce::CardinalityEstimator> clone =
      warper_->model()->Clone();
  if (clone == nullptr) {
    return Status::FailedPrecondition(
        warper_->model()->Name() + " does not support Clone(); cannot serve");
  }
  Result<core::Warper::ModuleState> modules = warper_->CaptureModuleState();
  WARPER_RETURN_NOT_OK(modules.status());
  store_.Publish(std::make_shared<const ModelSnapshot>(
      next_version_++, std::move(clone), modules.MoveValueOrDie(), gmq));
  GetServerMetrics().publishes->Increment();
  return Status::OK();
}

}  // namespace warper::serve
