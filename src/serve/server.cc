#include "serve/server.h"

#include <utility>

#include "ce/metrics.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace warper::serve {
namespace {

struct ServerMetrics {
  util::Counter* publishes = util::Metrics().GetCounter("serve.publishes");
  util::Counter* rollbacks = util::Metrics().GetCounter("serve.rollbacks");
  util::Gauge* fleet_epoch = util::Metrics().GetGauge("serve.fleet.epoch");
};

ServerMetrics& GetServerMetrics() {
  static ServerMetrics* metrics = new ServerMetrics();
  return *metrics;
}

}  // namespace

EstimationServer::EstimationServer(core::Warper* warper)
    : EstimationServer(warper, ServerOptions{}) {}

EstimationServer::EstimationServer(core::Warper* warper,
                                   const ServerOptions& options)
    : warper_(warper),
      options_(options),
      config_(options.config != nullptr ? *options.config
                                        : warper->config().serve) {
  WARPER_CHECK(warper != nullptr);
  if (options_.tenant_metrics) {
    tenant_rollbacks_ = util::Metrics().GetCounter(
        TenantMetricName("serve.tenant.rollbacks", options_.tenant_id));
    tenant_publishes_ = util::Metrics().GetCounter(
        TenantMetricName("serve.tenant.publishes", options_.tenant_id));
    // The global warper.drift_severity gauge only remembers the LAST tenant
    // that adapted; under a fleet each tenant needs its own so the executor
    // priority probes and the offender views agree.
    tenant_drift_severity_ = util::Metrics().GetGauge(
        TenantMetricName("warper.drift_severity", options_.tenant_id));
  }
}

EstimationServer::~EstimationServer() { Stop(); }

Status EstimationServer::SetEvalSet(std::vector<ce::LabeledExample> eval_set) {
  util::MutexLock lk(&mu_);
  if (started_) {
    return Status::FailedPrecondition(
        "SetEvalSet must be called before Start()");
  }
  const size_t dim = warper_->domain()->FeatureDim();
  for (const ce::LabeledExample& ex : eval_set) {
    if (ex.features.size() != dim) {
      return Status::InvalidArgument(
          "eval example feature dim does not match the domain");
    }
  }
  eval_set_ = std::move(eval_set);
  return Status::OK();
}

Status EstimationServer::Start() {
  util::MutexLock lk(&mu_);
  if (started_ || stop_) {
    return Status::FailedPrecondition(
        "EstimationServer::Start: already started or stopped");
  }
  // Every serving knob checked once, up front (ServeConfig::Validate is the
  // single source of truth — no ad-hoc re-checks downstream).
  WARPER_RETURN_NOT_OK(config_.Validate());
  // The gate baseline for version 1 and the proof the warper is usable:
  // CaptureModuleState fails before a successful Initialize().
  WARPER_RETURN_NOT_OK(PublishCurrent(
      eval_set_.empty() ? 0.0 : ce::ModelGmq(*warper_->model(), eval_set_)));
  batcher_ = std::make_unique<MicroBatcher>(config_, &store_,
                                            warper_->domain()->FeatureDim());
  if (options_.dispatch_pool != nullptr) {
    WARPER_RETURN_NOT_OK(batcher_->StartOnPool(options_.dispatch_pool));
  } else {
    WARPER_RETURN_NOT_OK(batcher_->Start());
  }
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
  } else {
    // Standalone: a private single-worker executor reproduces the old
    // one-adaptation-thread-per-server behavior.
    owned_executor_ = std::make_unique<AdaptationExecutor>(config_);
    WARPER_RETURN_NOT_OK(owned_executor_->Start());
    executor_ = owned_executor_.get();
  }
  started_ = true;
  return Status::OK();
}

void EstimationServer::Stop() {
  {
    util::MutexLock lk(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  // Order matters: the private executor's workers call Adapt on this
  // object, so they must be joined before anything is torn down. A shared
  // executor is the fleet's to stop (before it stops this server).
  if (owned_executor_ != nullptr) owned_executor_->Stop();
  if (batcher_ != nullptr) batcher_->Stop();
}

bool EstimationServer::running() const {
  util::MutexLock lk(&mu_);
  return started_ && !stop_;
}

Result<EstimateResponse> EstimationServer::Estimate(
    const EstimateRequest& request) {
  if (batcher_ == nullptr) {
    return Status::FailedPrecondition("EstimationServer is not running");
  }
  return batcher_->Estimate(request);
}

std::future<Result<EstimateResponse>> EstimationServer::EstimateAsync(
    EstimateRequest request) {
  if (batcher_ == nullptr) {
    std::promise<Result<EstimateResponse>> failed;
    failed.set_value(
        Status::FailedPrecondition("EstimationServer is not running"));
    return failed.get_future();
  }
  return batcher_->EstimateAsync(std::move(request));
}

// --- Deprecated positional shims: thin wrappers over the struct API. ---

Result<double> EstimationServer::Estimate(std::vector<double> features,
                                          int64_t deadline_us) {
  EstimateRequest request;
  request.tenant_id = options_.tenant_id;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  Result<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return response.status();
  return response.ValueOrDie().estimate;
}

std::future<Result<double>> EstimationServer::EstimateAsync(
    std::vector<double> features, int64_t deadline_us) {
  EstimateRequest request;
  request.tenant_id = options_.tenant_id;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  std::future<Result<EstimateResponse>> inner =
      EstimateAsync(std::move(request));
  return std::async(std::launch::deferred,
                    [f = std::move(inner)]() mutable -> Result<double> {
                      Result<EstimateResponse> r = f.get();
                      if (!r.ok()) return r.status();
                      return r.ValueOrDie().estimate;
                    });
}

std::future<Result<AdaptationOutcome>> EstimationServer::SubmitInvocation(
    core::Warper::Invocation invocation) {
  {
    util::MutexLock lk(&mu_);
    if (!started_ || stop_) {
      std::promise<Result<AdaptationOutcome>> failed;
      failed.set_value(
          Status::FailedPrecondition("EstimationServer is not running"));
      return failed.get_future();
    }
  }
  return executor_->Submit(
      options_.tenant_id,
      [this] {
        return PrioritySignals{drift_severity(), traffic_since_adapt(),
                               offender_pressure()};
      },
      [this, inv = std::move(invocation)] { return Adapt(inv); });
}

double EstimationServer::traffic_since_adapt() const {
  if (batcher_ == nullptr) return 0.0;
  uint64_t served = batcher_->served_total();
  uint64_t at_last = served_at_last_adapt_.load(std::memory_order_relaxed);
  return served > at_last ? static_cast<double>(served - at_last) : 0.0;
}

Status EstimationServer::ReportObservation(const std::vector<double>& features,
                                           double actual) {
  {
    util::MutexLock lk(&mu_);
    if (!started_ || stop_) {
      return Status::FailedPrecondition("EstimationServer is not running");
    }
  }
  if (features.size() != warper_->domain()->FeatureDim()) {
    return Status::InvalidArgument(
        "ReportObservation: feature dim does not match the domain");
  }
  // The error is measured against the snapshot serving right now — the
  // estimate the optimizer actually planned with — not against the warper's
  // in-adaptation model.
  std::shared_ptr<const ModelSnapshot> snapshot = store_.Current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no published snapshot");
  }
  double estimated = snapshot->model().EstimateCardinality(features);
  warper_->tracker().Observe(features, estimated, actual);
  offender_pressure_.store(warper_->tracker().UnhealthyShare(),
                           std::memory_order_relaxed);
  return Status::OK();
}

Result<AdaptationOutcome> EstimationServer::Adapt(
    const core::Warper::Invocation& invocation) {
  WARPER_SPAN("serve.adapt");
  std::shared_ptr<const ModelSnapshot> last_good = store_.Current();
  Result<core::Warper::InvocationResult> invoked = warper_->Invoke(invocation);
  if (!invoked.ok()) return invoked.status();

  AdaptationOutcome outcome;
  outcome.result = invoked.MoveValueOrDie();
  outcome.version = store_.CurrentVersion();
  drift_severity_.store(outcome.result.drift_severity,
                        std::memory_order_relaxed);
  if (tenant_drift_severity_ != nullptr) {
    tenant_drift_severity_->Set(outcome.result.drift_severity);
  }
  offender_pressure_.store(warper_->tracker().UnhealthyShare(),
                           std::memory_order_relaxed);
  if (batcher_ != nullptr) {
    served_at_last_adapt_.store(batcher_->served_total(),
                                std::memory_order_relaxed);
  }
  if (!eval_set_.empty()) {
    // Stable benchmark: compare against the score the serving version was
    // published with, on the same examples.
    outcome.gate_before = last_good->gmq();
    outcome.gate_after = ce::ModelGmq(*warper_->model(), eval_set_);
  } else {
    // Fall back to the invocation's own recent labeled window; both stay
    // zero when it had no labels, and the gate passes vacuously.
    outcome.gate_before = outcome.result.gmq_before;
    outcome.gate_after = outcome.result.gmq_after;
  }

  const double tolerance = config_.regression_tolerance;
  const bool regressed = outcome.gate_before > 0.0 &&
                         outcome.gate_after > tolerance * outcome.gate_before;
  if (regressed) {
    // §3.4 rollback: put M and E/G/D back to the last published version so
    // the next episode does not refine on top of the regressed weights.
    // outcome.version deliberately keeps the pre-pass serving version — the
    // rejected model never had one (see AdaptationOutcome::version).
    WARPER_RETURN_NOT_OK(warper_->model()->RestoreFrom(last_good->model()));
    WARPER_RETURN_NOT_OK(warper_->RestoreModuleState(last_good->modules()));
    GetServerMetrics().rollbacks->Increment();
    if (tenant_rollbacks_ != nullptr) tenant_rollbacks_->Increment();
    outcome.rolled_back = true;
    return outcome;
  }
  if (outcome.result.model_updated) {
    WARPER_RETURN_NOT_OK(PublishCurrent(outcome.gate_after));
    outcome.published = true;
    outcome.version = store_.CurrentVersion();
  }
  return outcome;
}

Status EstimationServer::PublishCurrent(double gmq) {
  std::shared_ptr<const ce::CardinalityEstimator> clone =
      warper_->model()->Clone();
  if (clone == nullptr) {
    return Status::FailedPrecondition(
        warper_->model()->Name() + " does not support Clone(); cannot serve");
  }
  Result<core::Warper::ModuleState> modules = warper_->CaptureModuleState();
  WARPER_RETURN_NOT_OK(modules.status());
  store_.Publish(std::make_shared<const ModelSnapshot>(
      next_version_++, std::move(clone), modules.MoveValueOrDie(), gmq));
  GetServerMetrics().publishes->Increment();
  if (tenant_publishes_ != nullptr) tenant_publishes_->Increment();
  if (options_.fleet_epoch != nullptr) {
    uint64_t epoch =
        options_.fleet_epoch->fetch_add(1, std::memory_order_acq_rel) + 1;
    GetServerMetrics().fleet_epoch->Set(static_cast<double>(epoch));
  }
  return Status::OK();
}

}  // namespace warper::serve
