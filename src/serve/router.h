// The fleet's tenant/predicate router: maps a request to the shard (one
// per-tenant EstimationServer) that should serve it.
//
// Two routing modes:
//   - by tenant: ShardFor(tenant_id) — exact lookup, NotFound for tenants
//     never registered;
//   - by predicate: ShardForFeatures(features) — FNV-1a over the encoded
//     predicate bytes, for callers that partition one logical workload
//     across shards instead of carrying an explicit tenant id.
//
// Concurrency contract: build-then-freeze. AddTenant is setup-phase only
// (single-threaded, before the fleet starts); Freeze() publishes the table
// with release semantics, after which lookups are wait-free reads of an
// immutable map — the serving hot path never takes a lock here. Lookups
// before Freeze() fail with FailedPrecondition rather than race.
#ifndef WARPER_SERVE_ROUTER_H_
#define WARPER_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace warper::serve {

class ShardRouter {
 public:
  ShardRouter() = default;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Registers `tenant_id` as served by shard `shard`. Setup phase only (not
  // thread-safe); InvalidArgument on a duplicate tenant, FailedPrecondition
  // after Freeze().
  Status AddTenant(uint64_t tenant_id, size_t shard);

  // Publishes the routing table. Lookups are valid (and wait-free) only
  // after this. Idempotent.
  void Freeze();
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  // Shard serving `tenant_id`; NotFound for unregistered tenants,
  // FailedPrecondition before Freeze().
  WARPER_HOT_PATH Result<size_t> ShardFor(uint64_t tenant_id) const;

  // Deterministic predicate-hash routing over all registered shards
  // (FNV-1a over the feature bytes, modulo the shard count).
  // FailedPrecondition before Freeze() or with zero shards.
  WARPER_HOT_PATH Result<size_t> ShardForFeatures(
      const std::vector<double>& features) const;

  size_t NumTenants() const { return map_.size(); }
  // Shards = max registered shard index + 1 (the fleet registers tenant i on
  // shard i, so this equals the tenant count there).
  size_t NumShards() const { return num_shards_; }

 private:
  std::unordered_map<uint64_t, size_t> map_;
  size_t num_shards_ = 0;
  // Release/acquire pair: Freeze() is the publication point for map_ and
  // num_shards_; readers that observe frozen_ == true see the final table.
  std::atomic<bool> frozen_{false};
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_ROUTER_H_
