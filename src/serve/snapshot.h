// Versioned immutable model snapshots with RCU-style publication (§3.4).
//
// The serving layer never lets optimizer traffic touch the model the
// adaptation loop is mutating: every published version is a deep clone of M
// plus the captured parameters of E/G/D, frozen at publish time. Readers
// grab the current version with one atomic shared_ptr load and compute
// against it for as long as they like; a concurrent Publish() swaps the
// pointer and the old version dies when its last reader drops it. No reader
// ever blocks on a swap, and no swap ever waits for readers.
#ifndef WARPER_SERVE_SNAPSHOT_H_
#define WARPER_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "ce/estimator.h"
#include "core/warper.h"
#include "util/annotations.h"

namespace warper::serve {

// One immutable published version of the serving bundle. Nothing in it
// mutates after construction, so concurrent EstimateTargets() calls against
// model() need no synchronization.
class ModelSnapshot {
 public:
  // `model` must be a private clone — the snapshot freezes it; `gmq` is the
  // eval score this version passed its publish gate with (the baseline the
  // next gate compares against).
  ModelSnapshot(uint64_t version,
                std::shared_ptr<const ce::CardinalityEstimator> model,
                core::Warper::ModuleState modules, double gmq)
      : version_(version),
        model_(std::move(model)),
        modules_(std::move(modules)),
        gmq_(gmq) {}

  uint64_t version() const { return version_; }
  const ce::CardinalityEstimator& model() const { return *model_; }
  const core::Warper::ModuleState& modules() const { return modules_; }
  double gmq() const { return gmq_; }

 private:
  uint64_t version_;
  std::shared_ptr<const ce::CardinalityEstimator> model_;
  core::Warper::ModuleState modules_;
  double gmq_;
};

// The publication point. Publish() is rare (once per adaptation pass);
// Current() is the read side of every estimate and must stay wait-free for
// practical purposes — it is a single std::atomic<std::shared_ptr> load.
//
// Deliberately carries no util::Mutex / thread-safety annotations: there is
// no lock here to annotate. The whole class is RCU-style publication over
// one atomic shared_ptr, and the invariant that matters — snapshots are
// immutable after Publish() — is enforced by ModelSnapshot's const-only
// surface, not by a capability (see DESIGN.md §10).
class SnapshotStore {
 public:
  // Makes `snapshot` the version every subsequent Current() returns.
  // In-flight readers keep the version they already loaded.
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  // The latest published version; nullptr before the first Publish().
  //
  // ThreadSanitizer note: libstdc++ implements atomic<shared_ptr> with a
  // lock bit in the control-block word, and its load() drops that bit with
  // a *relaxed* fetch_sub (bits/shared_ptr_atomic.h). The CAS total order
  // on the lock word serializes every reader against the next Publish() on
  // real hardware, but TSan sees no happens-before edge from the reader's
  // internal pointer read to the writer's internal pointer swap and
  // reports a race inside std::_Sp_atomic. tsan.supp (wired into ctest and
  // compiled in via __tsan_default_suppressions in snapshot.cc) filters
  // exactly that frame; everything outside _Sp_atomic stays checked.
  WARPER_HOT_PATH std::shared_ptr<const ModelSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  // Version number of the current snapshot; 0 before the first Publish().
  WARPER_HOT_PATH uint64_t CurrentVersion() const;

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
};

}  // namespace warper::serve

#endif  // WARPER_SERVE_SNAPSHOT_H_
