#!/usr/bin/env python3
"""clang-tidy gate with a tracked suppression baseline.

Runs clang-tidy (checks from .clang-tidy) over every translation unit in a
compile_commands.json and fails iff a finding is NOT in
tools/clang_tidy_baseline.txt. The baseline exists so the gate could be
introduced over a non-empty codebase without a flag-day cleanup: every entry
is tracked debt, visible in review, and the gate reports entries that no
longer fire so the file only ever shrinks.

Usage:
  tools/check_clang_tidy.py -p build                 # gate (CI)
  tools/check_clang_tidy.py -p build --update-baseline   # rewrite baseline

Findings are normalized to "relative/path.cc:check-name" — no line numbers,
so unrelated edits above a finding do not churn the baseline.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from multiprocessing.pool import ThreadPool

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")

# "path:line:col: warning: message [check-name]"
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):\d+:\d+:\s+(?:warning|error):\s+.*\[(?P<check>[\w.,-]+)\]\s*$"
)


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(f"error: {path} not found; configure with CMake first "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(path) as f:
        entries = json.load(f)
    files = []
    for entry in entries:
        src = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        # First-party code only: skip generated files and anything outside
        # the repo (e.g. _deps fetched by CMake).
        rel = os.path.relpath(src, REPO_ROOT)
        if rel.startswith(".."):
            continue
        if rel.split(os.sep)[0] in ("src", "tests", "bench", "examples"):
            files.append(src)
    return sorted(set(files))


def run_tidy(tidy, build_dir, files, jobs):
    findings = set()
    failures = []

    def one(src):
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", src],
            capture_output=True, text=True)
        return src, proc

    with ThreadPool(jobs) as pool:
        for src, proc in pool.imap_unordered(one, files):
            for line in proc.stdout.splitlines():
                m = FINDING_RE.match(line)
                if not m:
                    continue
                rel = os.path.relpath(
                    os.path.normpath(m.group("path")), REPO_ROOT)
                if rel.startswith(".."):
                    continue  # finding in a system/third-party header
                for check in m.group("check").split(","):
                    findings.add(f"{rel}:{check}")
            # clang-tidy exits non-zero on hard errors (bad flags, missing
            # headers) even with no findings; surface those separately.
            if proc.returncode != 0 and "error:" in (proc.stdout + proc.stderr):
                failures.append((src, proc.stdout + proc.stderr))
    return findings, failures


def read_baseline():
    if not os.path.exists(BASELINE):
        return set()
    with open(BASELINE) as f:
        return {
            line.strip() for line in f
            if line.strip() and not line.lstrip().startswith("#")
        }


def write_baseline(findings):
    with open(BASELINE, "w") as f:
        f.write("# clang-tidy suppression baseline — tracked debt, one\n"
                "# 'path:check-name' per line. Regenerate (only ever to\n"
                "# shrink it) with: tools/check_clang_tidy.py -p build "
                "--update-baseline\n")
        for item in sorted(findings):
            f.write(item + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: autodetect)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 2)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    args = parser.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if not tidy:
        for ver in range(25, 11, -1):
            tidy = shutil.which(f"clang-tidy-{ver}")
            if tidy:
                break
    if not tidy:
        sys.exit("error: clang-tidy not found on PATH")

    files = load_compile_commands(args.build_dir)
    if not files:
        sys.exit("error: no first-party translation units in "
                 "compile_commands.json")
    print(f"check_clang_tidy: {tidy}, {len(files)} translation units, "
          f"{args.jobs} jobs")

    findings, failures = run_tidy(tidy, args.build_dir, files, args.jobs)

    if failures:
        for src, output in failures[:5]:
            print(f"\n--- clang-tidy failed on {src} ---\n{output}",
                  file=sys.stderr)
        sys.exit(f"error: clang-tidy failed on {len(failures)} files")

    if args.update_baseline:
        write_baseline(findings)
        print(f"baseline rewritten: {len(findings)} entries")
        return

    baseline = read_baseline()
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)

    if fixed:
        print(f"\n{len(fixed)} baseline entries no longer fire — remove them "
              f"from {os.path.relpath(BASELINE, REPO_ROOT)}:")
        for item in fixed:
            print(f"  {item}")
    if new:
        print(f"\n{len(new)} new findings (not in baseline):",
              file=sys.stderr)
        for item in new:
            print(f"  {item}", file=sys.stderr)
        sys.exit(1)
    print(f"clang-tidy gate: clean "
          f"({len(findings)} findings, all baselined)"
          if findings else "clang-tidy gate: clean (no findings)")


if __name__ == "__main__":
    main()
