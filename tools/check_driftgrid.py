#!/usr/bin/env python3
"""DriftLab grid gate: structural + regression checks on BENCH_driftgrid.json.

Structural (always enforced):
  - at least 3 drift families, each with a full intensity x cadence grid of
    at least 3 x 3 cells;
  - every cell carries a gmq_curve spanning all steps, a parseable drift
    spec string, and a finite gmq_final.

Regression (against tools/driftgrid_baseline.json, keyed by fast/full mode):
  - each cell's gmq_final must stay within a tolerance band of the committed
    baseline (15% relative, with a 0.30 absolute floor so near-1.0 GMQs do
    not gate on noise). A drifted cell quietly regressing here means the
    adaptation loop stopped keeping up with that scenario shape.
  - if the baseline has no section for the current mode, only the structural
    checks run (with a warning) — full-mode runs are too slow for CI, so the
    committed baseline typically covers fast mode only.

Usage:
  tools/check_driftgrid.py --check BENCH_driftgrid.json            # gate (CI)
  tools/check_driftgrid.py --update-baseline BENCH_driftgrid.json  # refresh
"""

import argparse
import json
import math
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "driftgrid_baseline.json")

MIN_FAMILIES = 3
MIN_INTENSITIES = 3
MIN_CADENCES = 3
REL_TOLERANCE = 0.15
ABS_FLOOR = 0.30


def structural_errors(report):
    errors = []
    families = report.get("families", [])
    if len(families) < MIN_FAMILIES:
        errors.append(f"only {len(families)} families, need >= {MIN_FAMILIES}")
    steps = report.get("steps", 0)
    for family in families:
        name = family.get("family", "<unnamed>")
        cells = family.get("cells", [])
        intensities = {c.get("intensity") for c in cells}
        cadences = {c.get("cadence") for c in cells}
        if len(intensities) < MIN_INTENSITIES or len(cadences) < MIN_CADENCES:
            errors.append(
                f"family '{name}': grid is {len(intensities)} intensities x "
                f"{len(cadences)} cadences, need >= "
                f"{MIN_INTENSITIES} x {MIN_CADENCES}")
        if len(cells) != len(intensities) * len(cadences):
            errors.append(
                f"family '{name}': {len(cells)} cells does not fill the "
                f"{len(intensities)} x {len(cadences)} grid")
        for cell in cells:
            drift = cell.get("drift", "")
            if not drift:
                errors.append(f"family '{name}': cell missing drift spec")
                continue
            # The curve carries the pre-adaptation (α) point plus one per
            # adaptation step.
            curve = cell.get("gmq_curve", [])
            if len(curve) != steps + 1:
                errors.append(
                    f"family '{name}' cell '{drift}': gmq_curve has "
                    f"{len(curve)} points, run has {steps} steps (expect "
                    f"{steps + 1})")
            final = cell.get("gmq_final")
            if not isinstance(final, (int, float)) or not math.isfinite(final):
                errors.append(
                    f"family '{name}' cell '{drift}': gmq_final is not a "
                    "finite number")
    return errors


def cell_index(report):
    """(family, drift-spec) -> gmq_final, the regression-gated quantity."""
    index = {}
    for family in report.get("families", []):
        for cell in family.get("cells", []):
            index[(family.get("family"), cell.get("drift"))] = \
                cell.get("gmq_final")
    return index


def regression_errors(report, baseline_mode):
    errors = []
    current = cell_index(report)
    expected = {tuple(k.split("|", 1)): v for k, v in baseline_mode.items()}
    for key, base in sorted(expected.items()):
        got = current.get(key)
        if got is None:
            errors.append(f"cell {key[0]}|{key[1]} present in baseline but "
                          "missing from the report")
            continue
        allowed = max(abs(base) * REL_TOLERANCE, ABS_FLOOR)
        if got > base + allowed:
            errors.append(
                f"cell {key[0]}|{key[1]}: gmq_final {got:.3f} regressed past "
                f"baseline {base:.3f} + tolerance {allowed:.3f}")
    for key in sorted(set(current) - set(expected)):
        errors.append(f"cell {key[0]}|{key[1]} is new — refresh the baseline "
                      "with --update-baseline")
    return errors


def mode_key(report):
    return "fast" if report.get("fast") else "full"


def read_baseline():
    if not os.path.exists(BASELINE):
        return {}
    with open(BASELINE) as f:
        return json.load(f)


def write_baseline(report):
    baseline = read_baseline()
    baseline[mode_key(report)] = {
        f"{family}|{drift}": round(gmq, 3)
        for (family, drift), gmq in sorted(cell_index(report).items())
    }
    with open(BASELINE, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_driftgrid.json to check")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite this mode's baseline section from the "
                             "report")
    args = parser.parse_args()

    with open(args.report) as f:
        report = json.load(f)
    if report.get("bench") != "driftgrid":
        sys.exit(f"error: {args.report} is not a driftgrid report")

    errors = structural_errors(report)
    if errors:
        print(f"check_driftgrid: {len(errors)} structural error(s)",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)

    if args.update_baseline:
        write_baseline(report)
        print(f"baseline section '{mode_key(report)}' rewritten: "
              f"{len(cell_index(report))} cells -> "
              f"{os.path.relpath(BASELINE, REPO_ROOT)}")
        return

    if args.check:
        baseline = read_baseline()
        mode = mode_key(report)
        if mode not in baseline:
            print(f"check_driftgrid: warning: no '{mode}' section in "
                  f"{os.path.relpath(BASELINE, REPO_ROOT)}; structural "
                  "checks only")
        else:
            errors = regression_errors(report, baseline[mode])
            if errors:
                print(f"check_driftgrid: {len(errors)} regression(s)",
                      file=sys.stderr)
                for e in errors:
                    print(f"  {e}", file=sys.stderr)
                sys.exit(1)

    families = report.get("families", [])
    cells = sum(len(f.get("cells", [])) for f in families)
    print(f"check_driftgrid: clean ({len(families)} families, {cells} cells, "
          f"mode {mode_key(report)})")


if __name__ == "__main__":
    main()
