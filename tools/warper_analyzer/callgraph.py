"""Name-indexed call graph with conservative resolution.

Resolution is textual (no types): a call site links to every known function
whose name matches, narrowed by explicit qualifiers, then same-class, then
same-namespace. Virtual dispatch and function pointers therefore resolve to
every override/candidate — a deliberate over-approximation: for reachability
rules (determinism, hot-path purity) a missed edge hides a real violation,
while a spurious edge at worst costs a rationale-tagged baseline entry.
"""

from collections import deque


class CallGraph:
    def __init__(self, program):
        self.program = program
        self.by_name = {}
        for fn in program.functions.values():
            self.by_name.setdefault(fn.name, []).append(fn)

    def resolve(self, caller, call):
        cands = self.by_name.get(call.name, [])
        if not cands:
            return []
        if call.qualifier:
            want = call.qualifier.split("::") + [call.name]
            suffixed = [c for c in cands
                        if c.qual_name.split("::")[-len(want):] == want]
            if suffixed:
                return suffixed
        if call.is_member and caller.cls:
            same_class = [c for c in cands if c.cls == caller.cls]
            if same_class:
                return same_class
        same_ns = [c for c in cands if c.namespace == caller.namespace]
        if same_ns and len(same_ns) < len(cands):
            return same_ns
        return cands

    def reachable(self, root, rule):
        """BFS over resolved call edges from `root`.

        Returns {FunctionInfo: parent_or_None}. A function carrying a
        WARPER_ANALYZER_SUPPRESS for `rule` is a barrier: neither its own
        sinks nor anything only reachable through it is reported (the
        suppression covers the subtree — e.g. a handle-cache function whose
        one-time registry initialization is amortized).
        """
        if rule in root.suppressions:
            return {}
        parents = {root: None}
        queue = deque([root])
        while queue:
            fn = queue.popleft()
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    if callee in parents:
                        continue
                    if rule in callee.suppressions:
                        continue  # barrier
                    parents[callee] = fn
                    if callee.is_definition:
                        queue.append(callee)
        return parents

    @staticmethod
    def trace(parents, fn):
        chain = []
        node = fn
        while node is not None:
            chain.append(node.short())
            node = parents.get(node)
        return list(reversed(chain))
