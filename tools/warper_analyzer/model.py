"""Shared IR between the frontends and the rule engine.

Both frontends (textual and clang.cindex) lower a translation unit to the
same three things per function: its annotations, its outgoing call sites,
and its body token stream (for the local rules). The rule engine never
looks at frontend-specific state, so findings are comparable — and
baseline-stable — across frontends.
"""

# Annotation macro names (src/util/annotations.h) → canonical tags. The
# clang frontend sees them as [[clang::annotate("warper::<tag>")]]; the
# textual frontend sees the macro token itself.
ANNOTATION_MACROS = {
    "WARPER_DETERMINISTIC": "deterministic",
    "WARPER_HOT_PATH": "hot_path",
    "WARPER_BLOCKING": "blocking",
}
ANNOTATE_ATTR_PREFIX = "warper::"

RULES = (
    "determinism-purity",
    "hot-path-purity",
    "rcu-snapshot-lifetime",
    "result-flow",
)
# Misuse of the suppression macro itself (untagged rationale, unknown rule).
# Deliberately NOT part of RULES: it cannot be suppressed or baselined.
META_RULE_BAD_SUPPRESSION = "bad-suppression"


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("name", "qualifier", "is_member", "line", "token_index")

    def __init__(self, name, qualifier="", is_member=False, line=0,
                 token_index=-1):
        self.name = name            # last component, e.g. "ShardFor"
        self.qualifier = qualifier  # textual qualifier, e.g. "router_." or "ns::"
        self.is_member = is_member
        self.line = line
        self.token_index = token_index  # index into FunctionInfo.body


class FunctionInfo:
    """One function definition (or annotated declaration)."""

    __slots__ = ("qual_name", "name", "cls", "namespace", "file", "line",
                 "end_line", "annotations", "calls", "body", "params",
                 "is_definition", "suppressions")

    def __init__(self, qual_name, name, cls, namespace, file, line):
        self.qual_name = qual_name  # e.g. warper::serve::ShardRouter::ShardFor
        self.name = name
        self.cls = cls              # enclosing class name ("" for free fns)
        self.namespace = namespace  # e.g. warper::serve
        self.file = file            # repo-relative path
        self.line = line
        self.end_line = line
        self.annotations = set()    # subset of {"deterministic", ...}
        self.calls = []             # [CallSite]
        self.body = []              # [Token] — body only, braces excluded
        self.params = []            # parameter names, best effort
        self.is_definition = False
        self.suppressions = {}      # rule -> reason string

    def short(self):
        """Class-qualified name without namespaces — the stable identity
        used in finding keys (namespace moves should not churn baselines)."""
        return (self.cls + "::" + self.name) if self.cls else self.name

    def __repr__(self):
        return f"<fn {self.qual_name} {self.file}:{self.line}>"


class Finding:
    """One rule violation."""

    def __init__(self, rule, file, line, function, message, trace=None,
                 detail=""):
        self.rule = rule
        self.file = file            # repo-relative file of the violation
        self.line = line
        self.function = function    # short() of the containing function
        self.message = message
        self.trace = trace or []    # call chain, root first, short() names
        self.detail = detail        # sink kind, e.g. "alloc" / "clock"
        self.suppressed_by = None   # reason string when suppressed

    def key(self):
        """Line-free stable identity for the baseline (mirrors the
        clang-tidy gate: edits above a finding must not churn it)."""
        parts = [self.file, self.rule, self.function]
        if self.detail:
            parts.append(self.detail)
        return ":".join(parts)

    def to_json(self):
        doc = {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "key": self.key(),
        }
        if self.trace:
            doc["trace"] = self.trace
        if self.detail:
            doc["detail"] = self.detail
        if self.suppressed_by is not None:
            doc["suppressed_by"] = self.suppressed_by
        return doc


class Program:
    """The whole-run analysis input: every function the frontend saw."""

    def __init__(self):
        self.functions = {}   # qual_name -> FunctionInfo (defs win over decls)
        self.files = []       # repo-relative paths scanned
        self.frontend = ""    # "textual" or "clang"

    def add(self, fn):
        existing = self.functions.get(fn.qual_name)
        if existing is None:
            self.functions[fn.qual_name] = fn
            return fn
        # Merge: annotations union (a header decl may carry the annotation
        # the .cc definition omits); the definition's body/calls win.
        existing.annotations |= fn.annotations
        for rule, reason in fn.suppressions.items():
            existing.suppressions.setdefault(rule, reason)
        if fn.is_definition and not existing.is_definition:
            existing.body = fn.body
            existing.calls = fn.calls
            existing.params = fn.params
            existing.file = fn.file
            existing.line = fn.line
            existing.end_line = fn.end_line
            existing.is_definition = True
        return existing

    def definitions(self):
        return [f for f in self.functions.values() if f.is_definition]
