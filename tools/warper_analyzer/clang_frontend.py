"""clang.cindex frontend: real AST lowering to the shared IR.

Used when the `clang` Python bindings and a loadable libclang are present
(CI installs python3-clang + libclang; developer machines may not have
them — `--frontend auto` falls back to the textual frontend).

Function discovery, qualified names, and annotation attributes come from
the AST; body token streams are the *pre-expansion* source tokens of the
function's compound statement, converted to the lexer's Token shape so the
local rules and call extraction are shared verbatim with the textual
frontend (one rule engine, two frontends — findings stay comparable).
"""

import os

from lexer import Token
from model import ANNOTATE_ATTR_PREFIX, ANNOTATION_MACROS, FunctionInfo, \
    Program
from textual_frontend import _extract_suppressions, extract_calls


class ClangUnavailable(Exception):
    """Raised when clang.cindex cannot be imported or libclang won't load."""


def _import_cindex():
    try:
        from clang import cindex
    except ImportError as exc:
        raise ClangUnavailable(f"python clang bindings missing ({exc})")
    try:
        index = cindex.Index.create()
    except Exception as exc:  # cindex.LibclangError has no stable base
        raise ClangUnavailable(f"libclang failed to load ({exc})")
    return cindex, index


_FN_KINDS = None  # resolved lazily once cindex imports


def load(build_dir, sources, prefixes, repo_root):
    cindex, index = _import_cindex()
    global _FN_KINDS
    K = cindex.CursorKind
    _FN_KINDS = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                 K.DESTRUCTOR, K.FUNCTION_TEMPLATE}

    program = Program()
    program.frontend = "clang"
    if sources:
        jobs = [(os.path.abspath(p), ["-std=c++17", "-I" + repo_root])
                for p in sources]
    else:
        db_path = os.path.join(build_dir, "compile_commands.json")
        if not os.path.exists(db_path):
            raise ClangUnavailable(f"no compile database at {db_path}")
        db = cindex.CompilationDatabase.fromDirectory(build_dir)
        jobs = []
        seen = set()
        for cmd in db.getAllCompileCommands():
            path = cmd.filename
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(cmd.directory, path))
            rel = os.path.relpath(path, repo_root)
            if not any(rel.startswith(p) for p in prefixes):
                continue
            if path in seen:
                continue
            seen.add(path)
            # Drop the compiler argv[0] and the -o/-c plumbing; keep flags.
            args = []
            it = iter(list(cmd.arguments)[1:])
            for a in it:
                if a == "-o":
                    next(it, None)
                    continue
                if a == "-c" or a == path:
                    continue
                args.append(a)
            jobs.append((path, args))

    opts = 0  # keep function bodies; local rules need them
    for path, args in sorted(jobs):
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        try:
            tu = index.parse(path, args=args, options=opts)
        except Exception as exc:
            raise ClangUnavailable(f"parse failed for {rel}: {exc}")
        program.files.append(rel)
        _walk(cindex, tu.cursor, program, prefixes, repo_root, bool(sources))
    return program


def _walk(cindex, cursor, program, prefixes, repo_root, explicit_sources):
    K = cindex.CursorKind
    for child in cursor.get_children():
        loc = child.location
        if loc.file is None:
            if child.kind in (K.NAMESPACE, K.LINKAGE_SPEC):
                _walk(cindex, child, program, prefixes, repo_root,
                      explicit_sources)
            continue
        rel = os.path.relpath(loc.file.name, repo_root).replace(os.sep, "/")
        in_scope = explicit_sources or \
            any(rel.startswith(p) for p in prefixes)
        if child.kind in _FN_KINDS:
            if in_scope:
                fn = _lower_function(cindex, child, rel)
                if fn is not None:
                    program.add(fn)
        elif child.kind in (K.NAMESPACE, K.CLASS_DECL, K.STRUCT_DECL,
                            K.CLASS_TEMPLATE, K.UNION_DECL,
                            K.LINKAGE_SPEC, K.UNEXPOSED_DECL):
            _walk(cindex, child, program, prefixes, repo_root,
                  explicit_sources)


def _semantic_scopes(cindex, cursor):
    """(namespace, outer_classes, cls) from the semantic parent chain."""
    K = cindex.CursorKind
    namespaces = []
    classes = []
    node = cursor.semantic_parent
    while node is not None and node.kind != K.TRANSLATION_UNIT:
        if node.kind == K.NAMESPACE:
            if node.spelling:  # anonymous namespaces add nothing
                namespaces.insert(0, node.spelling)
        elif node.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE,
                           K.UNION_DECL):
            classes.insert(0, node.spelling)
        node = node.semantic_parent
    cls = classes[-1] if classes else ""
    return "::".join(namespaces), classes[:-1] if classes else [], cls


def _lower_function(cindex, cursor, rel):
    K = cindex.CursorKind
    name = cursor.spelling
    if not name or name.startswith("operator"):
        return None  # matches the textual frontend's documented limitation
    namespace, outer, cls = _semantic_scopes(cindex, cursor)
    qual_parts = ([namespace] if namespace else []) + outer + \
        ([cls] if cls else []) + [name]
    fn = FunctionInfo("::".join(qual_parts), name, cls, namespace, rel,
                      cursor.location.line)
    for child in cursor.get_children():
        if child.kind == K.ANNOTATE_ATTR and \
                child.spelling.startswith(ANNOTATE_ATTR_PREFIX):
            fn.annotations.add(child.spelling[len(ANNOTATE_ATTR_PREFIX):])
    try:
        fn.params = [a.spelling for a in cursor.get_arguments() if a.spelling]
    except Exception:
        pass
    body_cursor = None
    for child in cursor.get_children():
        if child.kind == K.COMPOUND_STMT:
            body_cursor = child
    if body_cursor is not None and cursor.is_definition():
        fn.is_definition = True
        fn.end_line = body_cursor.extent.end.line
        fn.body = _body_tokens(cindex, body_cursor)
        fn.calls = extract_calls(fn.body)
        _extract_suppressions(fn)
        # The annotation macros appear in the pre-expansion token stream of
        # the *declaration*, before the body — scan the declarator tokens
        # too so a textual-style annotated definition is seen identically.
        for tok in cursor.get_tokens():
            if tok.spelling in ANNOTATION_MACROS:
                fn.annotations.add(ANNOTATION_MACROS[tok.spelling])
            if tok.spelling == "{":
                break
    return fn


def _body_tokens(cindex, body_cursor):
    TK = cindex.TokenKind
    out = []
    toks = list(body_cursor.get_tokens())
    # Drop the enclosing braces (the textual frontend's bodies exclude them).
    if toks and toks[0].spelling == "{":
        toks = toks[1:]
    if toks and toks[-1].spelling == "}":
        toks = toks[:-1]
    for tok in toks:
        if tok.kind == TK.COMMENT:
            continue
        sp = tok.spelling
        line = tok.location.line
        if tok.kind in (TK.IDENTIFIER, TK.KEYWORD):
            out.append(Token("id", sp, line))
        elif tok.kind == TK.LITERAL:
            if sp.startswith(('"', 'L"', 'u"', 'U"', 'R"', 'u8"')):
                out.append(Token("str", sp, line))
            elif sp.startswith(("'", "L'", "u'", "U'")):
                out.append(Token("chr", sp, line))
            else:
                out.append(Token("num", sp, line))
        else:
            out.append(Token("punct", sp, line))
    return out
