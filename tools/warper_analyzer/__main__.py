"""warper-analyzer: semantic contract checker for the Warper repo.

Checks four cross-function contracts that plain clang-tidy cannot express
(see DESIGN.md §16): determinism purity, hot-path purity, RCU snapshot
lifetime, and Result ok()-domination. Two interchangeable frontends lower
C++ to a shared IR: `clang` (clang.cindex over the CMake compile database)
and `textual` (self-contained tokenizer, no dependencies). `auto` prefers
clang and falls back.

Typical invocations (from the repo root):
  python3 tools/warper_analyzer -p build                 # gate against baseline
  python3 tools/warper_analyzer -p build --report -      # dump findings JSON
  python3 tools/warper_analyzer -p build --update-baseline --reason "... #NNN"
  python3 tools/warper_analyzer --sources a.cc b.cc --no-baseline

Exit codes: 0 clean/baselined, 1 new findings or gate violation, 2 usage.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baseline as baseline_mod
from model import Finding, META_RULE_BAD_SUPPRESSION, RULES

DEFAULT_PREFIXES = ("src/",)


def files_from_compile_db(build_dir, prefixes, repo_root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except FileNotFoundError:
        sys.exit(f"warper-analyzer: no compile database at {db_path} "
                 f"(configure with cmake first)")
    files = []
    seen = set()
    for e in entries:
        path = e["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(e.get("directory", ""), path))
        rel = os.path.relpath(path, repo_root)
        if not any(rel.startswith(p) for p in prefixes):
            continue
        if rel not in seen and os.path.exists(path):
            seen.add(rel)
            files.append(path)
    # The textual frontend does no preprocessing, so headers (where the
    # annotations usually live) are scanned as their own inputs.
    for prefix in prefixes:
        root = os.path.join(repo_root, prefix)
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if not name.endswith((".h", ".hpp")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, repo_root)
                if rel not in seen:
                    seen.add(rel)
                    files.append(path)
    files.sort()
    return files


def suppression_meta_findings(program):
    """Misuse of WARPER_ANALYZER_SUPPRESS is itself a finding, and one that
    can be neither suppressed nor baselined: a suppression without a #NNN
    rationale (or naming an unknown rule) is unaccountable debt."""
    findings = []
    for fn in sorted(program.functions.values(), key=lambda f: f.qual_name):
        for rule, reason in sorted(fn.suppressions.items()):
            if rule not in RULES:
                findings.append(Finding(
                    META_RULE_BAD_SUPPRESSION, fn.file, fn.line, fn.short(),
                    f"WARPER_ANALYZER_SUPPRESS names unknown rule '{rule}' "
                    f"(known: {', '.join(RULES)})",
                    detail="unknown-rule:" + rule))
            elif not baseline_mod.REASON_TAG_RE.search(reason):
                findings.append(Finding(
                    META_RULE_BAD_SUPPRESSION, fn.file, fn.line, fn.short(),
                    f"WARPER_ANALYZER_SUPPRESS for '{rule}' has no #NNN "
                    f"issue tag in its reason: \"{reason}\"",
                    detail="untagged:" + rule))
    return findings


def suppression_inventory(program):
    out = []
    for fn in sorted(program.functions.values(), key=lambda f: f.qual_name):
        for rule, reason in sorted(fn.suppressions.items()):
            out.append({"function": fn.short(), "file": fn.file,
                        "rule": rule, "reason": reason})
    return out


def build_report(program, findings, suppressed):
    summary = {}
    for f in findings:
        summary[f.rule] = summary.get(f.rule, 0) + 1
    return {
        "version": 1,
        "frontend": program.frontend,
        "files_scanned": len(program.files),
        "functions": len(program.functions),
        "findings": [f.to_json() for f in findings],
        "suppressed": suppressed,
        "summary": summary,
    }


def pick_frontend(choice, args, repo_root):
    """Returns (program, note). Honors --frontend; 'auto' prefers clang."""
    if choice in ("clang", "auto"):
        try:
            import clang_frontend
            program = clang_frontend.load(args.build_dir, args.sources,
                                          tuple(args.include_prefix),
                                          repo_root)
            return program, ""
        except clang_frontend.ClangUnavailable as exc:
            if choice == "clang":
                sys.exit(f"warper-analyzer: clang frontend unavailable: "
                         f"{exc}")
            note = f"clang frontend unavailable ({exc}); using textual"
        except ImportError as exc:
            if choice == "clang":
                sys.exit(f"warper-analyzer: clang frontend unavailable: "
                         f"{exc}")
            note = f"clang frontend unavailable ({exc}); using textual"
    else:
        note = ""
    import textual_frontend
    if args.sources:
        paths = [os.path.abspath(p) for p in args.sources]
    else:
        paths = files_from_compile_db(args.build_dir,
                                      tuple(args.include_prefix), repo_root)
    program = textual_frontend.load_sources(paths, repo_root)
    return program, note


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="warper_analyzer",
        description="Semantic contract checker (determinism, hot-path "
                    "purity, RCU lifetime, Result flow).")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="CMake build dir with compile_commands.json "
                         "(default: build)")
    ap.add_argument("--sources", nargs="+", default=None,
                    help="analyze these files instead of the compile db "
                         "(fixture mode)")
    ap.add_argument("--frontend", choices=("auto", "clang", "textual"),
                    default="auto")
    ap.add_argument("--include-prefix", action="append",
                    default=None,
                    help="repo-relative path prefixes to analyze "
                         "(default: src/)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="write findings JSON to PATH ('-' for stdout)")
    ap.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline path (default: "
                         "tools/warper_analyzer_baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignore the baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current findings")
    ap.add_argument("--reason", default="",
                    help="rationale (must contain #NNN) attached to entries "
                         "added by --update-baseline")
    ap.add_argument("--list-functions", action="store_true",
                    help="debug: dump extracted functions and exit")
    args = ap.parse_args(argv)

    if args.include_prefix is None:
        args.include_prefix = list(DEFAULT_PREFIXES)
    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    rules = tuple(r for r in args.rules.split(",") if r)
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        sys.exit(f"warper-analyzer: unknown rule(s): {', '.join(unknown)}")

    program, note = pick_frontend(args.frontend, args, repo_root)
    if note:
        print(f"warper-analyzer: note: {note}", file=sys.stderr)

    if args.list_functions:
        for fn in sorted(program.functions.values(),
                         key=lambda f: (f.file, f.line)):
            tags = ",".join(sorted(fn.annotations)) or "-"
            kind = "def " if fn.is_definition else "decl"
            print(f"{fn.file}:{fn.line}: {kind} {fn.qual_name} "
                  f"[{tags}] calls={len(fn.calls)}")
        print(f"{len(program.functions)} functions in "
              f"{len(program.files)} files ({program.frontend} frontend)")
        return 0

    from callgraph import CallGraph
    import rules as rules_mod
    graph = CallGraph(program)
    findings = rules_mod.run_all(graph, rules)
    meta = suppression_meta_findings(program)
    findings = sorted(findings + meta,
                      key=lambda f: (f.file, f.rule, f.function, f.detail))
    suppressed = suppression_inventory(program)

    report = build_report(program, findings, suppressed)
    if args.report == "-":
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if args.no_baseline:
        for f in findings:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
            if f.trace:
                print(f"    call path: {' -> '.join(f.trace)}")
        print(f"warper-analyzer: {len(findings)} finding(s), "
              f"{report['files_scanned']} file(s), "
              f"{report['functions']} function(s) "
              f"({program.frontend} frontend)")
        return 1 if findings else 0

    baseline_path = args.baseline or os.path.join(
        repo_root, "tools", "warper_analyzer_baseline.json")

    # Meta-findings bypass the baseline entirely.
    gated = [f for f in findings if f.rule != META_RULE_BAD_SUPPRESSION]
    if args.update_baseline:
        if gated and not baseline_mod.REASON_TAG_RE.search(args.reason):
            prior = baseline_mod.load(baseline_path)
            if any(f.key() not in prior for f in gated):
                sys.exit("warper-analyzer: --update-baseline with new "
                         "findings requires --reason containing a #NNN "
                         "issue tag")
        prior = baseline_mod.load(baseline_path)
        reasons = {k: e["reason"] for k, e in prior.items()}
        reasons[""] = args.reason
        baseline_mod.save(baseline_path, gated, reasons)
        print(f"warper-analyzer: baseline updated with {len(gated)} "
              f"entry(ies) at {os.path.relpath(baseline_path, repo_root)}")
        if meta:
            for f in meta:
                print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
            print(f"warper-analyzer: {len(meta)} suppression problem(s) "
                  f"cannot be baselined — fix them")
            return 1
        return 0

    bl = baseline_mod.load(baseline_path)
    new, accepted, stale, bad_entries = baseline_mod.gate(gated, bl)
    ok = True
    for f in meta:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        ok = False
    for f in new:
        print(f"{f.file}:{f.line}: [NEW {f.rule}] {f.message}")
        if f.trace:
            print(f"    call path: {' -> '.join(f.trace)}")
        ok = False
    for e in bad_entries:
        print(f"baseline entry '{e['key']}' has no #NNN tag in its "
              f"reason: \"{e.get('reason', '')}\"")
        ok = False
    for k in stale:
        print(f"note: baselined finding no longer fires: {k}")
    print(f"warper-analyzer: {len(new)} new, {len(accepted)} baselined, "
          f"{len(stale)} stale, {len(meta)} suppression problem(s); "
          f"{report['files_scanned']} file(s), {report['functions']} "
          f"function(s) ({program.frontend} frontend)")
    if not ok:
        print("warper-analyzer: FAILED — fix the findings, add a "
              "WARPER_ANALYZER_SUPPRESS with a '#NNN' reason at the "
              "function, or baseline with --update-baseline --reason "
              "'<why> #NNN'.")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
