"""Tolerant C++ lexer for the textual frontend.

Produces a flat token stream with line numbers, with comments and
preprocessor directives stripped and string/char literals kept as single
tokens. This is NOT a conforming C++ lexer — it is the minimum the
warper-analyzer's textual frontend needs to recognize function definitions,
call expressions and the curated sink patterns in this repository's code
style (see textual_frontend.py for the parsing contract).
"""

from collections import namedtuple

# kind: "id" (identifier/keyword), "num", "str", "chr", "punct"
Token = namedtuple("Token", ["kind", "text", "line"])

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")

# Multi-char punctuators the frontend cares about as single tokens. "::" and
# "->" drive name qualification and member-call detection; the rest are
# joined so they cannot be half-matched ("<=" must not read as "<" "=").
_PUNCT2 = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
           "##"}
_PUNCT3 = {"<<=", ">>=", "...", "->*"}


def lex(text):
    """Tokenizes `text`. Returns a list of Token."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                i += 2
                while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                    if text[i] == "\n":
                        line += 1
                    i += 1
                i = min(n, i + 2)
                continue
        # Preprocessor directive: strip to end of line, honoring backslash
        # continuations. Only when '#' starts the (whitespace-trimmed) line;
        # token-paste '#' inside macros never reaches here because the whole
        # directive line is consumed.
        if c == "#" and _at_line_start(text, i):
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            continue
        # Raw string literal R"tag(...)tag".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j != -1:
                tag = text[i + 2:j]
                end = text.find(")" + tag + '"', j + 1)
                if end != -1:
                    body = text[i:end + len(tag) + 2]
                    tokens.append(Token("str", body, line))
                    line += body.count("\n")
                    i = end + len(tag) + 2
                    continue
        # String / char literals.
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c:
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            tokens.append(Token("str" if c == '"' else "chr",
                                text[i:j + 1], line))
            i = j + 1
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Number (loose: digits, hex, floats, exponents, separators).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuators, longest-match.
        if text[i:i + 3] in _PUNCT3:
            tokens.append(Token("punct", text[i:i + 3], line))
            i += 3
            continue
        if text[i:i + 2] in _PUNCT2:
            tokens.append(Token("punct", text[i:i + 2], line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return tokens


def _at_line_start(text, i):
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"
