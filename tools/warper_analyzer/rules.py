"""The four semantic contract rules.

Reachability rules (over the call graph):
  determinism-purity     nothing reachable from a WARPER_DETERMINISTIC
                         function may read wall clocks, ambient randomness,
                         thread ids, or addresses-as-values.
  hot-path-purity        nothing reachable from a WARPER_HOT_PATH function
                         may acquire a lock, allocate, or call a
                         WARPER_BLOCKING function. Allocations inside a
                         `return Status::...` statement are exempt (error
                         exits are not hot-path work).

Local rules (over one function's body tokens):
  rcu-snapshot-lifetime  a raw pointer/reference borrowed from an RCU
                         ModelSnapshot read must not be stored to a member
                         field or used after a WARPER_BLOCKING call.
  result-flow            Result<T>::ValueOrDie()/MoveValueOrDie() must be
                         dominated by an ok() check of the same variable
                         (if/while guard, WARPER_RETURN_NOT_OK, WARPER_CHECK,
                         gtest ASSERT/EXPECT, or a same-statement ok()).

All rules are heuristic by design (see DESIGN.md §16 for the contract);
tests/static/analyzer/ fixtures pin exactly what must and must not flag.
"""

from model import Finding

# --- shared token helpers --------------------------------------------------


def _tx(body, i):
    return body[i].text if 0 <= i < len(body) else ""


def _statement_start(body, i):
    while i > 0 and body[i - 1].text not in (";", "{", "}"):
        i -= 1
    return i


def _in_error_return(body, i):
    """True when token i sits inside a `return Status::...` statement —
    allocations building an error message on the exit path are exempt from
    hot-path purity."""
    s = _statement_start(body, i)
    saw_return = False
    for j in range(s, i):
        t = body[j].text
        if t == "return":
            saw_return = True
        elif saw_return and t == "Status" and _tx(body, j + 1) == "::":
            return True
    return False


# --- sink scanning ---------------------------------------------------------

_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock",
           "utc_clock", "file_clock"}
_TIME_FNS = {"clock_gettime", "gettimeofday", "localtime", "gmtime",
             "mktime", "ftime"}
_GROWTH_MEMBERS = {"push_back", "emplace_back", "resize", "reserve",
                   "insert", "emplace", "append", "assign", "push_front",
                   "emplace_front"}
_STD_LOCKS = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}


def determinism_sinks(fn):
    """[(kind, detail, line)] of nondeterminism sources in fn's body."""
    body = fn.body
    sinks = []
    for i, t in enumerate(body):
        if t.kind != "id":
            continue
        prev = _tx(body, i - 1)
        nxt = _tx(body, i + 1)
        if t.text == "random_device":
            sinks.append(("rng", "std::random_device", t.line))
        elif t.text == "now" and prev == "::" and \
                _tx(body, i - 2) in _CLOCKS:
            sinks.append(("clock", _tx(body, i - 2) + "::now()", t.line))
        elif t.text in _TIME_FNS and nxt == "(":
            sinks.append(("clock", t.text + "()", t.line))
        elif t.text in ("time", "clock") and nxt == "(" and \
                prev not in (".", "->"):
            sinks.append(("clock", ("std::" if prev == "::" else "") +
                          t.text + "()", t.line))
        elif t.text in ("rand", "srand") and nxt == "(" and \
                prev not in (".", "->", "::") or \
                (t.text in ("rand", "srand") and nxt == "(" and
                 prev == "::" and _tx(body, i - 2) == "std"):
            sinks.append(("rng", t.text + "()", t.line))
        elif t.text == "get_id" and prev == "::" and \
                _tx(body, i - 2) == "this_thread":
            sinks.append(("thread-id", "std::this_thread::get_id()", t.line))
        elif t.text == "reinterpret_cast" and nxt == "<" and \
                _tx(body, i + 2) in ("uintptr_t", "intptr_t", "size_t") or \
                (t.text == "reinterpret_cast" and nxt == "<" and
                 _tx(body, i + 2) == "std" and
                 _tx(body, i + 4) in ("uintptr_t", "intptr_t", "size_t")):
            sinks.append(("address-as-value",
                          "reinterpret_cast of pointer to integer", t.line))
    return sinks


def hot_path_sinks(fn):
    """[(kind, detail, line)] of allocations / lock acquisitions."""
    body = fn.body
    sinks = []
    for i, t in enumerate(body):
        if t.kind != "id":
            continue
        prev = _tx(body, i - 1)
        nxt = _tx(body, i + 1)
        kind = detail = None
        if t.text == "new" and prev not in (".", "->"):
            kind, detail = "alloc", "operator new"
        elif t.text in _GROWTH_MEMBERS and prev in (".", "->") and nxt == "(":
            kind, detail = "alloc", "." + t.text + "() (growth-prone)"
        elif t.text in ("make_unique", "make_shared"):
            kind, detail = "alloc", "std::" + t.text
        elif t.text == "to_string" and prev == "::":
            kind, detail = "alloc", "std::to_string"
        elif t.text == "string" and prev == "::" and \
                _tx(body, i - 2) == "std":
            kind, detail = "alloc", "std::string construction"
        elif t.text in ("ostringstream", "stringstream"):
            kind, detail = "alloc", "std::" + t.text
        elif t.text == "MutexLock" and prev != "~":
            kind, detail = "lock", "util::MutexLock acquisition"
        elif t.text in _STD_LOCKS:
            kind, detail = "lock", "std::" + t.text
        elif t.text in ("Lock", "lock") and prev in (".", "->") and \
                nxt == "(":
            kind, detail = "lock", "explicit ." + t.text + "()"
        if kind is None:
            continue
        if kind == "alloc" and _in_error_return(body, i):
            continue  # error-exit message construction is not hot-path work
        sinks.append((kind, detail, t.line))
    return sinks


# --- reachability rules ----------------------------------------------------


def _reach_rule(graph, rule, root_tag, sink_fn, blocking_check):
    findings = []
    seen = set()
    roots = [f for f in graph.program.functions.values()
             if root_tag in f.annotations]
    for root in roots:
        parents = graph.reachable(root, rule)
        for fn in parents:
            if not fn.is_definition:
                continue
            for kind, detail, line in sink_fn(fn):
                key = (fn.qual_name, kind, detail)
                if key in seen:
                    continue
                seen.add(key)
                trace = graph.trace(parents, fn)
                msg = (f"{root_tag.replace('_', '-')} root "
                       f"'{root.short()}' reaches {detail} in "
                       f"'{fn.short()}'")
                findings.append(Finding(rule, fn.file, line, fn.short(),
                                        msg, trace=trace, detail=kind))
            if blocking_check:
                for call in fn.calls:
                    for callee in graph.resolve(fn, call):
                        if "blocking" not in callee.annotations:
                            continue
                        if rule in callee.suppressions:
                            continue
                        key = (fn.qual_name, "blocking", callee.qual_name)
                        if key in seen:
                            continue
                        seen.add(key)
                        trace = graph.trace(parents, fn) + [callee.short()]
                        msg = (f"hot-path root '{root.short()}' reaches "
                               f"WARPER_BLOCKING function "
                               f"'{callee.short()}' via '{fn.short()}'")
                        findings.append(Finding(
                            rule, fn.file, call.line, fn.short(), msg,
                            trace=trace,
                            detail="blocking:" + callee.short()))
    return findings


def check_determinism(graph):
    return _reach_rule(graph, "determinism-purity", "deterministic",
                       determinism_sinks, blocking_check=False)


def check_hot_path(graph):
    return _reach_rule(graph, "hot-path-purity", "hot_path",
                       hot_path_sinks, blocking_check=True)


# --- rcu-snapshot-lifetime -------------------------------------------------

_SNAPSHOT_TYPES = ("ModelSnapshot",)


def check_rcu_lifetime(graph):
    findings = []
    for fn in graph.program.definitions():
        if "rcu-snapshot-lifetime" in fn.suppressions:
            continue
        findings.extend(_rcu_one(graph, fn))
    return findings


def _rcu_one(graph, fn):
    body = fn.body
    n = len(body)
    findings = []

    # 1. Snapshot locals: declarations whose initializer calls .Current()
    #    or ->Current(), or whose declared type names ModelSnapshot.
    snaps = set()
    borrows = {}  # name -> decl line
    locals_seen = set(fn.params)
    i = 0
    while i < n:
        s = i
        while i < n and body[i].text != ";":
            if body[i].text == "{":
                # Walk into nested blocks statement-by-statement.
                i += 1
                s = i
                continue
            if body[i].text == "}":
                i += 1
                s = i
                continue
            i += 1
        stmt = body[s:i]
        i += 1
        eq = next((k for k, t in enumerate(stmt) if t.text == "="), None)
        if eq is None or eq == 0:
            continue
        name_tok = stmt[eq - 1]
        if name_tok.kind != "id":
            continue
        decl_toks = [t.text for t in stmt[:eq - 1]]
        init_toks = [t.text for t in stmt[eq + 1:]]
        is_decl = bool(decl_toks) and all(
            t not in ("(", ")") for t in decl_toks) and (
            decl_toks[-1] in ("&", "*", ">", "auto", "const") or
            stmt[eq - 2].kind == "id" if eq >= 2 else False)
        if is_decl:
            locals_seen.add(name_tok.text)
        snap_init = ("Current" in init_toks or
                     any(t in _SNAPSHOT_TYPES for t in decl_toks) or
                     any(t in _SNAPSHOT_TYPES for t in init_toks))
        if is_decl and snap_init and not _derefs_any(init_toks, snaps):
            snaps.add(name_tok.text)
            continue
        # Raw borrow: pointer/ref declaration initialized by dereferencing a
        # snapshot local.
        if is_decl and ("&" in decl_toks or "*" in decl_toks) and \
                _derefs_any(init_toks, snaps):
            borrows[name_tok.text] = name_tok.line

    if not snaps and not borrows:
        return findings

    # 2. Field stores of a borrow / snapshot-deref.
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "id" and t.text.endswith("_") and \
                t.text not in locals_seen and _tx(body, i + 1) == "=" and \
                _tx(body, i - 1) not in (".", "->", "::"):
            stmt_end = i + 1
            while stmt_end < n and body[stmt_end].text != ";":
                stmt_end += 1
            rhs = [x.text for x in body[i + 2:stmt_end]]
            escaping = (_derefs_any(rhs, snaps) or
                        any(b in rhs for b in borrows) or
                        any(s in rhs and "get" in rhs for s in snaps))
            if escaping:
                findings.append(Finding(
                    "rcu-snapshot-lifetime", fn.file, t.line, fn.short(),
                    f"raw borrow from an RCU snapshot escapes into field "
                    f"'{t.text}' — the snapshot may be retired while the "
                    f"field still points into it",
                    detail="field-store:" + t.text))
        i += 1

    # 3. Borrow used after a WARPER_BLOCKING call.
    if borrows:
        blocking_at = None
        blocking_name = ""
        for call in sorted(fn.calls, key=lambda c: c.token_index):
            for callee in graph.resolve(fn, call):
                if "blocking" in callee.annotations:
                    blocking_at = call.token_index
                    blocking_name = callee.short()
                    break
            if blocking_at is not None:
                break
        if blocking_at is not None:
            for j in range(blocking_at + 1, n):
                t = body[j]
                if t.kind == "id" and t.text in borrows:
                    findings.append(Finding(
                        "rcu-snapshot-lifetime", fn.file, t.line,
                        fn.short(),
                        f"raw borrow '{t.text}' from an RCU snapshot is "
                        f"used after blocking call '{blocking_name}' — "
                        f"hold the shared_ptr, not the raw reference, "
                        f"across blocking points",
                        detail="use-across-blocking:" + t.text))
                    break
    return findings


def _derefs_any(toks, names):
    for k, t in enumerate(toks):
        if t in names:
            nxt = toks[k + 1] if k + 1 < len(toks) else ""
            prv = toks[k - 1] if k > 0 else ""
            if nxt in ("->", ".") or prv == "*" or \
                    (nxt == "." and toks[k + 2:k + 3] == ["get"]):
                return True
    return False


# --- result-flow -----------------------------------------------------------

_GUARD_MACROS = {"WARPER_CHECK", "WARPER_CHECK_MSG", "CHECK", "ASSERT_TRUE",
                 "EXPECT_TRUE", "ASSERT_OK", "QCHECK"}
_DIVERGE = {"return", "throw", "continue", "break", "abort", "exit"}


def check_result_flow(graph):
    findings = []
    for fn in graph.program.definitions():
        if "result-flow" in fn.suppressions:
            continue
        findings.extend(_result_flow_one(fn))
    return findings


def _result_flow_one(fn):
    body = fn.body
    n = len(body)
    findings = []
    validated = []      # [(name, depth)]
    stmt_scoped = []    # [(name, expires_at_index)] for braceless then-blocks
    depth = 0
    i = 0
    while i < n:
        t = body[i]
        stmt_scoped = [(nm, e) for nm, e in stmt_scoped if e > i]
        if t.text == "{":
            depth += 1
            i += 1
            continue
        if t.text == "}":
            depth -= 1
            validated = [(nm, d) for nm, d in validated if d <= depth]
            i += 1
            continue
        if t.kind == "id" and t.text == "WARPER_RETURN_NOT_OK":
            # WARPER_RETURN_NOT_OK(x.status()) validates x from here on.
            end = _match_paren(body, i + 1)
            seg = [x.text for x in body[i + 2:end]]
            if len(seg) >= 3 and seg[1] == "." and seg[2] == "status":
                validated.append((seg[0], depth))
            i = end + 1
            continue
        if t.kind == "id" and t.text in _GUARD_MACROS:
            end = _match_paren(body, i + 1)
            for nm in _ok_checked(body, i + 2, end, negated=False):
                validated.append((nm, depth))
            i = end + 1
            continue
        if t.kind == "id" and t.text in ("if", "while") and \
                _tx(body, i + 1) == "(":
            cond_end = _match_paren(body, i + 1)
            pos = _ok_checked(body, i + 2, cond_end, negated=False)
            neg = _ok_checked(body, i + 2, cond_end, negated=True)
            after = cond_end + 1
            if _tx(body, after) == "{":
                then_end = _match_brace(body, after)
                diverges = _block_diverges(body, after + 1, then_end)
                for nm in pos:
                    validated.append((nm, depth + 1))
            else:
                then_end = after
                while then_end < n and body[then_end].text != ";":
                    then_end += 1
                diverges = _tx(body, after) in _DIVERGE
                for nm in pos:
                    stmt_scoped.append((nm, then_end + 1))
            if t.text == "if":
                for nm in neg:
                    if diverges:
                        validated.append((nm, depth))
                    elif _tx(body, then_end + 1) == "else":
                        validated.append((nm, depth + 1))
            i = after
            continue
        if t.kind == "id" and _tx(body, i + 1) == "." and \
                _tx(body, i + 2) in ("ValueOrDie", "MoveValueOrDie"):
            name = t.text
            ok = (any(nm == name for nm, _ in validated) or
                  any(nm == name for nm, _ in stmt_scoped) or
                  _same_stmt_guard(body, i, name))
            if not ok:
                findings.append(Finding(
                    "result-flow", fn.file, t.line, fn.short(),
                    f"'{name}.{_tx(body, i + 2)}()' is not dominated by an "
                    f"ok() check of '{name}' — a failed Result aborts the "
                    f"process here",
                    detail="unchecked:" + name))
            i += 3
            continue
        if t.text == ")" and _tx(body, i + 1) == "." and \
                _tx(body, i + 2) in ("ValueOrDie", "MoveValueOrDie"):
            # Direct call on an unnamed temporary: never checkable.
            findings.append(Finding(
                "result-flow", fn.file, t.line, fn.short(),
                f"{_tx(body, i + 2)}() on an unnamed temporary Result — "
                f"bind it and check ok() first",
                detail="temporary"))
            i += 3
            continue
        if t.kind == "id" and _tx(body, i + 1) == "=" and \
                _tx(body, i - 1) not in (".", "->", "::"):
            # Reassignment invalidates a prior ok() check.
            validated = [(nm, d) for nm, d in validated if nm != t.text]
        i += 1
    return findings


def _block_diverges(body, start, end):
    """True when [start, end) contains a diverging statement at the block's
    own level (a return nested in a further `if` is conditional — not
    counted)."""
    depth = 0
    for k in range(start, end):
        t = body[k].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
        elif depth == 0 and t in _DIVERGE:
            return True
    return False


def _match_paren(body, i):
    """i at '('; index of the matching ')'."""
    depth = 0
    n = len(body)
    while i < n:
        if body[i].text == "(":
            depth += 1
        elif body[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def _match_brace(body, i):
    depth = 0
    n = len(body)
    while i < n:
        if body[i].text == "{":
            depth += 1
        elif body[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def _ok_checked(body, start, end, negated):
    """Names X with pattern [!] X . ok ( ) inside [start, end)."""
    names = []
    for k in range(start, end):
        if body[k].kind == "id" and _tx(body, k + 1) == "." and \
                _tx(body, k + 2) == "ok" and _tx(body, k + 3) == "(":
            is_neg = _tx(body, k - 1) == "!"
            if is_neg == negated:
                names.append(body[k].text)
    return names


def _same_stmt_guard(body, i, name):
    """An ok() check of `name` earlier in the same statement (ternary or
    short-circuit guard)."""
    s = _statement_start(body, i)
    for k in range(s, i):
        if body[k].kind == "id" and body[k].text == name and \
                _tx(body, k + 1) == "." and _tx(body, k + 2) == "ok":
            return True
    return False


def run_all(graph, rules):
    findings = []
    if "determinism-purity" in rules:
        findings.extend(check_determinism(graph))
    if "hot-path-purity" in rules:
        findings.extend(check_hot_path(graph))
    if "rcu-snapshot-lifetime" in rules:
        findings.extend(check_rcu_lifetime(graph))
    if "result-flow" in rules:
        findings.extend(check_result_flow(graph))
    return findings
