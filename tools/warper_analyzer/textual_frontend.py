"""Self-contained C++ frontend: function extraction without libclang.

Lowers a source file to the shared IR (model.Program) by scanning the token
stream for namespace/class scopes and function definitions. It is tuned to
this repository's (Google-style) C++ and is deliberately tolerant: anything
it cannot parse as a function is skipped, never fatal. The clang frontend
(clang_frontend.py) produces the same IR with real semantic information
when libclang is available; fixtures in tests/static/analyzer/ pin the
behaviors the two must share.

Known, accepted limitations (documented in DESIGN.md §16):
  - operator overloads are not extracted (their bodies are skipped);
  - calls through function pointers / virtual dispatch resolve by name to
    every function with that name (conservative over-approximation);
  - lambdas are analyzed as part of their enclosing function.
"""

import os

from lexer import lex
from model import ANNOTATION_MACROS, CallSite, FunctionInfo

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "sizeof", "alignof", "decltype", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "new", "delete",
    "throw", "catch", "noexcept", "alignas", "co_await", "co_return",
    "co_yield", "requires", "static_assert", "goto", "typeid", "assert",
}

# Tokens allowed between a statement start and a function name for the
# statement to still look like a declaration (return type & specifiers).
_PREFIX_DISQUALIFIERS = {"=", "return", "throw", ".", ",", "(", ")",
                         "?", "+", "-", "/", "|", "!", "{", "}"}

_TRAILING_SIMPLE = {"const", "noexcept", "override", "final", "mutable",
                    "&", "&&", "volatile", "try"}


def parse_file(path, rel, program):
    """Parses one file into `program`. Returns the number of functions."""
    with open(path, errors="replace") as f:
        text = f.read()
    toks = lex(text)
    count = _parse_tokens(toks, rel, program)
    return count


def _parse_tokens(toks, rel, program):
    n = len(toks)
    i = 0
    stmt_start = 0
    # Scope stack entries: ("namespace"|"class"|"block", name)
    stack = []
    found = 0

    def scope_namespaces():
        return [name for kind, name in stack if kind == "namespace" and name]

    def scope_classes():
        return [name for kind, name in stack if kind == "class"]

    while i < n:
        t = toks[i]
        if t.kind == "id":
            if t.text == "template":
                i = _skip_angles(toks, i + 1)
                continue
            if t.text == "namespace" and _in_decl_scope(stack):
                j = i + 1
                names = []
                while j < n and toks[j].kind == "id":
                    names.append(toks[j].text)
                    j += 1
                    if j < n and toks[j].text == "::":
                        j += 1
                    else:
                        break
                if j < n and toks[j].text == "{":
                    # "namespace a::b {" opens one stack entry per component
                    # would complicate popping; use a single composite entry.
                    stack.append(("namespace", "::".join(names)))
                    i = j + 1
                    stmt_start = i
                    continue
                i = _skip_past(toks, j, ";")
                stmt_start = i
                continue
            if t.text in ("class", "struct", "union") and _in_decl_scope(stack):
                handled, i, stmt_start = _handle_class(toks, i, stack)
                if handled:
                    continue
                # fall through: "struct X y;" style usage — treat as tokens.
                i += 1
                continue
            if t.text == "enum" and _in_decl_scope(stack):
                j = i + 1
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                if j < n and toks[j].text == "{":
                    j = _skip_braces(toks, j)
                i = j
                stmt_start = i
                continue
            if t.text in ("using", "typedef", "friend", "static_assert"):
                i = _skip_past(toks, i, ";")
                stmt_start = i
                continue
            if t.text in ("public", "private", "protected") and \
                    i + 1 < n and toks[i + 1].text == ":":
                i += 2
                stmt_start = i
                continue
            i += 1
            continue
        if t.text == "{":
            stack.append(("block", ""))
            i += 1
            stmt_start = i
            continue
        if t.text == "}":
            if stack:
                stack.pop()
            i += 1
            stmt_start = i
            continue
        if t.text == ";":
            i += 1
            stmt_start = i
            continue
        if t.text == "(" and _in_decl_scope(stack):
            fn, next_i = _try_parse_function(
                toks, i, stmt_start, scope_namespaces(), scope_classes(), rel)
            if fn is not None:
                program.add(fn)
                found += 1
                i = next_i
                stmt_start = i
                continue
        i += 1
    return found


def _in_decl_scope(stack):
    """True at namespace/class scope (where declarations live)."""
    return not stack or stack[-1][0] in ("namespace", "class")


def _handle_class(toks, i, stack):
    """Parses `class X ... {` / `class X;`. Returns (handled, i, stmt_start)."""
    n = len(toks)
    j = i + 1
    # Skip [[attributes]] and alignas(...) between keyword and name.
    while j < n:
        if toks[j].text == "[" and j + 1 < n and toks[j + 1].text == "[":
            j = _skip_brackets(toks, j)
        elif toks[j].text == "alignas" and j + 1 < n and \
                toks[j + 1].text == "(":
            j = _skip_parens(toks, j + 1)
        else:
            break
    if j >= n or toks[j].kind != "id":
        return False, i, i
    # The name is the LAST identifier in a run: in "class
    # WARPER_SCOPED_CAPABILITY MutexLock" or "class WARPER_CAPABILITY("mutex")
    # Mutex" the attribute-like macros come first (bare or with arguments)
    # and the real name is the identifier adjacent to the base clause or
    # body.
    name = toks[j].text
    j += 1
    while j < n:
        if toks[j].kind == "id":
            name = toks[j].text
            j += 1
        elif toks[j].text == "(" and j + 1 < n and \
                _skip_parens(toks, j) < n and \
                toks[_skip_parens(toks, j)].kind == "id":
            j = _skip_parens(toks, j)
        else:
            break
    # Scan to the body '{' or a ';' (forward declaration), balancing angle
    # brackets in base-class template args.
    depth_angle = 0
    while j < n:
        tx = toks[j].text
        if tx == "<":
            depth_angle += 1
        elif tx == ">":
            depth_angle = max(0, depth_angle - 1)
        elif tx == ">>":
            depth_angle = max(0, depth_angle - 2)
        elif tx == "(":
            j = _skip_parens(toks, j)
            continue
        elif tx == "{" and depth_angle == 0:
            stack.append(("class", name))
            return True, j + 1, j + 1
        elif tx in (";", "=") and depth_angle == 0:
            # fwd decl, or "struct X y = {...};" variable — skip statement.
            k = _skip_past(toks, j, ";") if tx == "=" else j + 1
            return True, k, k
        j += 1
    return True, n, n


def _try_parse_function(toks, open_paren, stmt_start, namespaces, classes,
                        rel):
    """Attempts to parse a function declaration/definition whose parameter
    list opens at `open_paren`. Returns (FunctionInfo|None, next_index)."""
    n = len(toks)
    j = open_paren - 1
    if j < stmt_start or toks[j].kind != "id" or toks[j].text in KEYWORDS:
        return None, open_paren
    name = toks[j].text
    # Qualifier chain: A::B::name
    chain = [name]
    k = j
    while k - 2 >= stmt_start and toks[k - 1].text == "::" and \
            toks[k - 2].kind == "id":
        chain.insert(0, toks[k - 2].text)
        k -= 2
    # Destructor.
    if k - 1 >= stmt_start and toks[k - 1].text == "~":
        chain[0] = "~" + chain[0] if len(chain) == 1 else chain[0]
        name = "~" + name if len(chain) == 1 else name
        k -= 1
    prefix = toks[stmt_start:k]
    for p in prefix:
        if p.text in _PREFIX_DISQUALIFIERS or p.text in ("if", "while",
                                                         "for", "switch"):
            return None, open_paren
    enclosing_class = classes[-1] if classes else ""
    if not prefix:
        # Only constructors/destructors legally have no return type.
        is_ctor_like = (
            name.startswith("~") or
            (enclosing_class and name == enclosing_class) or
            (len(chain) >= 2 and chain[-2] == chain[-1]))
        if not is_ctor_like:
            return None, open_paren
    annotations = {ANNOTATION_MACROS[p.text] for p in prefix
                   if p.text in ANNOTATION_MACROS}

    close = _skip_parens(toks, open_paren) - 1  # index of ')'
    if close >= n - 1 or toks[close].text != ")":
        return None, open_paren
    params = _param_names(toks[open_paren + 1:close])

    # Trailing specifiers, then '{' (definition), ';' (declaration) or
    # '= default/delete/0 ;'.
    j = close + 1
    while j < n:
        tx = toks[j].text
        if tx in _TRAILING_SIMPLE:
            j += 1
            if tx == "noexcept" and j < n and toks[j].text == "(":
                j = _skip_parens(toks, j)
            continue
        if toks[j].kind == "id" and tx in ANNOTATION_MACROS:
            annotations.add(ANNOTATION_MACROS[tx])
            j += 1
            continue
        if toks[j].kind == "id" and j + 1 < n and toks[j + 1].text == "(":
            # Trailing macro with args: WARPER_REQUIRES(mu_), etc.
            j = _skip_parens(toks, j + 1)
            continue
        if toks[j].kind == "id" and tx.isupper():
            j += 1  # bare trailing macro
            continue
        if tx == "[" and j + 1 < n and toks[j + 1].text == "[":
            j = _skip_brackets(toks, j)
            continue
        if tx == "->":
            j += 1
            while j < n and toks[j].text not in ("{", ";", "="):
                if toks[j].text == "(":
                    j = _skip_parens(toks, j)
                    continue
                j += 1
            continue
        if tx == "=":
            if j + 2 < n and toks[j + 1].text in ("default", "delete", "0") \
                    and toks[j + 2].text == ";":
                j += 3
                return _make_fn(toks, name, chain, namespaces, classes, rel,
                                annotations, params, body=None,
                                line=toks[open_paren].line), j
            return None, open_paren
        if tx == ":":
            # Constructor initializer list: entries of id-chain + (…) or {…}.
            j += 1
            while j < n:
                while j < n and (toks[j].kind == "id" or
                                 toks[j].text in ("::", "<", ">", ",") and
                                 False):
                    j += 1
                # consume one entry: qualified name possibly with <...>
                while j < n and (toks[j].kind == "id" or
                                 toks[j].text == "::"):
                    j += 1
                if j < n and toks[j].text == "<":
                    j = _skip_angles(toks, j)
                if j >= n:
                    return None, open_paren
                if toks[j].text == "(":
                    j = _skip_parens(toks, j)
                elif toks[j].text == "{":
                    j = _skip_braces(toks, j)
                else:
                    return None, open_paren
                if j < n and toks[j].text == "...":
                    j += 1
                if j < n and toks[j].text == ",":
                    j += 1
                    continue
                break
            if j < n and toks[j].text == "{":
                body_end = _skip_braces(toks, j)
                return _make_fn(toks, name, chain, namespaces, classes, rel,
                                annotations, params,
                                body=toks[j + 1:body_end - 1],
                                line=toks[open_paren].line,
                                end_line=toks[body_end - 1].line), body_end
            return None, open_paren
        if tx == "{":
            body_end = _skip_braces(toks, j)
            return _make_fn(toks, name, chain, namespaces, classes, rel,
                            annotations, params,
                            body=toks[j + 1:body_end - 1],
                            line=toks[open_paren].line,
                            end_line=toks[body_end - 1].line), body_end
        if tx == ";":
            return _make_fn(toks, name, chain, namespaces, classes, rel,
                            annotations, params, body=None,
                            line=toks[open_paren].line), j + 1
        return None, open_paren
    return None, open_paren


def _make_fn(toks, name, chain, namespaces, classes, rel, annotations,
             params, body, line, end_line=None):
    del toks
    namespace = "::".join(namespaces)
    # Class identity: an explicit qualifier (out-of-class definition) wins
    # over the lexical scope; e.g. "ShardRouter::ShardFor" at namespace
    # scope has cls ShardRouter.
    if len(chain) >= 2:
        cls = chain[-2]
        outer = classes + chain[:-2]
    else:
        cls = classes[-1] if classes else ""
        outer = classes[:-1] if classes else []
    qual_parts = ([namespace] if namespace else []) + outer + \
        ([cls] if cls else []) + [name]
    fn = FunctionInfo("::".join(qual_parts), name, cls, namespace, rel, line)
    fn.annotations = annotations
    fn.params = params
    if body is not None:
        fn.is_definition = True
        fn.body = list(body)
        fn.end_line = end_line if end_line is not None else line
        fn.calls = extract_calls(fn.body)
        _extract_suppressions(fn)
    return fn


def _param_names(param_toks):
    """Best-effort parameter names: last identifier of each top-level
    comma-separated segment (before any '=' default)."""
    names = []
    depth = 0
    seg = []
    in_default = False  # inside a "= <expr>" default value
    for t in param_toks:
        if t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.text in (")", ">", "]", "}"):
            depth -= 1
        elif t.text == "," and depth == 0:
            if not in_default and seg:
                names.append(seg[-1])
            seg = []
            in_default = False
            continue
        elif t.text == "=" and depth == 0:
            if seg:
                names.append(seg[-1])
            seg = []
            in_default = True
            continue
        if not in_default and t.kind == "id" and depth == 0 and \
                t.text not in KEYWORDS:
            seg.append(t.text)
    if seg and not in_default:
        names.append(seg[-1])
    return names


def extract_calls(body):
    """Call sites in a body token stream: f(...), obj.f(...), ns::f(...),
    f<T>(...), and constructor calls 'Type var(...)' / 'Type var{...}' /
    'Type(...)'."""
    calls = []
    n = len(body)
    for i, t in enumerate(body):
        if t.text not in ("(", "{"):
            continue
        j = i - 1
        if j < 0:
            continue
        # f<T>( — walk back over the template argument list.
        if body[j].text == ">" and t.text == "(":
            j = _rskip_angles(body, j)
            if j is None:
                continue
        if body[j].kind != "id" or body[j].text in KEYWORDS:
            continue
        name_idx = j
        name = body[j].text
        chain = [name]
        k = j
        while k - 2 >= 0 and body[k - 1].text == "::" and \
                body[k - 2].kind == "id":
            chain.insert(0, body[k - 2].text)
            k -= 2
        prev = body[k - 1].text if k - 1 >= 0 else ""
        is_member = prev in (".", "->")
        if t.text == "(":
            calls.append(CallSite(name, "::".join(chain[:-1]), is_member,
                                  body[name_idx].line, i))
        # Constructor via declaration: "Type var(...)" / "Type var{...}".
        # `name` is then the VARIABLE; the callee is the type ending at k-1.
        if body[k - 1].kind == "id" if k - 1 >= 0 else False:
            tj = k - 1
            tname = body[tj].text
            if tname not in KEYWORDS and not tname.isupper():
                tchain = [tname]
                tk = tj
                while tk - 2 >= 0 and body[tk - 1].text == "::" and \
                        body[tk - 2].kind == "id":
                    tchain.insert(0, body[tk - 2].text)
                    tk -= 2
                calls.append(CallSite(tname, "::".join(tchain[:-1]), False,
                                      body[tj].line, i))
    return calls


def _extract_suppressions(fn):
    """WARPER_ANALYZER_SUPPRESS("rule", "reason #NNN") statements inside the
    body attach to the enclosing function."""
    body = fn.body
    n = len(body)

    def string_run(j):
        """Concatenates adjacent string literals starting at j (the usual
        way long reasons are wrapped). Returns (text, next_index)."""
        parts = []
        while j < n and body[j].kind == "str":
            parts.append(body[j].text.strip('"'))
            j += 1
        return "".join(parts), j

    for i, t in enumerate(body):
        if t.kind == "id" and t.text == "WARPER_ANALYZER_SUPPRESS":
            if i + 2 < n and body[i + 1].text == "(" and \
                    body[i + 2].kind == "str":
                rule, j = string_run(i + 2)
                reason = ""
                if j < n and body[j].text == ",":
                    reason, _ = string_run(j + 1)
                fn.suppressions[rule] = reason


# --- token-walking helpers -------------------------------------------------

def _skip_parens(toks, i):
    """i at '('; returns index just past the matching ')'."""
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_braces(toks, i):
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_brackets(toks, i):
    depth = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "[":
            depth += 1
        elif toks[i].text == "]":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_angles(toks, i):
    """i at (or just before) '<'; returns index past the matching '>'.
    Treats '>>' as two closers. If no '<' at i, returns i unchanged + 1
    heuristically to make progress."""
    n = len(toks)
    if i >= n or toks[i].text != "<":
        return i + 1 if i < n else n
    depth = 0
    while i < n:
        tx = toks[i].text
        if tx == "<":
            depth += 1
        elif tx == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif tx == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif tx == "(":
            i = _skip_parens(toks, i)
            continue
        elif tx in (";", "{"):
            return i  # malformed; bail
        i += 1
    return n


def _rskip_angles(body, j):
    """j at '>' closing a template argument list; walks back to the token
    before the matching '<'. Returns its index, or None if it does not look
    like template args (cap at 64 tokens to avoid a<b comparisons)."""
    depth = 0
    steps = 0
    while j >= 0 and steps < 64:
        tx = body[j].text
        if tx == ">":
            depth += 1
        elif tx == ">>":
            depth += 2
        elif tx == "<":
            depth -= 1
            if depth == 0:
                return j - 1 if j >= 1 else None
        elif tx in (";", "{", "}", ")"):
            return None
        j -= 1
        steps += 1
    return None


def _skip_past(toks, i, stop):
    n = len(toks)
    while i < n and toks[i].text != stop:
        if toks[i].text == "{":
            i = _skip_braces(toks, i)
            continue
        i += 1
    return min(i + 1, n)


def load_sources(paths, repo_root):
    """Parses every path into a fresh Program."""
    from model import Program
    program = Program()
    program.frontend = "textual"
    for path in paths:
        rel = os.path.relpath(os.path.abspath(path), repo_root)
        parse_file(path, rel.replace(os.sep, "/"), program)
        program.files.append(rel.replace(os.sep, "/"))
    return program
