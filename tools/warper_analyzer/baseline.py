"""Rationale-tagged finding baseline (same UX as tools/check_clang_tidy.py).

The baseline is a JSON list of entries, each carrying the finding's stable
line-free key, its rule, and a human rationale that MUST reference an issue
number (`#NNN`). New findings fail the gate; baselined findings pass; stale
entries (baselined but no longer firing) are reported so the baseline can be
pruned with --update-baseline.
"""

import json
import re

REASON_TAG_RE = re.compile(r"#\d+")


def load(path):
    """path -> {key: entry dict}. Missing file -> empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return {}
    entries = doc.get("entries", doc if isinstance(doc, list) else [])
    out = {}
    for e in entries:
        out[e["key"]] = e
    return out


def save(path, findings, reasons):
    """Writes a fresh baseline from `findings`. `reasons` maps key -> reason;
    keys without one get the fallback reason (which must carry a #NNN tag —
    the caller validates)."""
    entries = []
    seen = set()
    for f in sorted(findings, key=lambda x: x.key()):
        if f.key() in seen:
            continue
        seen.add(f.key())
        entries.append({
            "key": f.key(),
            "rule": f.rule,
            "reason": reasons.get(f.key(), reasons.get("", "")),
        })
    doc = {
        "comment": "warper-analyzer accepted-findings baseline. Every entry "
                   "needs a #NNN rationale. Regenerate with: python3 "
                   "tools/warper_analyzer -p build --update-baseline "
                   "--reason '<why> #NNN'",
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")


def gate(findings, baseline):
    """Splits findings against the baseline.

    Returns (new, accepted, stale_keys, bad_entries) where bad_entries are
    baseline entries whose reason lacks a #NNN tag — those fail the gate
    even for otherwise-accepted findings (a baseline without rationale is
    debt without an owner).
    """
    fired = {}
    for f in findings:
        fired.setdefault(f.key(), f)
    new = [f for k, f in sorted(fired.items()) if k not in baseline]
    accepted = [f for k, f in sorted(fired.items()) if k in baseline]
    stale = sorted(k for k in baseline if k not in fired)
    bad = [e for e in baseline.values()
           if not REASON_TAG_RE.search(e.get("reason", ""))]
    return new, accepted, stale, bad
