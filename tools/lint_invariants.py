#!/usr/bin/env python3
"""Repo-invariant linter: cheap greps for contracts the compiler can't see.

Checks (each one line of rationale):
  naked-mutex    std::mutex & friends outside src/util/ — every lock must be
                 a util::Mutex so the thread-safety annotations and owner
                 tracking apply tree-wide.
  unseeded-rng   rand()/srand()/std::random_device outside src/util/rng.* —
                 reproducibility is a paper-level requirement; all
                 randomness flows through seeded util::Rng.
  metric-names   serve.*/warper.*/drift.* metric registrations must match
                 tools/metric_names.txt in BOTH directions, so renames
                 cannot silently orphan a dashboard.
  todo-tags      TODO must carry an issue tag — TODO(#123) — or it is
                 untracked debt.

Exits non-zero listing violations. Run from anywhere; scans the repo the
script lives in. CMake target `lint` and the CI static-analysis job both run
this.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_EXTENSIONS = (".h", ".cc", ".cpp")

# std::mutex and every std synchronization wrapper that would bypass
# util::Mutex. std::atomic and futures are fine (lock-free structures and
# the thread pool's task plumbing are deliberate).
NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# Files allowed to touch the raw primitives: the wrapper itself.
NAKED_MUTEX_ALLOWED = ("src/util/mutex.h", "src/util/mutex.cc")

UNSEEDED_RNG_RE = re.compile(r"(?<![\w:])(?:std::)?s?rand\(|std::random_device")
# The warper_analyzer fixtures contain deliberate ambient-RNG violations —
# that is the whole point of a must-flag fixture (entries ending in "/" are
# directory prefixes).
UNSEEDED_RNG_ALLOWED = ("src/util/rng.h", "src/util/rng.cc",
                        "tests/static/analyzer/")

METRIC_CALL_RE = re.compile(r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]+)"')
# Registration calls split across a line break: Get...( at EOL, name next line.
METRIC_CALL_OPEN_RE = re.compile(r"Get(?:Counter|Gauge|Histogram)\(\s*$")
METRIC_NAME_ONLY_RE = re.compile(r'^\s*"([^"]+)"')
# Per-tenant metric instances are named dynamically —
# TenantMetricName("serve.tenant.rollbacks", id) → "serve.tenant.rollbacks.7"
# — so the FAMILY literal at the call site is what registers against the
# registry (the registry lists families, not per-tenant instances).
TENANT_METRIC_CALL_RE = re.compile(r'TenantMetricName\(\s*"([^"]+)"')
# Per-template metric instances follow the same contract with the
# fingerprint inserted after the prefix —
# TemplateMetricName("warper.template.err_ewma", fp) →
# "warper.template.<16-hex-fp>.err_ewma" — the family literal is enforced.
TEMPLATE_METRIC_CALL_RE = re.compile(r'TemplateMetricName\(\s*"([^"]+)"')
ENFORCED_METRIC_PREFIXES = ("serve.", "warper.", "drift.")

TODO_RE = re.compile(r"\bTODO\b")
TODO_TAGGED_RE = re.compile(r"\bTODO\(#\d+\)")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT_RE = re.compile(r"//.*")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def iter_sources(repo_root):
    for top in SCAN_DIRS:
        for dirpath, _, filenames in os.walk(os.path.join(repo_root, top)):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, repo_root)


def strip_comments(text):
    """Code-only view with line structure preserved (for line numbers)."""
    def blank_keep_newlines(m):
        return re.sub(r"[^\n]", " ", m.group(0))
    text = BLOCK_COMMENT_RE.sub(blank_keep_newlines, text)
    return "\n".join(LINE_COMMENT_RE.sub("", line)
                     for line in text.split("\n"))


def check_pattern(rel, code_lines, regex, allowed, rule, message, violations,
                  strip_strings=False):
    posix_rel = rel.replace(os.sep, "/")
    if any(posix_rel.startswith(a) if a.endswith("/") else posix_rel == a
           for a in allowed):
        return
    for lineno, line in enumerate(code_lines, 1):
        haystack = STRING_RE.sub('""', line) if strip_strings else line
        if regex.search(haystack):
            violations.append(f"{rel}:{lineno}: [{rule}] {message}")


def collect_metric_names(code_lines):
    names = set()
    pending_call = False
    for line in code_lines:
        if pending_call:
            m = METRIC_NAME_ONLY_RE.match(line)
            if m:
                names.add(m.group(1))
            pending_call = False
        for m in METRIC_CALL_RE.finditer(line):
            names.add(m.group(1))
        for m in TENANT_METRIC_CALL_RE.finditer(line):
            names.add(m.group(1))
        for m in TEMPLATE_METRIC_CALL_RE.finditer(line):
            names.add(m.group(1))
        if METRIC_CALL_OPEN_RE.search(line):
            pending_call = True
    return names


def read_registry(repo_root):
    path = os.path.join(repo_root, "tools", "metric_names.txt")
    if not os.path.exists(path):
        sys.exit(f"error: {path} missing")
    names = set()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                names.add(line)
    return names


def collect_violations(repo_root):
    """Scans the tree rooted at repo_root; returns violation strings.

    Split out from main() so tests/static/lint/test_lint_invariants.py can
    run every rule against small fixture trees.
    """
    violations = []
    used_metrics = {}  # name -> first "file:line" seen

    for rel in iter_sources(repo_root):
        with open(os.path.join(repo_root, rel)) as f:
            text = f.read()
        code = strip_comments(text)
        code_lines = code.split("\n")

        check_pattern(rel, code_lines, NAKED_MUTEX_RE, NAKED_MUTEX_ALLOWED,
                      "naked-mutex",
                      "use util::Mutex/MutexLock/CondVar (util/mutex.h), not "
                      "raw std primitives", violations, strip_strings=True)
        check_pattern(rel, code_lines, UNSEEDED_RNG_RE, UNSEEDED_RNG_ALLOWED,
                      "unseeded-rng",
                      "use seeded util::Rng, not ambient randomness",
                      violations, strip_strings=True)

        if rel.startswith("src" + os.sep):
            for name in collect_metric_names(code_lines):
                used_metrics.setdefault(name, rel)

        for lineno, line in enumerate(text.split("\n"), 1):
            if TODO_RE.search(line) and not TODO_TAGGED_RE.search(line):
                violations.append(
                    f"{rel}:{lineno}: [todo-tags] TODO without an issue tag "
                    "(write TODO(#NNN))")

    registry = read_registry(repo_root)
    for name, where in sorted(used_metrics.items()):
        if name.startswith(ENFORCED_METRIC_PREFIXES) and name not in registry:
            violations.append(
                f"{where}: [metric-names] metric '{name}' not in "
                "tools/metric_names.txt")
    for name in sorted(registry):
        if name.startswith(ENFORCED_METRIC_PREFIXES) and \
                name not in used_metrics:
            violations.append(
                f"tools/metric_names.txt: [metric-names] registry entry "
                f"'{name}' is registered by no code under src/")
    return violations


def main():
    violations = collect_violations(REPO_ROOT)
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        sys.exit(1)
    print("lint_invariants: clean")


if __name__ == "__main__":
    main()
