// Shared fixtures for the serving-layer tests: a deterministic stub
// estimator (no training required) and snapshot builders around it.
#ifndef WARPER_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define WARPER_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "ce/estimator.h"
#include "ce/model_io.h"
#include "core/warper.h"
#include "nn/mlp.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace warper::serve {

// A trained-by-construction estimator whose target is scale · Σ features —
// exactly reproducible, so batched-vs-direct comparisons can demand
// bit-identical results.
class StubEstimator : public ce::CardinalityEstimator {
 public:
  explicit StubEstimator(double scale = 1.0) : scale_(scale) {}

  std::string Name() const override { return "stub"; }
  ce::UpdateMode update_mode() const override {
    return ce::UpdateMode::kFineTune;
  }
  void Train(const nn::Matrix&, const std::vector<double>&) override {}
  void Update(const nn::Matrix&, const std::vector<double>&) override {}
  bool trained() const override { return true; }

  std::vector<double> EstimateTargets(const nn::Matrix& x) const override {
    std::vector<double> out(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < x.cols(); ++c) sum += x.At(r, c);
      out[r] = scale_ * sum;
    }
    return out;
  }

  std::unique_ptr<ce::CardinalityEstimator> Clone() const override {
    return std::make_unique<StubEstimator>(*this);
  }

 private:
  double scale_;
};

// ModuleState filler for snapshots built without a Warper.
inline core::Warper::ModuleState StubModuleState() {
  util::Rng rng(7);
  nn::MlpConfig config;
  config.layer_sizes = {2, 2};
  nn::Mlp mlp(config, &rng);
  return core::Warper::ModuleState{ce::MlpSnapshot(mlp), ce::MlpSnapshot(mlp),
                                   ce::MlpSnapshot(mlp)};
}

inline std::shared_ptr<const ModelSnapshot> MakeStubSnapshot(
    uint64_t version, double scale = 1.0, double gmq = 1.0) {
  return std::make_shared<const ModelSnapshot>(
      version, std::make_shared<StubEstimator>(scale), StubModuleState(), gmq);
}

}  // namespace warper::serve

#endif  // WARPER_TESTS_SERVE_SERVE_TEST_UTIL_H_
