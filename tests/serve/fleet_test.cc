// ServingFleet: routing, the shared prioritized adaptation executor,
// per-tenant isolation (queue depth + shed budget), the fleet epoch, the
// request-struct serve API (and its deprecated shims), and the
// AdaptationOutcome::version contract.
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "serve/adapt_executor.h"
#include "serve/router.h"
#include "serve_test_util.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::serve {
namespace {

// ---------------------------------------------------------------------------
// ShardRouter

TEST(ShardRouterTest, BuildFreezeLookup) {
  ShardRouter router;
  ASSERT_TRUE(router.AddTenant(7, 0).ok());
  ASSERT_TRUE(router.AddTenant(9, 1).ok());
  EXPECT_FALSE(router.AddTenant(7, 2).ok());  // duplicate tenant

  // No lookups before the table is published.
  EXPECT_EQ(router.ShardFor(7).status().code(),
            StatusCode::kFailedPrecondition);
  router.Freeze();
  EXPECT_TRUE(router.frozen());
  EXPECT_FALSE(router.AddTenant(11, 2).ok());  // immutable after freeze

  EXPECT_EQ(router.ShardFor(7).ValueOrDie(), 0u);
  EXPECT_EQ(router.ShardFor(9).ValueOrDie(), 1u);
  EXPECT_EQ(router.ShardFor(8).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(router.NumTenants(), 2u);
  EXPECT_EQ(router.NumShards(), 2u);
}

TEST(ShardRouterTest, PredicateHashRoutingIsDeterministicAndInRange) {
  ShardRouter router;
  for (uint64_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(router.AddTenant(t, t).ok());
  }
  router.Freeze();

  util::Rng rng(5);
  bool spread = false;
  size_t first = 0;
  for (size_t i = 0; i < 64; ++i) {
    std::vector<double> features = {rng.Uniform(), rng.Uniform(),
                                    rng.Uniform()};
    size_t shard = router.ShardForFeatures(features).ValueOrDie();
    EXPECT_LT(shard, 4u);
    // Same predicate, same shard — routing is a pure function.
    EXPECT_EQ(router.ShardForFeatures(features).ValueOrDie(), shard);
    if (i == 0) first = shard;
    if (shard != first) spread = true;
  }
  EXPECT_TRUE(spread);  // 64 random predicates must not all collapse
}

// ---------------------------------------------------------------------------
// ServeConfig fleet knobs (satellite: Validate() coverage)

TEST(ServeConfigFleetKnobsTest, ValidateRejectsBadKnobs) {
  core::ServeConfig good;
  EXPECT_TRUE(good.Validate().ok());

  core::ServeConfig c = good;
  c.adapt_threads = 0;
  EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);

  c = good;
  c.tenant_queue_depth = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = good;
  c.tenant_queue_depth = 8;
  c.tenant_shed_budget = 9;  // budget cannot exceed the queue it polices
  EXPECT_FALSE(c.Validate().ok());

  c = good;
  c.adapt_priority_drift_weight = -1.0;
  EXPECT_FALSE(c.Validate().ok());

  c = good;
  c.adapt_priority_traffic_weight = -0.5;
  EXPECT_FALSE(c.Validate().ok());

  c = good;
  c.adapt_priority_floor = 0.0;  // zero floor would starve no-drift tenants
  EXPECT_FALSE(c.Validate().ok());

  c = good;
  c.adapt_aging_rate = -0.1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ServeConfigFleetKnobsTest, ServerStartValidatesInjectedConfig) {
  // A bad injected config must be refused at Start, not discovered later.
  StubEstimator stub;
  storage::Table table = storage::MakePrsa(1500, /*seed=*/41);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);
  core::WarperConfig tiny;
  tiny.hidden_units = 8;
  tiny.hidden_layers = 1;
  tiny.embedding_dim = 4;
  tiny.n_i = 2;
  tiny.n_p = 20;
  core::Warper warper(&domain, &stub, tiny);

  core::ServeConfig bad;
  bad.adapt_threads = 0;
  ServerOptions options;
  options.config = &bad;
  EstimationServer server(&warper, options);
  Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// AdaptationExecutor scheduling

AdaptationExecutor::Task OkTask() {
  return [] { return Result<AdaptationOutcome>(AdaptationOutcome{}); };
}

TEST(AdaptationExecutorTest, PriorityFormula) {
  core::ServeConfig config;
  config.adapt_priority_floor = 0.5;
  config.adapt_priority_drift_weight = 2.0;
  config.adapt_priority_traffic_weight = 3.0;
  config.adapt_aging_rate = 10.0;

  PrioritySignals signals;
  signals.drift_severity = 1.5;
  signals.traffic = 2.0;
  // (0.5 + 2·1.5) · (1 + 3·2) = 3.5 · 7 = 24.5
  EXPECT_DOUBLE_EQ(AdaptationExecutor::BasePriority(signals, config), 24.5);
  EXPECT_DOUBLE_EQ(AdaptationExecutor::EffectivePriority(24.5, 0.3, config),
                   24.5 + 3.0);
  // Negative signals clamp to zero instead of inverting the schedule.
  PrioritySignals negative;
  negative.drift_severity = -1.0;
  negative.traffic = -1.0;
  EXPECT_DOUBLE_EQ(AdaptationExecutor::BasePriority(negative, config), 0.5);

  // Localized template failure: offender_pressure substitutes for a quiet
  // global severity (the drift term is max of the two)...
  PrioritySignals localized;
  localized.drift_severity = 0.0;
  localized.offender_pressure = 1.5;
  localized.traffic = 2.0;
  EXPECT_DOUBLE_EQ(AdaptationExecutor::BasePriority(localized, config), 24.5);
  // ...but never boosts a tenant whose severity already dominates.
  signals.offender_pressure = 0.25;
  EXPECT_DOUBLE_EQ(AdaptationExecutor::BasePriority(signals, config), 24.5);
}

TEST(AdaptationExecutorTest, DriftSeverityOrdersTheQueue) {
  core::ServeConfig config;
  config.adapt_threads = 1;
  config.adapt_aging_rate = 0.0;  // pure base-priority order
  AdaptationExecutor executor(config);
  ASSERT_TRUE(executor.Start().ok());

  // Occupy the single worker so the next two submissions queue up.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> blocked{false};
  auto blocker = executor.Submit(
      /*tenant_id=*/100, nullptr, [&] {
        blocked.store(true);
        gate_future.wait();
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });
  while (!blocked.load()) std::this_thread::yield();

  util::Mutex order_mu;
  std::vector<uint64_t> order;
  auto record = [&](uint64_t id) {
    util::MutexLock lk(&order_mu);
    order.push_back(id);
  };
  auto low = executor.Submit(
      1, [] { return PrioritySignals{0.1, 0.0}; },
      [&] {
        record(1);
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });
  auto high = executor.Submit(
      2, [] { return PrioritySignals{10.0, 0.0}; },
      [&] {
        record(2);
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });
  EXPECT_EQ(executor.PendingCount(), 2u);

  gate.set_value();
  ASSERT_TRUE(blocker.get().ok());
  ASSERT_TRUE(low.get().ok());
  ASSERT_TRUE(high.get().ok());
  executor.Stop();

  // The drifted tenant ran first even though it was submitted second.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
}

TEST(AdaptationExecutorTest, AgingPreventsStarvation) {
  core::ServeConfig config;
  config.adapt_threads = 1;
  // Aging dominates: ~0.1 s of waiting outweighs the noisy tenant's base of
  // ~(1 + 1e3)·(1 + 1e3) ≈ 1e6, so the old quiet tenant beats it.
  config.adapt_aging_rate = 1e9;
  AdaptationExecutor executor(config);
  ASSERT_TRUE(executor.Start().ok());

  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> blocked{false};
  auto blocker = executor.Submit(
      /*tenant_id=*/100, nullptr, [&] {
        blocked.store(true);
        gate_future.wait();
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });
  while (!blocked.load()) std::this_thread::yield();

  util::Mutex order_mu;
  std::vector<uint64_t> order;
  auto record = [&](uint64_t id) {
    util::MutexLock lk(&order_mu);
    order.push_back(id);
  };
  // The starving tenant: no drift, no traffic — base priority is the floor.
  auto starving = executor.Submit(
      1, [] { return PrioritySignals{0.0, 0.0}; },
      [&] {
        record(1);
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // A much higher-base tenant arrives later; without aging it would always
  // win and tenant 1 would starve under sustained load.
  auto noisy = executor.Submit(
      2, [] { return PrioritySignals{1e3, 1e3}; },
      [&] {
        record(2);
        return Result<AdaptationOutcome>(AdaptationOutcome{});
      });

  gate.set_value();
  ASSERT_TRUE(blocker.get().ok());
  ASSERT_TRUE(starving.get().ok());
  ASSERT_TRUE(noisy.get().ok());
  executor.Stop();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // waited long enough to overtake
  EXPECT_EQ(order[1], 2u);
}

TEST(AdaptationExecutorTest, AtMostOnePassPerTenant) {
  core::ServeConfig config;
  config.adapt_threads = 4;
  AdaptationExecutor executor(config);
  ASSERT_TRUE(executor.Start().ok());

  // Many passes for ONE tenant on four workers: the executor must serialize
  // them (the server publish path is single-writer per tenant).
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::future<Result<AdaptationOutcome>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(executor.Submit(
        /*tenant_id=*/5, nullptr, [&] {
          if (in_flight.fetch_add(1) != 0) overlapped.store(true);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          in_flight.fetch_sub(1);
          return Result<AdaptationOutcome>(AdaptationOutcome{});
        }));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_FALSE(overlapped.load());
  executor.Stop();
}

TEST(AdaptationExecutorTest, StopAnswersQueuedPassesUnavailable) {
  core::ServeConfig config;
  config.adapt_threads = 1;
  AdaptationExecutor executor(config);

  // Not started yet: refused outright.
  Result<AdaptationOutcome> refused =
      executor.Submit(1, nullptr, OkTask()).get();
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(executor.Start().ok());
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> blocked{false};
  auto blocker = executor.Submit(1, nullptr, [&] {
    blocked.store(true);
    gate_future.wait();
    return Result<AdaptationOutcome>(AdaptationOutcome{});
  });
  while (!blocked.load()) std::this_thread::yield();
  auto orphan = executor.Submit(2, nullptr, OkTask());
  // Initiate Stop while the orphan is still queued behind the blocker; only
  // release the blocker once the stop flag is visibly set, so the worker
  // exits instead of picking the orphan up.
  std::thread stopper([&] { executor.Stop(); });
  while (executor.running()) std::this_thread::yield();
  gate.set_value();
  stopper.join();
  EXPECT_TRUE(blocker.get().ok());
  EXPECT_EQ(orphan.get().status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(executor.running());
}

// ---------------------------------------------------------------------------
// ServingFleet integration (stub-estimator tenants: cheap, deterministic)

core::WarperConfig TinyWarperConfig() {
  core::WarperConfig config;
  config.hidden_units = 8;
  config.hidden_layers = 1;
  config.embedding_dim = 4;
  config.n_i = 2;
  config.n_p = 20;
  return config;
}

// A shared table/domain plus per-tenant StubEstimator-backed Warpers. The
// stub needs no training, so standing up 32 tenants stays cheap.
struct StubFleetEnv {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;
  std::vector<std::unique_ptr<StubEstimator>> models;
  std::vector<std::unique_ptr<core::Warper>> warpers;

  explicit StubFleetEnv(uint64_t seed, size_t rows = 3000)
      : table(storage::MakePrsa(rows, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {}

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }

  // Builds and Initialize()s one stub tenant; returns its warper.
  core::Warper* MakeTenant(const std::vector<ce::LabeledExample>& train) {
    models.push_back(std::make_unique<StubEstimator>(
        /*scale=*/1.0 + static_cast<double>(models.size())));
    warpers.push_back(std::make_unique<core::Warper>(
        &domain, models.back().get(), TinyWarperConfig()));
    WARPER_CHECK(warpers.back()->Initialize(train).ok());
    return warpers.back().get();
  }
};

EstimateRequest TenantRequest(uint64_t tenant_id,
                              std::vector<double> features) {
  EstimateRequest request;
  request.tenant_id = tenant_id;
  request.features = std::move(features);
  return request;
}

TEST(ServingFleetTest, ReportObservationFeedsTenantOffenderViews) {
  StubFleetEnv env(58);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);
  core::ServeConfig config;
  config.batch_max = 1;
  ServingFleet fleet(config);
  ASSERT_TRUE(fleet.AddTenant(7, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.Start().ok());

  const std::vector<double>& probe = train[0].features;
  // Unknown tenants are NotFound on both feedback surfaces.
  EXPECT_EQ(fleet.ReportObservation(8, probe, 100.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fleet.TenantTopOffenders(8, 3).status().code(),
            StatusCode::kNotFound);

  EXPECT_TRUE(fleet.TenantTopOffenders(7, 3).ValueOrDie().empty());
  // Feedback far off the stub's estimate, past the default min_count: the
  // one reported template becomes this tenant's top offender.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fleet.ReportObservation(7, probe, 1e9).ok());
  }
  std::vector<core::TemplateTracker::Offender> top =
      fleet.TenantTopOffenders(7, 3).ValueOrDie();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].stats.count, 8u);
  EXPECT_GT(top[0].drift_score, 1.0);
  fleet.Stop();
}

TEST(ServingFleetTest, RoutesByTenantAndReportsVersions) {
  StubFleetEnv env(50);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);

  core::ServeConfig config;
  config.batch_max = 1;  // inline fast path: no pool dependency
  ServingFleet fleet(config);
  ASSERT_TRUE(fleet.AddTenant(7, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.AddTenant(9, env.MakeTenant(train)).ok());
  EXPECT_FALSE(fleet.AddTenant(7, env.warpers[0].get()).ok());  // duplicate
  EXPECT_FALSE(fleet.Estimate(TenantRequest(7, train[0].features)).ok())
      << "estimates before Start must be refused";
  ASSERT_TRUE(fleet.Start().ok());
  EXPECT_TRUE(fleet.running());
  EXPECT_FALSE(fleet.Start().ok());  // double Start
  // Start published version 1 for each tenant: the epoch counts both.
  EXPECT_EQ(fleet.Epoch(), 2u);
  EXPECT_EQ(fleet.NumTenants(), 2u);

  // Each tenant's answer comes from ITS model (scales differ), and the
  // response echoes tenant and version.
  const std::vector<double>& probe = train[0].features;
  Result<EstimateResponse> r7 = fleet.Estimate(TenantRequest(7, probe));
  Result<EstimateResponse> r9 = fleet.Estimate(TenantRequest(9, probe));
  ASSERT_TRUE(r7.ok());
  ASSERT_TRUE(r9.ok());
  EXPECT_EQ(r7.ValueOrDie().tenant_id, 7u);
  EXPECT_EQ(r9.ValueOrDie().tenant_id, 9u);
  EXPECT_EQ(r7.ValueOrDie().version, 1u);
  EXPECT_NE(r7.ValueOrDie().estimate, r9.ValueOrDie().estimate);

  // Unknown tenants are NotFound, not silently rerouted.
  EXPECT_EQ(fleet.Estimate(TenantRequest(8, probe)).status().code(),
            StatusCode::kNotFound);

  // Predicate-hash routing lands on a real shard and names it.
  Result<EstimateResponse> hashed =
      fleet.EstimateHashed(TenantRequest(0, probe));
  ASSERT_TRUE(hashed.ok());
  EXPECT_TRUE(hashed.ValueOrDie().tenant_id == 7u ||
              hashed.ValueOrDie().tenant_id == 9u);

  // Async round-trip.
  Result<EstimateResponse> async =
      fleet.EstimateAsync(TenantRequest(9, probe)).get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async.ValueOrDie().estimate, r9.ValueOrDie().estimate);

  fleet.Stop();
  EXPECT_FALSE(fleet.running());
  EXPECT_FALSE(fleet.Estimate(TenantRequest(7, probe)).ok());
}

TEST(ServingFleetTest, StartValidatesConfigAndRequiresTenants) {
  core::ServeConfig bad;
  bad.tenant_queue_depth = 0;
  StubFleetEnv env(51);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);
  {
    ServingFleet fleet(bad);
    ASSERT_TRUE(fleet.AddTenant(1, env.MakeTenant(train)).ok());
    Status status = fleet.Start();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    ServingFleet fleet((core::ServeConfig()));
    EXPECT_EQ(fleet.Start().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ServingFleetTest, AdaptationRunsOnSharedExecutorAndBumpsEpoch) {
  StubFleetEnv env(52);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);

  core::ServeConfig config;
  config.batch_max = 1;
  config.adapt_threads = 2;
  ServingFleet fleet(config);
  ASSERT_TRUE(fleet.AddTenant(1, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.AddTenant(2, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.Start().ok());
  const uint64_t epoch_after_start = fleet.Epoch();

  core::Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 20);
  Result<AdaptationOutcome> outcome =
      fleet.SubmitInvocation(1, invocation).get();
  ASSERT_TRUE(outcome.ok());
  const AdaptationOutcome& o = outcome.ValueOrDie();
  EXPECT_GE(o.result.drift_severity, 0.0);
  // The pass's severity is now tenant 1's live scheduling signal.
  EXPECT_EQ(fleet.tenant(1)->drift_severity(), o.result.drift_severity);
  if (o.published) {
    EXPECT_EQ(o.version, fleet.tenant(1)->CurrentVersion());
    EXPECT_GT(fleet.Epoch(), epoch_after_start);
  } else {
    EXPECT_EQ(o.version, 1u);
  }
  // Tenant 2 was untouched: still serving version 1 with no stalls.
  EXPECT_EQ(fleet.tenant(2)->CurrentVersion(), 1u);
  ASSERT_TRUE(fleet.Estimate(TenantRequest(2, train[0].features)).ok());

  // Unknown tenant: the future resolves NotFound instead of hanging.
  EXPECT_EQ(fleet.SubmitInvocation(99, invocation).get().status().code(),
            StatusCode::kNotFound);
  fleet.Stop();
}

TEST(ServingFleetTest, ShedBudgetIsolatesASaturatedTenant) {
  StubFleetEnv env(53);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);

  core::ServeConfig config;
  config.batch_max = 2;  // queue path, so depth is observable
  config.tenant_queue_depth = 4;
  config.tenant_shed_budget = 1;
  // ThreadPool(n) spawns n-1 workers (the submitter participates in
  // ParallelFor); 2 gives exactly one dispatch worker to park below.
  util::ThreadPool pool(2);
  ServingFleet fleet(config, &pool);
  ASSERT_TRUE(fleet.AddTenant(1, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.AddTenant(2, env.MakeTenant(train)).ok());
  ASSERT_TRUE(fleet.Start().ok());

  util::Counter* shed_counter = util::Metrics().GetCounter(
      TenantMetricName("serve.tenant.shed", /*tenant_id=*/1));
  const uint64_t shed_before = shed_counter->Value();

  // Park the ONLY dispatch worker so queued requests deterministically stay
  // queued while we probe the admission decisions.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> blocked{false};
  std::future<void> blocker = pool.Submit([&] {
    blocked.store(true);
    gate_future.wait();
  });
  while (!blocked.load()) std::this_thread::yield();

  const std::vector<double>& probe = train[0].features;
  // First request: admitted (depth 0 < budget 1).
  auto admitted = fleet.EstimateAsync(TenantRequest(1, probe));
  // Second request: tenant 1 is now at its budget — shed.
  Result<EstimateResponse> shed =
      fleet.EstimateAsync(TenantRequest(1, probe)).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed_counter->Value(), shed_before + 1);

  // priority > 0 bypasses the budget (still bounded by queue capacity).
  EstimateRequest urgent = TenantRequest(1, probe);
  urgent.priority = 1;
  auto bypassed = fleet.EstimateAsync(urgent);

  // The SIBLING is not penalized by tenant 1's saturation: its own queue is
  // empty, so it is admitted.
  auto sibling = fleet.EstimateAsync(TenantRequest(2, probe));

  gate.set_value();
  blocker.get();
  EXPECT_TRUE(admitted.get().ok());
  EXPECT_TRUE(bypassed.get().ok());
  EXPECT_TRUE(sibling.get().ok());
  fleet.Stop();
}

// Satellite: the deprecated positional shims still work and agree with the
// request-struct API they wrap.
TEST(ServingFleetTest, DeprecatedShimsDelegateToRequestApi) {
  StubFleetEnv env(54);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 40);
  core::Warper* warper = env.MakeTenant(train);

  core::ServeConfig config;
  config.batch_max = 1;
  ServerOptions options;
  options.config = &config;
  EstimationServer server(warper, options);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<double>& probe = train[0].features;
  Result<EstimateResponse> via_struct =
      server.Estimate(TenantRequest(0, probe));
  ASSERT_TRUE(via_struct.ok());

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Result<double> via_shim = server.Estimate(probe);
  std::future<Result<double>> via_async_shim = server.EstimateAsync(probe);
#pragma GCC diagnostic pop
  ASSERT_TRUE(via_shim.ok());
  EXPECT_EQ(via_shim.ValueOrDie(), via_struct.ValueOrDie().estimate);
  Result<double> async_value = via_async_shim.get();
  ASSERT_TRUE(async_value.ok());
  EXPECT_EQ(async_value.ValueOrDie(), via_struct.ValueOrDie().estimate);
  server.Stop();
}

// ---------------------------------------------------------------------------
// AdaptationOutcome::version contract (satellite): on rollback the reported
// version is the one still serving — it never names the rejected model.

TEST(ServingFleetTest, AdaptationOutcomeVersionContract) {
  storage::Table table = storage::MakePrsa(12000, /*seed=*/55);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(55);

  auto examples = [&](workload::GenMethod method, size_t n) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };
  std::vector<ce::LabeledExample> train =
      examples(workload::GenMethod::kW1, 400);

  // A real trainable model: the rollback needs weights that actually move.
  ce::LmMlpConfig model_config;
  model_config.hidden = {64, 64};
  ce::LmMlp model(domain.FeatureDim(), model_config, /*seed=*/55);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }
  core::WarperConfig warper_config;
  warper_config.hidden_units = 32;
  warper_config.hidden_layers = 2;
  warper_config.n_i = 30;
  warper_config.n_p = 100;
  core::Warper warper(&domain, &model, warper_config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  // Eval set labeled with the model's own estimates: the served model is
  // "perfect" on it, so under the strictest gate any weight movement is a
  // regression and the pass must roll back.
  std::vector<ce::LabeledExample> adversarial;
  for (const ce::LabeledExample& ex : train) {
    double est = model.EstimateCardinality(ex.features);
    if (est > 10.0 * ce::kQErrorTheta) {
      adversarial.push_back(
          {ex.features, static_cast<int64_t>(std::llround(est))});
    }
  }
  ASSERT_GE(adversarial.size(), 10u);

  core::ServeConfig config;
  config.batch_max = 1;
  config.regression_tolerance = 1.0;  // strictest gate
  ServingFleet fleet(config);
  constexpr uint64_t kTenant = 901;
  ASSERT_TRUE(fleet.AddTenant(kTenant, &warper).ok());
  ASSERT_TRUE(fleet.SetEvalSet(kTenant, adversarial).ok());
  ASSERT_TRUE(fleet.Start().ok());
  const uint64_t version_before = fleet.tenant(kTenant)->CurrentVersion();
  const uint64_t epoch_before = fleet.Epoch();
  util::Counter* rollbacks = util::Metrics().GetCounter(
      TenantMetricName("serve.tenant.rollbacks", kTenant));
  const uint64_t rollbacks_before = rollbacks->Value();

  core::Warper::Invocation invocation;
  invocation.new_queries = examples(workload::GenMethod::kW3, 60);
  Result<AdaptationOutcome> result =
      fleet.SubmitInvocation(kTenant, std::move(invocation)).get();
  ASSERT_TRUE(result.ok());
  const AdaptationOutcome& outcome = result.ValueOrDie();
  ASSERT_TRUE(outcome.rolled_back);
  EXPECT_FALSE(outcome.published);
  // THE contract: version is unchanged on rollback — it reports what is
  // still serving, never the rejected model.
  EXPECT_EQ(outcome.version, version_before);
  EXPECT_EQ(fleet.tenant(kTenant)->CurrentVersion(), version_before);
  // No publish, no epoch movement — sibling readers saw nothing.
  EXPECT_EQ(fleet.Epoch(), epoch_before);
  // And the per-tenant rollback counter recorded it.
  EXPECT_EQ(rollbacks->Value(), rollbacks_before + 1);
  fleet.Stop();
}

// ---------------------------------------------------------------------------
// Stress (the TSan target): 32 tenants, concurrent estimates × hot swaps.

TEST(ServingFleetStressTest, EstimatesVsAdaptationAcross32Tenants) {
  constexpr size_t kTenants = 32;
  StubFleetEnv env(56);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 30);

  core::ServeConfig config;
  config.batch_max = 1;  // inline fast path: producers never queue
  config.adapt_threads = 4;
  util::ThreadPool pool(2);
  ServingFleet fleet(config, &pool);
  for (uint64_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(fleet.AddTenant(t, env.MakeTenant(train)).ok());
  }
  ASSERT_TRUE(fleet.Start().ok());
  EXPECT_EQ(fleet.Epoch(), kTenants);

  // Producers hammer random tenants while every tenant's adaptation pass
  // runs on the shared executor (hot-swapping snapshots when it publishes).
  constexpr size_t kProducers = 4;
  constexpr size_t kRequestsPerProducer = 300;
  std::atomic<size_t> bad{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng local(200 + p);
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < kRequestsPerProducer; ++i) {
        uint64_t t = static_cast<uint64_t>(
            local.UniformInt(0, static_cast<int64_t>(kTenants) - 1));
        Result<EstimateResponse> r =
            fleet.Estimate(TenantRequest(t, train[i % train.size()].features));
        if (!r.ok() || r.ValueOrDie().tenant_id != t) bad.fetch_add(1);
      }
    });
  }

  std::vector<ce::LabeledExample> drifted =
      env.Examples(workload::GenMethod::kW3, 20);
  go.store(true);
  std::vector<std::future<Result<AdaptationOutcome>>> passes;
  passes.reserve(kTenants);
  for (uint64_t t = 0; t < kTenants; ++t) {
    core::Warper::Invocation invocation;
    invocation.new_queries = drifted;
    passes.push_back(fleet.SubmitInvocation(t, std::move(invocation)));
  }
  for (auto& f : passes) {
    if (!f.get().ok()) bad.fetch_add(1);
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GE(fleet.Epoch(), kTenants);  // every publish bumped it exactly once
  fleet.Stop();
  // Stop is idempotent and the destructor tolerates a stopped fleet.
  fleet.Stop();
}

}  // namespace
}  // namespace warper::serve
