// SnapshotStore: RCU-style publication semantics.
#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include "serve_test_util.h"

namespace warper::serve {
namespace {

TEST(SnapshotStoreTest, EmptyStoreHasVersionZero) {
  SnapshotStore store;
  EXPECT_EQ(store.Current(), nullptr);
  EXPECT_EQ(store.CurrentVersion(), 0u);
}

TEST(SnapshotStoreTest, PublishMakesSnapshotCurrent) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/2.0, /*gmq=*/1.5));
  std::shared_ptr<const ModelSnapshot> snap = store.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_DOUBLE_EQ(snap->gmq(), 1.5);
  EXPECT_EQ(store.CurrentVersion(), 1u);

  nn::Matrix x(1, 3);
  x.SetRow(0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(snap->model().EstimateTargets(x)[0], 12.0);
}

TEST(SnapshotStoreTest, InFlightReadersKeepTheirVersionAcrossPublish) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/1.0));
  std::shared_ptr<const ModelSnapshot> held = store.Current();

  store.Publish(MakeStubSnapshot(2, /*scale=*/10.0));
  // The reader's pinned version is untouched; new reads see version 2.
  EXPECT_EQ(held->version(), 1u);
  nn::Matrix x(1, 1);
  x.SetRow(0, {3.0});
  EXPECT_DOUBLE_EQ(held->model().EstimateTargets(x)[0], 3.0);
  EXPECT_EQ(store.CurrentVersion(), 2u);
  EXPECT_DOUBLE_EQ(store.Current()->model().EstimateTargets(x)[0], 30.0);
}

TEST(SnapshotStoreTest, OldVersionDiesWithItsLastReader) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  std::weak_ptr<const ModelSnapshot> watch = store.Current();
  {
    std::shared_ptr<const ModelSnapshot> reader = store.Current();
    store.Publish(MakeStubSnapshot(2));
    EXPECT_FALSE(watch.expired());  // the reader still pins version 1
  }
  EXPECT_TRUE(watch.expired());  // last reader gone, version 1 reclaimed
}

}  // namespace
}  // namespace warper::serve
