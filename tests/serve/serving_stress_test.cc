// Concurrency stress for the serving layer — the TSan target: N producer
// threads hammer the estimate paths while a writer hot-swaps snapshots in a
// tight loop. Every estimate must come from exactly one coherent version
// (scale k predicts k·Σf), and no request may be lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"
#include "util/rng.h"

namespace warper::serve {
namespace {

constexpr size_t kDim = 4;

// Features summing to exactly 1.0 so a snapshot with scale k answers k — any
// torn read across versions would produce a value that is no version's
// answer.
std::vector<double> UnitFeatures() { return {0.25, 0.25, 0.25, 0.25}; }

EstimateRequest UnitRequest() {
  EstimateRequest request;
  request.features = UnitFeatures();
  return request;
}

bool IsSomeVersionsAnswer(double card, size_t max_version) {
  for (size_t k = 1; k <= max_version; ++k) {
    if (card == ce::TargetToCard(static_cast<double>(k))) return true;
  }
  return false;
}

TEST(ServingStressTest, ProducersVsHotSwapsDirectPath) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/1.0));
  core::ServeConfig config;
  config.batch_max = 1;  // inline fast path
  MicroBatcher batcher(config, &store, kDim);

  constexpr size_t kProducers = 4;
  constexpr size_t kSwaps = 200;
  constexpr size_t kRequestsPerProducer = 400;

  std::atomic<bool> go{false};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < kRequestsPerProducer; ++i) {
        Result<EstimateResponse> r = batcher.Estimate(UnitRequest());
        if (!r.ok() ||
            !IsSomeVersionsAnswer(r.ValueOrDie().estimate, kSwaps + 1)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    while (!go.load()) std::this_thread::yield();
    for (size_t k = 2; k <= kSwaps + 1; ++k) {
      store.Publish(MakeStubSnapshot(k, /*scale=*/static_cast<double>(k)));
    }
  });
  go.store(true);
  for (std::thread& t : producers) t.join();
  writer.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(store.CurrentVersion(), kSwaps + 1);
}

TEST(ServingStressTest, ProducersVsHotSwapsBatchedPath) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/1.0));
  core::ServeConfig config;
  config.batch_max = 8;
  config.batch_timeout_us = 50;
  MicroBatcher batcher(config, &store, kDim);
  ASSERT_TRUE(batcher.Start().ok());

  constexpr size_t kProducers = 4;
  constexpr size_t kSwaps = 100;
  constexpr size_t kRequestsPerProducer = 50;
  constexpr size_t kPipeline = 8;

  std::atomic<bool> go{false};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      std::vector<std::future<Result<EstimateResponse>>> inflight;
      for (size_t i = 0; i < kRequestsPerProducer; ++i) {
        inflight.push_back(batcher.EstimateAsync(UnitRequest()));
        if (inflight.size() >= kPipeline) {
          for (auto& f : inflight) {
            Result<EstimateResponse> r = f.get();
            if (!r.ok() || !IsSomeVersionsAnswer(r.ValueOrDie().estimate,
                                                 kSwaps + 1)) {
              bad.fetch_add(1);
            }
          }
          inflight.clear();
        }
      }
      for (auto& f : inflight) {
        Result<EstimateResponse> r = f.get();
        if (!r.ok() ||
            !IsSomeVersionsAnswer(r.ValueOrDie().estimate, kSwaps + 1)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    while (!go.load()) std::this_thread::yield();
    for (size_t k = 2; k <= kSwaps + 1; ++k) {
      store.Publish(MakeStubSnapshot(k, /*scale=*/static_cast<double>(k)));
      std::this_thread::yield();
    }
  });
  go.store(true);
  for (std::thread& t : producers) t.join();
  writer.join();
  batcher.Stop();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace warper::serve
