// MicroBatcher: coalescing, determinism, admission and deadlines.
#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "serve_test_util.h"
#include "util/rng.h"

namespace warper::serve {
namespace {

constexpr size_t kDim = 4;

core::ServeConfig Config(size_t batch_max, size_t capacity = 1024) {
  core::ServeConfig config;
  config.batch_max = batch_max;
  config.queue_capacity = capacity;
  return config;
}

EstimateRequest Req(std::vector<double> features, int64_t deadline_us = 0) {
  EstimateRequest request;
  request.features = std::move(features);
  request.deadline_us = deadline_us;
  return request;
}

std::vector<double> RandomFeatures(util::Rng* rng) {
  std::vector<double> f(kDim);
  for (double& v : f) v = rng->Uniform();
  return f;
}

TEST(MicroBatcherTest, BatchedMatchesDirectBitIdentical) {
  // The default ParallelConfig is deterministic (scalar kernels), so an
  // N-row pass must reproduce each 1-row pass bit for bit.
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/3.7));
  MicroBatcher batcher(Config(/*batch_max=*/8), &store, kDim);
  ASSERT_TRUE(batcher.Start().ok());

  util::Rng rng(42);
  std::vector<std::vector<double>> features;
  std::vector<std::future<Result<EstimateResponse>>> futures;
  for (size_t i = 0; i < 64; ++i) {
    features.push_back(RandomFeatures(&rng));
    futures.push_back(batcher.EstimateAsync(Req(features.back())));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<EstimateResponse> batched = futures[i].get();
    ASSERT_TRUE(batched.ok());
    Result<EstimateResponse> direct = batcher.EstimateDirect(Req(features[i]));
    ASSERT_TRUE(direct.ok());
    // Bit-identical, not approximately equal.
    EXPECT_EQ(batched.ValueOrDie().estimate, direct.ValueOrDie().estimate);
    // Both served from the same published snapshot version.
    EXPECT_EQ(batched.ValueOrDie().version, 1u);
    EXPECT_EQ(direct.ValueOrDie().version, 1u);
  }
  batcher.Stop();
}

TEST(MicroBatcherTest, BlockingEstimateResolvesThroughTheQueue) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/1.0));
  MicroBatcher batcher(Config(/*batch_max=*/4), &store, kDim);
  ASSERT_TRUE(batcher.Start().ok());

  EstimateRequest request = Req({0.1, 0.2, 0.3, 0.4});
  request.tenant_id = 7;
  Result<EstimateResponse> got = batcher.Estimate(request);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie().estimate,
            batcher.EstimateDirect(request).ValueOrDie().estimate);
  // The response echoes the request's tenant.
  EXPECT_EQ(got.ValueOrDie().tenant_id, 7u);
}

TEST(MicroBatcherTest, BatchMaxOneIsTheInlineFastPath) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/2.0));
  MicroBatcher batcher(Config(/*batch_max=*/1), &store, kDim);
  // No Start(): batch_max == 1 never touches the queue or dispatcher.
  Result<EstimateResponse> got = batcher.Estimate(Req({1.0, 1.0, 1.0, 1.0}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie().estimate,
            batcher.EstimateDirect(Req({1.0, 1.0, 1.0, 1.0}))
                .ValueOrDie()
                .estimate);
}

TEST(MicroBatcherTest, ShedPolicyRefusesOverflowWithUnavailable) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  core::ServeConfig config = Config(/*batch_max=*/2, /*capacity=*/2);
  config.overflow = core::ServeConfig::Overflow::kShed;
  MicroBatcher batcher(config, &store, kDim);

  // Dispatcher not started yet, so the queue fills deterministically.
  std::vector<double> f(kDim, 0.5);
  auto f1 = batcher.EstimateAsync(Req(f));
  auto f2 = batcher.EstimateAsync(Req(f));
  auto f3 = batcher.EstimateAsync(Req(f));  // over capacity -> shed
  Result<EstimateResponse> shed = f3.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  // The admitted two are served once the dispatcher runs.
  ASSERT_TRUE(batcher.Start().ok());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, AsyncCallersAreNeverParkedByBlockPolicy) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  core::ServeConfig config = Config(/*batch_max=*/2, /*capacity=*/1);
  config.overflow = core::ServeConfig::Overflow::kBlock;
  MicroBatcher batcher(config, &store, kDim);

  std::vector<double> f(kDim, 0.5);
  auto admitted = batcher.EstimateAsync(Req(f));
  // kBlock would park a synchronous caller; the pipelining API must return
  // immediately with Unavailable instead of deadlocking the producer.
  auto refused = batcher.EstimateAsync(Req(f));
  Result<EstimateResponse> r = refused.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  ASSERT_TRUE(batcher.Start().ok());
  EXPECT_TRUE(admitted.get().ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, ExpiredRequestsGetDeadlineExceeded) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  MicroBatcher batcher(Config(/*batch_max=*/4), &store, kDim);

  // Enqueue with a 1µs deadline while the dispatcher is not running, let it
  // lapse, then start: the dispatcher must expire it, not serve it.
  auto expired = batcher.EstimateAsync(
      Req(std::vector<double>(kDim, 0.5), /*deadline_us=*/1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(batcher.Start().ok());
  Result<EstimateResponse> r = expired.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  batcher.Stop();
}

TEST(MicroBatcherTest, WrongFeatureWidthIsRefusedUpFront) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  MicroBatcher batcher(Config(/*batch_max=*/4), &store, kDim);
  ASSERT_TRUE(batcher.Start().ok());
  Result<EstimateResponse> r = batcher.Estimate(Req({1.0, 2.0}));  // kDim is 4
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(batcher.EstimateDirect(Req({1.0})).ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, EstimateWithoutSnapshotFailsCleanly) {
  SnapshotStore store;  // nothing published
  MicroBatcher batcher(Config(/*batch_max=*/1), &store, kDim);
  Result<EstimateResponse> r =
      batcher.Estimate(Req(std::vector<double>(kDim, 0.5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MicroBatcherTest, StopAnswersQueuedRequestsAndIsIdempotent) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1));
  MicroBatcher batcher(Config(/*batch_max=*/4), &store, kDim);
  auto orphan = batcher.EstimateAsync(Req(std::vector<double>(kDim, 0.5)));
  batcher.Stop();  // never started: the queued request must still resolve
  Result<EstimateResponse> r = orphan.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  batcher.Stop();  // idempotent
  EXPECT_FALSE(batcher.Start().ok());  // no restart after Stop
  EXPECT_FALSE(batcher.running());
}

TEST(MicroBatcherTest, PoolModeServesBatchesWithoutADispatcherThread) {
  SnapshotStore store;
  store.Publish(MakeStubSnapshot(1, /*scale=*/1.3));
  util::ThreadPool pool(2);
  MicroBatcher batcher(Config(/*batch_max=*/8), &store, kDim);
  ASSERT_TRUE(batcher.StartOnPool(&pool).ok());

  util::Rng rng(7);
  std::vector<std::vector<double>> features;
  std::vector<std::future<Result<EstimateResponse>>> futures;
  for (size_t i = 0; i < 64; ++i) {
    features.push_back(RandomFeatures(&rng));
    futures.push_back(batcher.EstimateAsync(Req(features.back())));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<EstimateResponse> got = futures[i].get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.ValueOrDie().estimate,
              batcher.EstimateDirect(Req(features[i])).ValueOrDie().estimate);
  }
  EXPECT_GE(batcher.served_total(), 64u);
  batcher.Stop();
}

}  // namespace
}  // namespace warper::serve
