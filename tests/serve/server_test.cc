// EstimationServer: snapshot lifecycle, publish gate and §3.4 rollback.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::serve {
namespace {

struct Env {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;

  explicit Env(uint64_t seed, size_t rows = 20000)
      : table(storage::MakePrsa(rows, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {}

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }
};

EstimateRequest Req(std::vector<double> features) {
  EstimateRequest request;
  request.features = std::move(features);
  return request;
}

core::WarperConfig FastConfig() {
  core::WarperConfig config;
  config.hidden_units = 64;
  config.hidden_layers = 2;
  config.n_i = 60;
  config.n_p = 200;
  return config;
}

std::unique_ptr<ce::LmMlp> TrainModel(
    Env& env, const std::vector<ce::LabeledExample>& train, uint64_t seed) {
  auto model = std::make_unique<ce::LmMlp>(env.domain.FeatureDim(),
                                           ce::LmMlpConfig{}, seed);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(train, &x, &y);
  model->Train(x, y);
  return model;
}

// Eval examples labeled with the model's own current estimates: the served
// model scores a (near-)perfect GMQ on them, and any weight movement can
// only look like a regression. Restricted to estimates above the q-error
// floor θ so changed predictions actually change the score.
std::vector<ce::LabeledExample> SelfLabeledEvalSet(
    const ce::CardinalityEstimator& model,
    const std::vector<ce::LabeledExample>& pool) {
  std::vector<ce::LabeledExample> eval;
  for (const ce::LabeledExample& ex : pool) {
    double est = model.EstimateCardinality(ex.features);
    if (est > 10.0 * ce::kQErrorTheta) {
      eval.push_back({ex.features, static_cast<int64_t>(std::llround(est))});
    }
  }
  return eval;
}

TEST(EstimationServerTest, StartRequiresInitializedWarper) {
  Env env(30);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 30);
  core::Warper warper(&env.domain, model.get(), FastConfig());
  EstimationServer server(&warper);
  EXPECT_FALSE(server.Start().ok());  // Initialize() never ran
}

TEST(EstimationServerTest, StartPublishesVersionOneAndServes) {
  Env env(31);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 31);
  core::Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  EstimationServer server(&warper);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.CurrentVersion(), 1u);
  EXPECT_FALSE(server.Start().ok());  // double Start

  // Served estimates come from the snapshot clone and match the live model
  // exactly while no adaptation has run.
  const std::vector<double>& probe = train[0].features;
  Result<EstimateResponse> served = server.Estimate(Req(probe));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.ValueOrDie().estimate, model->EstimateCardinality(probe));
  EXPECT_EQ(served.ValueOrDie().version, 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.Estimate(Req(probe)).ok());
}

TEST(EstimationServerTest, AdaptationPublishesNewVersion) {
  Env env(32);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 32);
  core::WarperConfig config = FastConfig();
  // A gate this loose never rolls back: the pass must publish.
  config.serve.regression_tolerance = 100.0;
  core::Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  EstimationServer server(&warper);
  ASSERT_TRUE(server.Start().ok());

  core::Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  Result<AdaptationOutcome> outcome =
      server.SubmitInvocation(std::move(invocation)).get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.ValueOrDie().result.model_updated);
  EXPECT_TRUE(outcome.ValueOrDie().published);
  EXPECT_FALSE(outcome.ValueOrDie().rolled_back);
  EXPECT_EQ(outcome.ValueOrDie().version, 2u);
  EXPECT_EQ(server.CurrentVersion(), 2u);

  // The new snapshot serves the adapted model's estimates, and the response
  // reports the version that served it.
  const std::vector<double>& probe = train[0].features;
  Result<EstimateResponse> served = server.Estimate(Req(probe));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.ValueOrDie().estimate, model->EstimateCardinality(probe));
  EXPECT_EQ(served.ValueOrDie().version, 2u);
  server.Stop();
}

TEST(EstimationServerTest, RegressionRollsBackModelAndVersion) {
  Env env(33);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 33);
  core::WarperConfig config = FastConfig();
  // Strictest gate: any eval-set degradation at all is a regression.
  config.serve.regression_tolerance = 1.0;
  core::Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  EstimationServer server(&warper);
  std::vector<ce::LabeledExample> eval = SelfLabeledEvalSet(*model, train);
  ASSERT_GE(eval.size(), 10u);
  ASSERT_TRUE(server.SetEvalSet(eval).ok());
  ASSERT_TRUE(server.Start().ok());

  const std::vector<double>& probe = eval[0].features;
  double before = model->EstimateCardinality(probe);

  core::Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  Result<AdaptationOutcome> result =
      server.SubmitInvocation(std::move(invocation)).get();
  ASSERT_TRUE(result.ok());
  AdaptationOutcome outcome = result.MoveValueOrDie();
  EXPECT_TRUE(outcome.rolled_back);
  EXPECT_FALSE(outcome.published);
  EXPECT_GT(outcome.gate_after, outcome.gate_before);
  // Version unchanged; the live model's weights are restored bit-exact.
  EXPECT_EQ(server.CurrentVersion(), 1u);
  EXPECT_EQ(model->EstimateCardinality(probe), before);
  server.Stop();
}

TEST(EstimationServerTest, EvalSetValidation) {
  Env env(34);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 34);
  core::Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());
  EstimationServer server(&warper);

  EXPECT_FALSE(server.SetEvalSet({{{1.0, 2.0}, 10}}).ok());  // wrong width
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.SetEvalSet(train).ok());  // too late
  server.Stop();
}

TEST(EstimationServerTest, ReportObservationValidation) {
  Env env(36);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 36);
  core::Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());
  EstimationServer server(&warper);

  const std::vector<double>& probe = train[0].features;
  // Not running yet.
  EXPECT_EQ(server.ReportObservation(probe, 100.0).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(server.Start().ok());
  // Wrong feature width.
  EXPECT_EQ(server.ReportObservation({1.0, 2.0}, 100.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(server.ReportObservation(probe, 100.0).ok());
  server.Stop();
  EXPECT_FALSE(server.ReportObservation(probe, 100.0).ok());
}

TEST(EstimationServerTest, ReportObservationDrivesOffenderPressure) {
  Env env(37);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 37);
  core::WarperConfig config = FastConfig();
  config.tracker.min_count = 2;
  core::Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  EstimationServer server(&warper);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_DOUBLE_EQ(server.offender_pressure(), 0.0);
  EXPECT_TRUE(server.TopOffenders(3).empty());

  // Serving-path feedback far off the served estimate: the only observed
  // template goes unhealthy, so its traffic share — the offender pressure
  // the executor probe reads — is 1.
  const std::vector<double>& probe = train[0].features;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.ReportObservation(probe, 1e9).ok());
  }
  EXPECT_DOUBLE_EQ(server.offender_pressure(), 1.0);
  std::vector<core::TemplateTracker::Offender> top = server.TopOffenders(3);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].stats.count, 3u);
  EXPECT_GT(top[0].drift_score, 1.0);
  server.Stop();
}

TEST(EstimationServerTest, TenantMetricsPublishDriftSeverityGauge) {
  Env env(38);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 38);
  core::WarperConfig config = FastConfig();
  config.serve.regression_tolerance = 100.0;  // never roll back
  core::Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  ServerOptions options;
  options.tenant_id = 77;
  options.tenant_metrics = true;
  EstimationServer server(&warper, options);
  ASSERT_TRUE(server.Start().ok());

  core::Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  ASSERT_TRUE(server.SubmitInvocation(std::move(invocation)).get().ok());

  // The per-tenant instance carries this tenant's severity (the global
  // warper.drift_severity gauge only shows the last writer fleet-wide).
  util::MetricsSnapshot snap = util::Metrics().Snapshot();
  auto it = snap.gauges.find("warper.drift_severity.77");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_DOUBLE_EQ(it->second, server.drift_severity());
  server.Stop();
}

TEST(EstimationServerTest, SubmitBeforeStartIsRefused) {
  Env env(35);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 35);
  core::Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());
  EstimationServer server(&warper);

  Result<AdaptationOutcome> refused =
      server.SubmitInvocation(core::Warper::Invocation{}).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace warper::serve
