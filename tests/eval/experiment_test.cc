// Integration test of the drift-experiment harness on a small scale.
#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "storage/datasets.h"

namespace warper::eval {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.train_size = 300;
  config.test_size = 60;
  config.steps = 2;
  config.queries_per_step = 40;
  config.repeats = 1;
  config.seed = 5;
  config.warper.hidden_units = 32;
  config.warper.hidden_layers = 2;
  config.warper.n_i = 30;
  config.warper.n_p = 100;
  return config;
}

TEST(ExperimentTest, WorkloadDriftC2ProducesComparableCurves) {
  SingleTableDriftSpec spec;
  spec.table_factory = [](uint64_t seed) {
    return storage::MakePrsa(8000, seed);
  };
  spec.workload = workload::WorkloadSpec::Parse("w1/3").ValueOrDie();
  spec.model_factory = LmMlpFactory();
  spec.methods = {Method::kFt, Method::kWarper};
  spec.config = TinyConfig();

  DriftExperimentResult result = RunSingleTableDrift(spec);
  ASSERT_EQ(result.methods.size(), 2u);
  EXPECT_EQ(result.methods[0].name, "FT");
  EXPECT_EQ(result.methods[1].name, "Warper");
  // Both curves start at the same unadapted point.
  EXPECT_NEAR(result.methods[0].median.gmq[0], result.methods[1].median.gmq[0],
              1e-9);
  EXPECT_EQ(result.methods[0].median.queries.size(), 3u);  // 0 + 2 steps
  EXPECT_GT(result.alpha, 1.0);
  EXPECT_GT(result.beta, 0.99);
  EXPECT_GE(result.delta_js, 0.0);
  // FT vs itself is exactly 1.
  EXPECT_DOUBLE_EQ(result.methods[0].deltas.d50, 1.0);
  // Warper's adaptation must not be slower than FT by more than noise (the
  // tiny single-repeat config here is noisy; the benches use full settings).
  EXPECT_GE(result.methods[1].deltas.d100, 0.3);
}

TEST(ExperimentTest, DataDriftC1RunsWithBudget) {
  SingleTableDriftSpec spec;
  spec.table_factory = [](uint64_t seed) {
    return storage::MakeHiggs(6000, seed);
  };
  spec.workload = workload::WorkloadSpec::Parse("w1-5").ValueOrDie();
  spec.model_factory = LmMlpFactory();
  spec.methods = {Method::kFt, Method::kWarper};
  spec.config = TinyConfig();
  spec.config.drift = drift::DriftSpec::C1();
  spec.config.annotation_budget_per_step = 30;

  DriftExperimentResult result = RunSingleTableDrift(spec);
  // Budget respected: ≤ 30 per step × 2 steps.
  for (const MethodResult& m : result.methods) {
    EXPECT_LE(m.annotations, 60.0);
  }
}

TEST(ExperimentTest, LabelStarvedC3RunsWithBudget) {
  SingleTableDriftSpec spec;
  spec.table_factory = [](uint64_t seed) {
    return storage::MakePrsa(6000, seed);
  };
  spec.workload = workload::WorkloadSpec::Parse("w1/4").ValueOrDie();
  spec.model_factory = LmMlpFactory();
  spec.methods = {Method::kFt, Method::kWarper};
  spec.config = TinyConfig();
  spec.config.drift = drift::DriftSpec::C3();
  spec.config.annotation_budget_per_step = 20;

  DriftExperimentResult result = RunSingleTableDrift(spec);
  for (const MethodResult& m : result.methods) {
    EXPECT_LE(m.annotations, 40.0);
    EXPECT_GT(m.annotations, 0.0);
  }
}

TEST(ExperimentTest, StarJoinDriftRuns) {
  StarJoinDriftSpec spec;
  spec.tables_factory = [](uint64_t seed) {
    return storage::MakeImdb(400, seed);
  };
  spec.train_method = workload::GenMethod::kW4;
  spec.drifted_method = workload::GenMethod::kW1;
  spec.methods = {Method::kFt, Method::kWarper};
  spec.config = TinyConfig();
  spec.config.train_size = 200;
  spec.config.test_size = 40;

  DriftExperimentResult result = RunStarJoinDrift(spec);
  ASSERT_EQ(result.methods.size(), 2u);
  EXPECT_GT(result.alpha, 0.99);
}

TEST(ExperimentTest, MethodNamesComplete) {
  EXPECT_STREQ(MethodName(Method::kMix), "MIX");
  EXPECT_STREQ(MethodName(Method::kAug), "AUG");
  EXPECT_STREQ(MethodName(Method::kHem), "HEM");
  EXPECT_STREQ(MethodName(Method::kWarperPickEntropy), "Warper(P->entropy)");
  EXPECT_STREQ(MethodName(Method::kWarperGenAug), "Warper(G->AUG)");
}

}  // namespace
}  // namespace warper::eval
