// Invariants of the experiment harness's cross-repeat aggregation: curve
// axes align, quartiles bracket the median, all methods share the same
// unadapted starting point, and FT's self-speedup is exactly 1.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "storage/datasets.h"

namespace warper::eval {
namespace {

DriftExperimentResult RunSmall(int repeats) {
  SingleTableDriftSpec spec;
  spec.table_factory = [](uint64_t seed) {
    return storage::MakePrsa(5000, seed);
  };
  spec.workload = workload::WorkloadSpec::Parse("w1/3").ValueOrDie();
  spec.model_factory = LmMlpFactory();
  spec.methods = {Method::kFt, Method::kMix};
  spec.config.train_size = 250;
  spec.config.test_size = 50;
  spec.config.steps = 2;
  spec.config.queries_per_step = 30;
  spec.config.repeats = repeats;
  spec.config.seed = 21;
  return RunSingleTableDrift(spec);
}

TEST(AggregateTest, QuartilesBracketMedian) {
  DriftExperimentResult result = RunSmall(/*repeats=*/3);
  for (const MethodResult& m : result.methods) {
    ASSERT_TRUE(m.median.Valid());
    ASSERT_EQ(m.q1.gmq.size(), m.median.gmq.size());
    ASSERT_EQ(m.q3.gmq.size(), m.median.gmq.size());
    for (size_t i = 0; i < m.median.gmq.size(); ++i) {
      EXPECT_LE(m.q1.gmq[i], m.median.gmq[i] + 1e-9);
      EXPECT_GE(m.q3.gmq[i], m.median.gmq[i] - 1e-9);
    }
  }
}

TEST(AggregateTest, CurveAxesConsistent) {
  DriftExperimentResult result = RunSmall(/*repeats=*/2);
  for (const MethodResult& m : result.methods) {
    // x-axis: 0, 30, 60.
    ASSERT_EQ(m.median.queries.size(), 3u);
    EXPECT_DOUBLE_EQ(m.median.queries[0], 0.0);
    EXPECT_DOUBLE_EQ(m.median.queries[1], 30.0);
    EXPECT_DOUBLE_EQ(m.median.queries[2], 60.0);
  }
  // All methods start from the identically-seeded unadapted model.
  EXPECT_NEAR(result.methods[0].median.gmq[0], result.methods[1].median.gmq[0],
              1e-9);
}

TEST(AggregateTest, FtSelfSpeedupIsOne) {
  DriftExperimentResult result = RunSmall(/*repeats=*/2);
  EXPECT_DOUBLE_EQ(result.methods[0].deltas.d50, 1.0);
  EXPECT_DOUBLE_EQ(result.methods[0].deltas.d80, 1.0);
  EXPECT_DOUBLE_EQ(result.methods[0].deltas.d100, 1.0);
}

TEST(AggregateTest, DriftMetricsWellFormed) {
  DriftExperimentResult result = RunSmall(/*repeats=*/2);
  EXPECT_GE(result.alpha, 1.0);
  EXPECT_GE(result.beta, 1.0);
  EXPECT_NEAR(result.delta_m, result.alpha - result.beta, 1e-9);
  EXPECT_GE(result.delta_js, 0.0);
  EXPECT_LE(result.delta_js, 1.0);
}

TEST(AggregateTest, SingleRepeatQuartilesCollapse) {
  DriftExperimentResult result = RunSmall(/*repeats=*/1);
  for (const MethodResult& m : result.methods) {
    for (size_t i = 0; i < m.median.gmq.size(); ++i) {
      EXPECT_DOUBLE_EQ(m.q1.gmq[i], m.median.gmq[i]);
      EXPECT_DOUBLE_EQ(m.q3.gmq[i], m.median.gmq[i]);
    }
  }
}

}  // namespace
}  // namespace warper::eval
