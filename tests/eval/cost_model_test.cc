#include "eval/cost_model.h"

#include <gtest/gtest.h>

#include "ce/query_domain.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::eval {
namespace {

TEST(CostModelTest, UtilizationFormula) {
  CostInputs inputs;
  inputs.rate_qps = 0.2;
  inputs.period_seconds = 1800.0;
  inputs.annotation_seconds_per_query = 0.01;
  inputs.annotations_per_arrival = 0.1;
  inputs.constant_seconds = 52.1;
  // 0.2·1800·0.1 = 36 annotations · 0.01s = 0.36s; (0.36 + 52.1)/1800.
  EXPECT_NEAR(AverageCpuUtilization(inputs), 52.46 / 1800.0, 1e-9);
}

TEST(CostModelTest, HigherRateHigherUtilization) {
  CostInputs low, high;
  low.rate_qps = 0.2;
  high.rate_qps = 10.0;
  low.period_seconds = high.period_seconds = 600.0;
  low.annotation_seconds_per_query = high.annotation_seconds_per_query = 0.01;
  low.annotations_per_arrival = high.annotations_per_arrival = 0.5;
  EXPECT_LT(AverageCpuUtilization(low), AverageCpuUtilization(high));
}

TEST(CostModelTest, CanExceedOneCore) {
  CostInputs inputs;
  inputs.rate_qps = 1000.0;
  inputs.period_seconds = 600.0;
  inputs.annotation_seconds_per_query = 0.01;
  inputs.annotations_per_arrival = 1.0;
  // 1000 q/s × 0.01 s/query = 10 cores — "Warper cannot keep up" (§4.1).
  EXPECT_GT(AverageCpuUtilization(inputs), 1.0);
}

TEST(CostModelTest, MeasuredAnnotationCostPositiveAndScalesWithRows) {
  util::Rng rng(3);
  storage::Table small = storage::MakePrsa(2000, 1);
  storage::Table large = storage::MakePrsa(40000, 1);
  storage::Annotator small_annotator(&small);
  storage::Annotator large_annotator(&large);
  ce::SingleTableDomain small_domain(&small_annotator);
  ce::SingleTableDomain large_domain(&large_annotator);

  std::vector<std::vector<double>> features;
  for (const auto& p : workload::GenerateWorkload(
           small, {workload::GenMethod::kW1}, 50, &rng)) {
    features.push_back(p.Featurize(small));
  }
  double small_cost = MeasureAnnotationSecondsPerQuery(small_domain, features);
  double large_cost = MeasureAnnotationSecondsPerQuery(large_domain, features);
  EXPECT_GT(small_cost, 0.0);
  EXPECT_GT(large_cost, small_cost);
}

}  // namespace
}  // namespace warper::eval
