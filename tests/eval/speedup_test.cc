#include "eval/speedup.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warper::eval {
namespace {

AdaptationCurve MakeCurve(std::vector<double> queries, std::vector<double> gmq) {
  AdaptationCurve curve;
  curve.queries = std::move(queries);
  curve.gmq = std::move(gmq);
  return curve;
}

TEST(CurveTest, Validity) {
  EXPECT_TRUE(MakeCurve({0, 10, 20}, {3, 2, 1}).Valid());
  EXPECT_FALSE(MakeCurve({}, {}).Valid());
  EXPECT_FALSE(MakeCurve({0, 10}, {3}).Valid());
  EXPECT_FALSE(MakeCurve({10, 0}, {3, 2}).Valid());
}

TEST(QueriesToReachTest, ExactPoint) {
  AdaptationCurve curve = MakeCurve({0, 100, 200}, {4.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(QueriesToReach(curve, 3.0), 100.0);
  EXPECT_DOUBLE_EQ(QueriesToReach(curve, 4.0), 0.0);
}

TEST(QueriesToReachTest, Interpolates) {
  AdaptationCurve curve = MakeCurve({0, 100}, {4.0, 2.0});
  EXPECT_DOUBLE_EQ(QueriesToReach(curve, 3.0), 50.0);
  EXPECT_DOUBLE_EQ(QueriesToReach(curve, 2.5), 75.0);
}

TEST(QueriesToReachTest, NeverReachedIsInfinity) {
  AdaptationCurve curve = MakeCurve({0, 100}, {4.0, 3.0});
  EXPECT_TRUE(std::isinf(QueriesToReach(curve, 1.0)));
}

TEST(QueriesToReachTest, NonMonotoneCurveHandled) {
  // GMQ can bounce; reaching the target counts at the first crossing.
  AdaptationCurve curve = MakeCurve({0, 100, 200, 300}, {4.0, 2.0, 3.5, 1.5});
  EXPECT_DOUBLE_EQ(QueriesToReach(curve, 2.0), 100.0);
  EXPECT_NEAR(QueriesToReach(curve, 1.8), 285.0, 1.0);
}

TEST(RelativeSpeedupsTest, TwiceAsFastIsTwo) {
  // α=4, β=2. FT reaches 3.0 at 100 queries; method at 50.
  AdaptationCurve ft = MakeCurve({0, 100, 200}, {4.0, 3.0, 2.0});
  AdaptationCurve fast = MakeCurve({0, 50, 100}, {4.0, 3.0, 2.0});
  Deltas d = RelativeSpeedups(ft, fast, 4.0, 2.0, 1000.0);
  EXPECT_DOUBLE_EQ(d.d50, 2.0);
  EXPECT_DOUBLE_EQ(d.d100, 2.0);
}

TEST(RelativeSpeedupsTest, SameCurveIsOne) {
  AdaptationCurve ft = MakeCurve({0, 100, 200}, {4.0, 3.0, 2.0});
  Deltas d = RelativeSpeedups(ft, ft, 4.0, 2.0, 1000.0);
  EXPECT_DOUBLE_EQ(d.d50, 1.0);
  EXPECT_DOUBLE_EQ(d.d80, 1.0);
  EXPECT_DOUBLE_EQ(d.d100, 1.0);
}

TEST(RelativeSpeedupsTest, UnreachedTargetsCapped) {
  AdaptationCurve ft = MakeCurve({0, 100}, {4.0, 3.9});      // barely moves
  AdaptationCurve good = MakeCurve({0, 100}, {4.0, 2.0});    // converges
  Deltas d = RelativeSpeedups(ft, good, 4.0, 2.0, 500.0);
  // FT capped at 500; method reaches β=2 at 100 → 5×.
  EXPECT_DOUBLE_EQ(d.d100, 5.0);
}

TEST(RelativeSpeedupsTest, D80TargetsTwentyPercentResidual) {
  // α=10, β=0: the 80% target is GMQ 2.0.
  AdaptationCurve ft = MakeCurve({0, 100}, {10.0, 0.0});
  AdaptationCurve method = MakeCurve({0, 40, 100}, {10.0, 2.0, 0.0});
  Deltas d = RelativeSpeedups(ft, method, 10.0, 0.0, 1000.0);
  EXPECT_DOUBLE_EQ(d.d80, 2.0);  // FT: 80 queries; method: 40
}

TEST(RelativeSpeedupsTest, SlowerMethodBelowOne) {
  AdaptationCurve ft = MakeCurve({0, 50, 100}, {4.0, 3.0, 2.0});
  AdaptationCurve slow = MakeCurve({0, 100, 200}, {4.0, 3.0, 2.0});
  Deltas d = RelativeSpeedups(ft, slow, 4.0, 2.0, 1000.0);
  EXPECT_LT(d.d100, 1.0);
}

}  // namespace
}  // namespace warper::eval
