// util::ErrorLog: running-stat math, the sharded store, offender views and
// the named-registry export surface behind WARPER_ERRLOG.
#include "util/errlog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace warper::util {
namespace {

TEST(RunningErrorStatsTest, EmptyStatsAreAllZero) {
  RunningErrorStats s;
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.MeanErr(), 0.0);
  EXPECT_DOUBLE_EQ(s.RmsErr(), 0.0);
  EXPECT_DOUBLE_EQ(s.CostWeightedErr(), 0.0);
}

TEST(RunningErrorStatsTest, ObserveMatchesHandComputedMoments) {
  RunningErrorStats s;
  const double alpha = 0.5;
  s.Observe(1.0, 10.0, /*tick=*/1, alpha);
  s.Observe(3.0, 30.0, /*tick=*/2, alpha);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.MeanErr(), 2.0);
  EXPECT_DOUBLE_EQ(s.RmsErr(), std::sqrt((1.0 + 9.0) / 2.0));
  // The first observation seeds the EWMA; the second blends against it.
  EXPECT_DOUBLE_EQ(s.ewma_err, 0.5 * 3.0 + 0.5 * 1.0);
  // Σ cost·err / Σ cost = (10·1 + 30·3) / 40.
  EXPECT_DOUBLE_EQ(s.CostWeightedErr(), 100.0 / 40.0);
  EXPECT_EQ(s.last_seen_tick, 2u);
}

TEST(RunningErrorStatsTest, LastSeenTickNeverRegresses) {
  RunningErrorStats s;
  s.Observe(1.0, 1.0, /*tick=*/9, 0.2);
  s.Observe(1.0, 1.0, /*tick=*/4, 0.2);  // out-of-order delivery
  EXPECT_EQ(s.last_seen_tick, 9u);
}

TEST(RunningErrorStatsTest, ZeroCostFallsBackToMeanErr) {
  RunningErrorStats s;
  s.Observe(2.0, 0.0, 1, 0.2);
  s.Observe(4.0, 0.0, 2, 0.2);
  EXPECT_DOUBLE_EQ(s.CostWeightedErr(), 3.0);
}

TEST(RunningErrorStatsTest, MergeIsExactOnCumulativeFields) {
  const double alpha = 0.3;
  RunningErrorStats a, b, all;
  const std::vector<double> errs_a = {1.0, 2.0, 5.0};
  const std::vector<double> errs_b = {0.5, 7.0};
  uint64_t tick = 0;
  for (double e : errs_a) {
    a.Observe(e, 2.0 * e, ++tick, alpha);
    all.Observe(e, 2.0 * e, tick, alpha);
  }
  for (double e : errs_b) {
    b.Observe(e, 2.0 * e, ++tick, alpha);
    all.Observe(e, 2.0 * e, tick, alpha);
  }
  RunningErrorStats merged = a;
  merged.Merge(b);
  // Sums are stored (not derived means) precisely so the merge is exact.
  EXPECT_EQ(merged.count, all.count);
  EXPECT_DOUBLE_EQ(merged.sum_err, all.sum_err);
  EXPECT_DOUBLE_EQ(merged.sum_sq_err, all.sum_sq_err);
  EXPECT_DOUBLE_EQ(merged.sum_cost, all.sum_cost);
  EXPECT_DOUBLE_EQ(merged.sum_cost_err, all.sum_cost_err);
  EXPECT_EQ(merged.last_seen_tick, all.last_seen_tick);
  // The EWMA has no exact order-independent merge; the contract is the
  // count-weighted average of the inputs.
  EXPECT_DOUBLE_EQ(merged.ewma_err, (a.ewma_err * 3.0 + b.ewma_err * 2.0) / 5.0);
}

TEST(RunningErrorStatsTest, MergeWithEmptyIsIdentityBothWays) {
  RunningErrorStats s;
  s.Observe(2.0, 4.0, 3, 0.2);
  RunningErrorStats copy = s;
  copy.Merge(RunningErrorStats{});
  EXPECT_EQ(copy.count, s.count);
  EXPECT_DOUBLE_EQ(copy.ewma_err, s.ewma_err);

  RunningErrorStats empty;
  empty.Merge(s);
  EXPECT_EQ(empty.count, s.count);
  EXPECT_DOUBLE_EQ(empty.sum_err, s.sum_err);
  EXPECT_DOUBLE_EQ(empty.ewma_err, s.ewma_err);
}

TEST(ErrorLogTest, RecordLookupRoundTrip) {
  ErrorLog log;
  RunningErrorStats stats;
  EXPECT_FALSE(log.Lookup(42, &stats));
  log.Record(42, 1.5, 10.0, 7);
  ASSERT_TRUE(log.Lookup(42, &stats));
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.ewma_err, 1.5);
  EXPECT_EQ(stats.last_seen_tick, 7u);
  EXPECT_EQ(log.NumKeys(), 1u);
  EXPECT_EQ(log.Observations(), 1u);
}

TEST(ErrorLogTest, TopOffendersWorstEwmaFirstTiesByKey) {
  ErrorLog log;
  log.Record(3, 1.0, 1.0, 1);
  log.Record(1, 5.0, 1.0, 1);
  log.Record(9, 2.0, 1.0, 1);
  // Equal EWMA to key 9's: the tie breaks toward the smaller key.
  log.Record(7, 2.0, 1.0, 1);
  std::vector<ErrorLog::Entry> top = log.TopOffenders(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 7u);
  EXPECT_EQ(top[2].key, 9u);
  // k larger than the population returns everything.
  EXPECT_EQ(log.TopOffenders(100).size(), 4u);
}

TEST(ErrorLogTest, AggregateMergesEveryKey) {
  ErrorLog log;
  log.Record(1, 1.0, 2.0, 1);
  log.Record(2, 3.0, 4.0, 2);
  log.Record(1, 5.0, 6.0, 3);
  RunningErrorStats total = log.Aggregate();
  EXPECT_EQ(total.count, 3u);
  EXPECT_DOUBLE_EQ(total.sum_err, 9.0);
  EXPECT_DOUBLE_EQ(total.sum_cost, 12.0);
  EXPECT_EQ(total.last_seen_tick, 3u);
}

TEST(ErrorLogTest, ClearDropsEverything) {
  ErrorLog log;
  log.Record(1, 1.0, 1.0, 1);
  log.Record(2, 1.0, 1.0, 1);
  log.Clear();
  EXPECT_EQ(log.NumKeys(), 0u);
  EXPECT_EQ(log.Observations(), 0u);
  RunningErrorStats stats;
  EXPECT_FALSE(log.Lookup(1, &stats));
  // Still usable after the wipe.
  log.Record(1, 2.0, 1.0, 5);
  ASSERT_TRUE(log.Lookup(1, &stats));
  EXPECT_EQ(stats.count, 1u);
}

// Concurrent writers across overlapping keys: counts and sums must be exact
// (shard mutexes, no lost updates). The TSan job's main target in this file.
TEST(ErrorLogTest, ConcurrentWritersAreExact) {
  ErrorLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  constexpr uint64_t kKeys = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(static_cast<uint64_t>(i) % kKeys, 1.0, 2.0,
                   static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.Observations(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.NumKeys(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    RunningErrorStats stats;
    ASSERT_TRUE(log.Lookup(k, &stats));
    EXPECT_EQ(stats.count,
              static_cast<uint64_t>(kThreads) * kPerThread / kKeys);
    EXPECT_DOUBLE_EQ(stats.sum_err, static_cast<double>(stats.count));
  }
}

TEST(ErrLogRegistryTest, RegisteredLogsAppearInJsonWithDedupedNames) {
  std::shared_ptr<ErrorLog> a = NewRegisteredErrorLog("test.errlog.dup");
  std::shared_ptr<ErrorLog> b = NewRegisteredErrorLog("test.errlog.dup");
  a->Record(0xABCDEF, 1.0, 1.0, 1);
  std::string json = ErrLogsToJson();
  EXPECT_NE(json.find("\"test.errlog.dup\""), std::string::npos);
  EXPECT_NE(json.find("\"test.errlog.dup#2\""), std::string::npos);
  EXPECT_NE(json.find("0000000000abcdef"), std::string::npos);
}

TEST(ErrLogRegistryTest, EmptyNameMeansUnregistered) {
  std::shared_ptr<ErrorLog> anon = NewRegisteredErrorLog("");
  anon->Record(0x5151515151, 9.0, 1.0, 1);
  EXPECT_EQ(ErrLogsToJson().find("5151515151"), std::string::npos);
}

TEST(ErrLogRegistryTest, DeadLogsDropOutOfExports) {
  // Retention only applies under WARPER_ERRLOG, which the test binary does
  // not set; a log must vanish from the export with its owner.
  { NewRegisteredErrorLog("test.errlog.ephemeral")->Record(1, 1.0, 1.0, 1); }
  EXPECT_EQ(ErrLogsToJson().find("test.errlog.ephemeral"), std::string::npos);
  EXPECT_EQ(ErrLogsTextDump().find("test.errlog.ephemeral"),
            std::string::npos);
}

TEST(ErrLogRegistryTest, TextDumpShowsOffenderRows) {
  std::shared_ptr<ErrorLog> log = NewRegisteredErrorLog("test.errlog.dump");
  log->Record(0x2A, 1.0, 1.0, 3);
  std::string dump = ErrLogsTextDump();
  EXPECT_NE(dump.find("test.errlog.dump"), std::string::npos);
  EXPECT_NE(dump.find("000000000000002a"), std::string::npos);
}

TEST(ErrLogRegistryTest, ExportWritesJsonDocument) {
  std::shared_ptr<ErrorLog> log = NewRegisteredErrorLog("test.errlog.export");
  log->Record(7, 2.0, 3.0, 1);
  std::string path = testing::TempDir() + "errlog_export_test.json";
  ASSERT_TRUE(ExportErrLogs(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string doc((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"logs\""), std::string::npos);
  EXPECT_NE(doc.find("test.errlog.export"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(ExportErrLogs("/nonexistent-dir/errlog.json").ok());
}

}  // namespace
}  // namespace warper::util
