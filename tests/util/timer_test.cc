#include "util/timer.h"

#include <gtest/gtest.h>

namespace warper::util {
namespace {

TEST(WallTimerTest, NonNegativeAndMonotonic) {
  WallTimer timer;
  double t1 = timer.Seconds();
  double t2 = timer.Seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(CpuAccumulatorTest, AddsAndResets) {
  CpuAccumulator acc;
  acc.Add(1.5);
  acc.Add(0.5);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 2.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.0);
}

TEST(CpuAccumulatorTest, Utilization) {
  CpuAccumulator acc;
  acc.Add(9.0);
  EXPECT_DOUBLE_EQ(acc.UtilizationOver(1800.0), 0.005);
  EXPECT_DOUBLE_EQ(acc.UtilizationOver(0.0), 0.0);
}

TEST(ScopedCpuTimerTest, AccumulatesScopeTime) {
  CpuAccumulator acc;
  {
    ScopedCpuTimer timer(&acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_GT(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace warper::util
