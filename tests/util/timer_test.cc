#include "util/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace warper::util {
namespace {

// Spins long enough to accrue measurable thread-CPU time.
void BurnCpu() {
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
}

TEST(WallTimerTest, NonNegativeAndMonotonic) {
  WallTimer timer;
  double t1 = timer.Seconds();
  double t2 = timer.Seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(CpuAccumulatorTest, AddsAndResets) {
  CpuAccumulator acc;
  acc.Add(1.5);
  acc.Add(0.5);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 2.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.0);
}

TEST(CpuAccumulatorTest, Utilization) {
  CpuAccumulator acc;
  acc.Add(9.0);
  EXPECT_DOUBLE_EQ(acc.UtilizationOver(1800.0), 0.005);
  EXPECT_DOUBLE_EQ(acc.UtilizationOver(0.0), 0.0);
}

TEST(ScopedCpuTimerTest, AccumulatesScopeTime) {
  CpuAccumulator acc;
  {
    ScopedCpuTimer timer(&acc);
    BurnCpu();
  }
  EXPECT_GT(acc.TotalSeconds(), 0.0);
}

TEST(ThreadCpuTimerTest, BusyWorkAccruesCpuTime) {
  ThreadCpuTimer timer;
  BurnCpu();
  double t1 = timer.Seconds();
  EXPECT_GT(t1, 0.0);
  BurnCpu();
  double t2 = timer.Seconds();
  EXPECT_GE(t2, t1);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), t2);
}

TEST(ThreadCpuTimerTest, SleepAccruesWallButLittleCpu) {
  // The whole point of the thread-CPU clock: a blocked thread's wall time
  // keeps running while its CPU time (nearly) stands still.
  ThreadCpuTimer cpu_timer;
  WallTimer wall_timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  double cpu = cpu_timer.Seconds();
  double wall = wall_timer.Seconds();
  EXPECT_GE(wall, 0.040);
  EXPECT_LT(cpu, wall / 2.0);
}

TEST(ThreadCpuTimerTest, MeasuresOnlyOwnThread) {
  ThreadCpuTimer timer;
  std::thread other([] { BurnCpu(); });
  other.join();
  double own_cpu = timer.Seconds();
  // The other thread's burn must not be billed to this thread; spawning and
  // joining cost far less CPU than the burn itself.
  ThreadCpuTimer burn_cost_timer;
  BurnCpu();
  EXPECT_LT(own_cpu, burn_cost_timer.Seconds());
}

TEST(ScopedCpuTimerTest, TracksWallAlongsideCpu) {
  CpuAccumulator cpu;
  CpuAccumulator wall;
  {
    ScopedCpuTimer timer(&cpu, &wall);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(wall.TotalSeconds(), 0.015);
  // Sleeping costs wall time but (nearly) no thread CPU — the accounting
  // gap the pre-ThreadCpuTimer ScopedCpuTimer used to hide.
  EXPECT_LT(cpu.TotalSeconds(), wall.TotalSeconds());
}

}  // namespace
}  // namespace warper::util
