#include "util/status.h"

#include <gtest/gtest.h>

namespace warper {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, ServingFactories) {
  Status shed = Status::Unavailable("queue full");
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.ToString(), "Unavailable: queue full");

  Status late = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: too slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueOrDie) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto inner = []() { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    WARPER_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ReturnNotOkMacroTest, PassesThroughOk) {
  auto outer = []() -> Status {
    WARPER_RETURN_NOT_OK(Status::OK());
    return Status::FailedPrecondition("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ WARPER_CHECK(1 == 2); }, "WARPER_CHECK failed");
}

TEST(CheckDeathTest, MessageIncluded) {
  EXPECT_DEATH({ WARPER_CHECK_MSG(false, "context " << 42); }, "context 42");
}

}  // namespace
}  // namespace warper
