#include "util/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace warper::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream oss;
  table.Print(oss);
  std::string out = oss.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(PrintSeriesTest, FormatsPairs) {
  std::ostringstream oss;
  PrintSeries(oss, "gmq", {0.0, 72.0}, {3.5, 2.1});
  EXPECT_EQ(oss.str(), "gmq: 0=3.50 72=2.10\n");
}

TEST(PrintBannerTest, Frames) {
  std::ostringstream oss;
  PrintBanner(oss, "Figure 6");
  EXPECT_EQ(oss.str(), "\n=== Figure 6 ===\n");
}

}  // namespace
}  // namespace warper::util
