#include "util/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace warper::util {
namespace {

// Tracing state is process-global; every test starts and ends from a clean,
// disabled state so neighbours in this binary are unaffected.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StopTracing();
    ClearTrace();
  }
  void TearDown() override {
    StopTracing();
    ClearTrace();
  }
};

// Minimal structural validation: balanced braces/brackets outside strings
// and an even number of unescaped quotes. Catches truncated or interleaved
// output without a JSON library.
bool LooksLikeValidJson(const std::string& s) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TraceEnabled());
  {
    WARPER_SPAN("trace_test.disabled");
    ScopedSpan span("trace_test.disabled_explicit");
    span.Arg("ignored", 1.0);
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpansWithArgs) {
  StartTracing();
  {
    ScopedSpan outer("trace_test.outer");
    outer.Arg("answer", 42.0);
    { WARPER_SPAN("trace_test.inner"); }
  }
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 2u);

  std::string json = TraceToJson();
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("trace_test.outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
  // Complete events: every span is one self-contained "X" record, so begins
  // and ends are balanced by construction.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // The inner span must appear before the outer one finishes — its record
  // is committed first (RAII destruction order).
  EXPECT_LT(json.find("trace_test.inner"), json.find("trace_test.outer"));
}

TEST_F(TraceTest, RecordsFromMultipleThreads) {
  StartTracing();
  std::thread a([] { WARPER_SPAN("trace_test.thread_a"); });
  std::thread b([] { WARPER_SPAN("trace_test.thread_b"); });
  a.join();
  b.join();
  { WARPER_SPAN("trace_test.main_thread"); }
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 3u);
  std::string json = TraceToJson();
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("trace_test.thread_a"), std::string::npos);
  EXPECT_NE(json.find("trace_test.thread_b"), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
}

TEST_F(TraceTest, ClearTraceDropsEvents) {
  StartTracing();
  { WARPER_SPAN("trace_test.cleared"); }
  EXPECT_EQ(TraceEventCount(), 1u);
  ClearTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
  // Recording continues after a clear.
  { WARPER_SPAN("trace_test.after_clear"); }
  EXPECT_EQ(TraceEventCount(), 1u);
  EXPECT_EQ(TraceToJson().find("trace_test.cleared"), std::string::npos);
}

TEST_F(TraceTest, ExportTraceRoundTrip) {
  StartTracing();
  { WARPER_SPAN("trace_test.exported"); }
  StopTracing();

  std::string path = ::testing::TempDir() + "warper_trace_test.json";
  ASSERT_TRUE(ExportTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  EXPECT_EQ(contents, TraceToJson());
  EXPECT_TRUE(LooksLikeValidJson(contents));
  std::remove(path.c_str());
}

TEST_F(TraceTest, ExportTraceToBadPathFails) {
  EXPECT_FALSE(ExportTrace("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, StopTracingKeepsRecordedEvents) {
  StartTracing();
  { WARPER_SPAN("trace_test.kept"); }
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 1u);
  // Spans opened while stopped are not recorded.
  { WARPER_SPAN("trace_test.not_recorded"); }
  EXPECT_EQ(TraceEventCount(), 1u);
}

}  // namespace
}  // namespace warper::util
