// Tests for the annotated mutex wrappers: owner tracking, AssertHeld's
// runtime contract, and the CondVar wait family's "release while blocked,
// re-held on return" guarantee. The compile-time half of the contract is
// covered by the negative-compilation suite in tests/static/.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace warper::util {
namespace {

TEST(MutexTest, OwnerTrackingFollowsLockUnlock) {
  Mutex mu;
  EXPECT_FALSE(mu.HeldByCurrentThread());
  mu.Lock();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexTest, HeldByCurrentThreadIsPerThread) {
  Mutex mu;
  mu.Lock();
  bool held_on_other = true;
  std::thread other([&] { held_on_other = mu.HeldByCurrentThread(); });
  other.join();
  EXPECT_FALSE(held_on_other);  // "not you", even while locked
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  EXPECT_TRUE(mu.HeldByCurrentThread());
  bool acquired_on_other = true;
  std::thread other([&] {
    acquired_on_other = mu.TryLock();
    if (acquired_on_other) mu.Unlock();
  });
  other.join();
  EXPECT_FALSE(acquired_on_other);
  mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesAtScopeEnd) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(mu.HeldByCurrentThread());
  }
  EXPECT_FALSE(mu.HeldByCurrentThread());
  EXPECT_TRUE(mu.TryLock());  // actually released, not just owner-cleared
  mu.Unlock();
}

TEST(MutexTest, AssertHeldPassesForHolder) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not abort
}

TEST(MutexDeathTest, AssertHeldAbortsWhenUnlocked) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(MutexDeathTest, AssertHeldAbortsOnNonHolderThread) {
  Mutex mu;
  MutexLock lock(&mu);
  EXPECT_DEATH(
      {
        std::thread other([&] { mu.AssertHeld(); });
        other.join();
      },
      "AssertHeld");
}

TEST(CondVarTest, WaitReleasesWhileBlockedAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool reacquired = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // On return the mutex is re-held with owner tracking restored.
    reacquired = mu.HeldByCurrentThread();
  });

  // The signaller can take the lock, so Wait really released it.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(reacquired);
}

TEST(CondVarTest, WaitForTimesOutAndReacquires) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  std::cv_status status = cv.WaitFor(&mu, std::chrono::microseconds(500));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

TEST(CondVarTest, WaitUntilPastDeadlineTimesOutImmediately) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  std::cv_status status =
      cv.WaitUntil(&mu, std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken, 4);
}

}  // namespace
}  // namespace warper::util
