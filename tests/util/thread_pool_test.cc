// Tests for the shared thread pool: full-range coverage, deterministic
// chunking, exception propagation, nested-call safety, and the global
// Configure() lifecycle.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace warper::util {
namespace {

TEST(ParallelConfigTest, ValidateCatchesBadKnobs) {
  ParallelConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  ParallelConfig negative;
  negative.threads = -1;
  EXPECT_EQ(negative.Validate().code(), StatusCode::kInvalidArgument);

  ParallelConfig zero_grain;
  zero_grain.grain = 0;
  EXPECT_EQ(zero_grain.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelConfigTest, ResolvedThreadsNeverZero) {
  ParallelConfig config;
  config.threads = 0;
  EXPECT_GE(config.ResolvedThreads(), 1);
  config.threads = 3;
  EXPECT_EQ(config.ResolvedThreads(), 3);
}

TEST(ThreadPoolTest, SizeCountsWorkersNotCallers) {
  // The calling thread participates, so an n-way pool owns n-1 workers.
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 3);
  ThreadPool serial(1);
  EXPECT_EQ(serial.size(), 0);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  // Chunks are disjoint, so unsynchronized writes to distinct slots are safe.
  pool.ParallelFor(0, hits.size(), 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeStaysSerial) {
  ThreadPool pool(4);
  Mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(0, 100, 64, [&](size_t lo, size_t hi) {
    MutexLock lock(&mu);
    chunks.push_back({lo, hi});
  });
  // 100 / 64 < 2 chunks: one inline call covering the whole range.
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{0, 100}));
}

TEST(ThreadPoolTest, ParallelForChunkingIsDeterministic) {
  ThreadPool pool(4);
  auto boundaries = [&] {
    Mutex mu;
    std::set<std::pair<size_t, size_t>> out;
    pool.ParallelFor(0, 10000, 16, [&](size_t lo, size_t hi) {
      MutexLock lock(&mu);
      out.insert({lo, hi});
    });
    return out;
  };
  auto first = boundaries();
  auto second = boundaries();
  EXPECT_EQ(first, second);
  // Fixed partition: min(workers+1, n/grain) contiguous chunks.
  EXPECT_EQ(first.size(), 4u);
}

TEST(ThreadPoolTest, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1000, 10,
                                [](size_t lo, size_t) {
                                  if (lo >= 500) {
                                    throw std::runtime_error("chunk failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.ParallelFor(0, 400, 10, [&](size_t lo, size_t hi) {
    // A nested call on a worker thread must not block on the queue it is
    // supposed to drain; it runs serially inline instead.
    pool.ParallelFor(lo, hi, 1, [&](size_t a, size_t b) {
      total += static_cast<long>(b - a);
    });
  });
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, ParallelForBitIdenticalOrderedReduction) {
  // The contract behind deterministic=true: the partition is fixed, so
  // per-chunk partial sums combined in chunk order give the same double on
  // every run — and match a serial pass over the same chunk boundaries.
  // (A chunked float sum cannot match a single-pass serial sum bit-for-bit;
  // kernels that need that, like nn::Matrix, keep each output element's
  // accumulation order unchanged instead of re-associating it.)
  std::vector<double> values(5000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }

  ThreadPool pool(4);
  auto chunked_sum = [&] {
    Mutex mu;
    std::vector<std::pair<size_t, double>> partials;
    pool.ParallelFor(0, values.size(), 16, [&](size_t lo, size_t hi) {
      double s = 0.0;
      for (size_t i = lo; i < hi; ++i) s += values[i];
      MutexLock lock(&mu);
      partials.push_back({lo, s});
    });
    std::sort(partials.begin(), partials.end());
    double total = 0.0;
    for (const auto& [lo, s] : partials) total += s;
    return total;
  };

  // Serial reference over the partition ParallelFor is documented to use:
  // min(workers + 1, n / grain) contiguous chunks of ceil(n / chunks).
  size_t chunks = 4, chunk_size = (values.size() + chunks - 1) / chunks;
  double reference = 0.0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = c * chunk_size, hi = std::min(values.size(), lo + chunk_size);
    double s = 0.0;
    for (size_t i = lo; i < hi; ++i) s += values[i];
    reference += s;
  }
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(chunked_sum(), reference);  // bit-identical, every run
  }
}

TEST(ThreadPoolTest, GlobalConfigureResizes) {
  ParallelConfig two;
  two.threads = 2;
  ThreadPool::Configure(two);
  EXPECT_EQ(ThreadPool::Global().size(), 1);

  ParallelConfig one;
  one.threads = 1;
  ThreadPool::Configure(one);
  EXPECT_EQ(ThreadPool::Global().size(), 0);

  // Restore the default (hardware concurrency) for the rest of the suite.
  ThreadPool::Configure(ParallelConfig{});
  EXPECT_EQ(ThreadPool::Global().size(),
            ParallelConfig{}.ResolvedThreads() - 1);
}

}  // namespace
}  // namespace warper::util
