#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace warper::util {
namespace {

// RAII guard restoring the global level after each test.
struct LevelGuard {
  LogLevel saved = GetLogLevel();
  ~LevelGuard() { SetLogLevel(saved); }
};

TEST(LoggingTest, LevelRoundTrip) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, EmitsAtOrAboveLevel) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  WARPER_LOG(Warn) << "warn-visible";
  WARPER_LOG(Error) << "error-visible";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("warn-visible"), std::string::npos);
  EXPECT_NE(out.find("error-visible"), std::string::npos);
  EXPECT_NE(out.find("[WARN"), std::string::npos);
}

TEST(LoggingTest, FiltersBelowLevel) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  WARPER_LOG(Debug) << "hidden-debug";
  WARPER_LOG(Info) << "hidden-info";
  WARPER_LOG(Warn) << "hidden-warn";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "");
}

TEST(LoggingTest, FilteredExpressionNotEvaluated) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  WARPER_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, IncludesFileBasename) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  WARPER_LOG(Info) << "locate-me";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LogSinkTest, CapturingSinkReceivesLinesInsteadOfStderr) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  {
    CapturingLogSink sink;
    WARPER_LOG(Info) << "captured-one";
    WARPER_LOG(Warn) << "captured-two";
    ASSERT_EQ(sink.lines().size(), 2u);
    EXPECT_NE(sink.lines()[0].find("captured-one"), std::string::npos);
    EXPECT_NE(sink.str().find("captured-two"), std::string::npos);
    sink.Clear();
    EXPECT_TRUE(sink.lines().empty());
  }
  // Nothing leaked to stderr while the capturing sink was installed.
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LogSinkTest, StderrRestoredWhenSinkScopeEnds) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  { CapturingLogSink sink; }
  testing::internal::CaptureStderr();
  WARPER_LOG(Info) << "back-to-stderr";
  EXPECT_NE(testing::internal::GetCapturedStderr().find("back-to-stderr"),
            std::string::npos);
}

TEST(LogSinkTest, SetLogSinkReturnsPrevious) {
  std::vector<std::string> first_lines;
  LogSink previous = SetLogSink(
      [&first_lines](LogLevel, const std::string& line) {
        first_lines.push_back(line);
      });
  EXPECT_FALSE(previous);  // the stderr default was active

  LogSink first = SetLogSink({});  // restore the default
  EXPECT_TRUE(first);
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  first(LogLevel::kInfo, "direct-line\n");
  ASSERT_EQ(first_lines.size(), 1u);
  EXPECT_EQ(first_lines[0], "direct-line\n");
}

TEST(LogSinkTest, SinkLinesEndWithNewlineAndCarryLevel) {
  CapturingLogSink sink;
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  WARPER_LOG(Warn) << "lined";
  ASSERT_EQ(sink.lines().size(), 1u);
  std::string line = sink.lines()[0];
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("[WARN"), std::string::npos);
}

}  // namespace
}  // namespace warper::util
