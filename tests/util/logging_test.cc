#include "util/logging.h"

#include <gtest/gtest.h>

namespace warper::util {
namespace {

// RAII guard restoring the global level after each test.
struct LevelGuard {
  LogLevel saved = GetLogLevel();
  ~LevelGuard() { SetLogLevel(saved); }
};

TEST(LoggingTest, LevelRoundTrip) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, EmitsAtOrAboveLevel) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  WARPER_LOG(Warn) << "warn-visible";
  WARPER_LOG(Error) << "error-visible";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("warn-visible"), std::string::npos);
  EXPECT_NE(out.find("error-visible"), std::string::npos);
  EXPECT_NE(out.find("[WARN"), std::string::npos);
}

TEST(LoggingTest, FiltersBelowLevel) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  WARPER_LOG(Debug) << "hidden-debug";
  WARPER_LOG(Info) << "hidden-info";
  WARPER_LOG(Warn) << "hidden-warn";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "");
}

TEST(LoggingTest, FilteredExpressionNotEvaluated) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  WARPER_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, IncludesFileBasename) {
  LevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  WARPER_LOG(Info) << "locate-me";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

}  // namespace
}  // namespace warper::util
