#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace warper::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.03);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.Categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(41);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's outputs.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.Next() == child.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

// Property sweep: every distribution keeps producing finite values across
// seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, AllDistributionsFinite) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(std::isfinite(rng.Uniform()));
    EXPECT_TRUE(std::isfinite(rng.Normal()));
    EXPECT_TRUE(std::isfinite(rng.Exponential(1.0)));
    int64_t z = rng.Zipf(100, 1.0);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 100);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 31337ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace warper::util
