#include "util/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace warper::util {
namespace {

// The registry is process-global and shared with every other test in this
// binary, so each test uses its own "test.metrics." names.

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Integer-valued doubles this small add exactly; the CAS loop must not
  // lose updates.
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST(HistogramTest, BucketsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive)
  h.Observe(7.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(5000.0); // overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 7.0 + 100.0 + 5000.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 5; ++i) h.Observe(5.0);  // all in (0, 10]
  // target = 2.5 of 5 observations, half-way through [0, 10].
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileSpansBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 2; ++i) h.Observe(5.0);   // bucket (0, 10]
  for (int i = 0; i < 2; ++i) h.Observe(25.0);  // bucket (20, 30]
  // Median target = 2, satisfied exactly at the top of the first bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // target = 3 lands half-way through the (20, 30] bucket's two samples.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 25.0);
}

TEST(HistogramTest, QuantileClampsPAndOverflowReturnsLastBound) {
  Histogram h({10.0, 20.0});
  h.Observe(5.0);
  h.Observe(99.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  // The overflow bucket has no upper edge: the last finite bound caps it.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), 20.0);
}

TEST(HistogramTest, ConcurrentObservesAreExact) {
  Histogram h({10.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(i % 2 == 0 ? 1.0 : 100.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.BucketCount(0), static_cast<uint64_t>(kThreads * kPerThread / 2));
  EXPECT_EQ(h.BucketCount(1), static_cast<uint64_t>(kThreads * kPerThread / 2));
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  Counter* a = Metrics().GetCounter("test.metrics.same_handle");
  Counter* b = Metrics().GetCounter("test.metrics.same_handle");
  EXPECT_EQ(a, b);
  Gauge* g1 = Metrics().GetGauge("test.metrics.same_gauge");
  Gauge* g2 = Metrics().GetGauge("test.metrics.same_gauge");
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedAtFirstRegistration) {
  Histogram* h1 =
      Metrics().GetHistogram("test.metrics.fixed_bounds", {1.0, 2.0});
  Histogram* h2 =
      Metrics().GetHistogram("test.metrics.fixed_bounds", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, SnapshotCapturesValues) {
  Metrics().GetCounter("test.metrics.snap_counter")->Increment(7);
  Metrics().GetGauge("test.metrics.snap_gauge")->Set(1.25);
  Metrics()
      .GetHistogram("test.metrics.snap_hist", {10.0})
      ->Observe(3.0);
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("test.metrics.snap_counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.metrics.snap_gauge"), 1.25);
  const HistogramSnapshot& h = snap.histograms.at("test.metrics.snap_hist");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 3.0);
  ASSERT_EQ(h.bucket_counts.size(), 2u);
  EXPECT_EQ(h.bucket_counts[0], 1u);
}

TEST(MetricsRegistryTest, TextDumpAndJsonMentionMetrics) {
  Metrics().GetCounter("test.metrics.dump_counter")->Increment(3);
  std::string dump = Metrics().TextDump();
  EXPECT_NE(dump.find("test.metrics.dump_counter 3"), std::string::npos);
  std::string json = Metrics().Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.dump_counter\": 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  Counter* c = Metrics().GetCounter("test.metrics.reset_counter");
  c->Increment(5);
  Metrics().Reset();
  EXPECT_EQ(c->Value(), 0u);
  // The handle survives and keeps working.
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
  EXPECT_EQ(Metrics().GetCounter("test.metrics.reset_counter"), c);
}

// Many threads registering and incrementing through the registry at once —
// the TSan job's main target.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndUse) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        std::string name =
            "test.metrics.concurrent_" + std::to_string(i % 10);
        Metrics().GetCounter(name)->Increment();
        Metrics().GetGauge(name + ".gauge")->Add(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += Metrics()
                 .GetCounter("test.metrics.concurrent_" + std::to_string(i))
                 ->Value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * 200));
}

}  // namespace
}  // namespace warper::util
