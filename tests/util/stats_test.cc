#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warper::util {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 2.0, 2.0}), 0.0);
  // Population stddev of {1, 3} is 1.
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), 1.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(StatsDeathTest, GeometricMeanRejectsNonPositive) {
  EXPECT_DEATH(GeometricMean({1.0, 0.0}), "positive");
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(StatsTest, MedianSingleElement) {
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(HistogramTest, NormalizeSumsToOne) {
  NormalizedHistogram h(4);
  h.Add(0);
  h.Add(0);
  h.Add(3);
  h.Normalize();
  EXPECT_DOUBLE_EQ(h.frequency(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.frequency(3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.0);
}

TEST(HistogramTest, EmptyNormalizeIsNoop) {
  NormalizedHistogram h(2);
  h.Normalize();
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
}

TEST(JsdTest, IdenticalDistributionsAreZero) {
  NormalizedHistogram a(8), b(8);
  for (size_t i = 0; i < 8; ++i) {
    a.Add(i, static_cast<double>(i + 1));
    b.Add(i, static_cast<double>(i + 1));
  }
  a.Normalize();
  b.Normalize();
  EXPECT_NEAR(JensenShannonDivergence(a, b), 0.0, 1e-6);
}

TEST(JsdTest, DisjointDistributionsNearOne) {
  NormalizedHistogram a(4), b(4);
  a.Add(0);
  a.Add(1);
  b.Add(2);
  b.Add(3);
  a.Normalize();
  b.Normalize();
  EXPECT_GT(JensenShannonDivergence(a, b), 0.95);
  EXPECT_LE(JensenShannonDivergence(a, b), 1.0);
}

TEST(JsdTest, Symmetric) {
  NormalizedHistogram a(4), b(4);
  a.Add(0, 3.0);
  a.Add(1, 1.0);
  b.Add(1, 2.0);
  b.Add(2, 2.0);
  a.Normalize();
  b.Normalize();
  EXPECT_DOUBLE_EQ(JensenShannonDivergence(a, b),
                   JensenShannonDivergence(b, a));
}

TEST(JsdTest, PartialOverlapBetweenZeroAndOne) {
  NormalizedHistogram a(4), b(4);
  a.Add(0);
  a.Add(1);
  b.Add(1);
  b.Add(2);
  a.Normalize();
  b.Normalize();
  double js = JensenShannonDivergence(a, b);
  EXPECT_GT(js, 0.1);
  EXPECT_LT(js, 0.9);
}

}  // namespace
}  // namespace warper::util
