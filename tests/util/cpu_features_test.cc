#include <gtest/gtest.h>

#include "util/cpu_features.h"
#include "util/thread_pool.h"

namespace warper::util {
namespace {

TEST(CpuFeaturesTest, DetectionIsCachedAndStable) {
  const CpuFeatures& first = GetCpuFeatures();
  const CpuFeatures& second = GetCpuFeatures();
  EXPECT_EQ(&first, &second);
}

TEST(CpuFeaturesTest, BestLevelConsistentWithFeatureBits) {
  const CpuFeatures& f = GetCpuFeatures();
  if (f.avx2 && f.fma) {
    EXPECT_EQ(BestSupportedSimdLevel(), SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(BestSupportedSimdLevel(), SimdLevel::kScalar);
  }
}

TEST(CpuFeaturesTest, NamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdModeName(SimdMode::kAuto), "auto");
  EXPECT_STREQ(SimdModeName(SimdMode::kScalar), "scalar");
  EXPECT_STREQ(SimdModeName(SimdMode::kAvx2), "avx2");
}

TEST(CpuFeaturesTest, ParallelConfigValidatesSimdAgainstHardware) {
  ParallelConfig config;
  config.simd = SimdMode::kScalar;
  EXPECT_TRUE(config.Validate().ok());
  config.simd = SimdMode::kAvx2;
  if (BestSupportedSimdLevel() == SimdLevel::kAvx2) {
    EXPECT_TRUE(config.Validate().ok());
  } else {
    EXPECT_FALSE(config.Validate().ok());
  }
}

}  // namespace
}  // namespace warper::util
