#include "core/drift.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::core {
namespace {

WarperConfig Config() {
  WarperConfig config;
  config.pi_initial = 0.3;
  config.gamma = 100;
  config.js_threshold = 0.05;
  return config;
}

DriftSignals BaseSignals() {
  DriftSignals signals;
  signals.gmq_new = 1.5;
  signals.gmq_new_valid = true;
  signals.n_new = 50;
  signals.n_new_labeled = 50;
  return signals;
}

TEST(ModeFlagsTest, ToStringRendersCombinations) {
  ModeFlags mode;
  EXPECT_EQ(mode.ToString(), "none");
  mode.c1 = true;
  mode.c2 = true;
  EXPECT_EQ(mode.ToString(), "c1|c2");
  EXPECT_TRUE(mode.Any());
}

TEST(DriftDetectorTest, NoDriftWhenAccuracyFine) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.delta_js = 0.4;  // workload moved, but accuracy did not degrade
  EXPECT_FALSE(detector.Detect(signals).Any());
}

TEST(DriftDetectorTest, C2WhenQueriesInadequate) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 4.0;
  signals.delta_js = 0.3;
  signals.n_new = 50;          // < γ = 100
  signals.n_new_labeled = 50;  // labels keep up
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c2);
  EXPECT_FALSE(mode.c3);
  EXPECT_FALSE(mode.c4);
  EXPECT_FALSE(mode.c1);
}

TEST(DriftDetectorTest, C3WhenLabelsLag) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 4.0;
  signals.delta_js = 0.3;
  signals.n_new = 80;
  signals.n_new_labeled = 10;  // labeling can't keep up
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c2);  // also inadequate queries
  EXPECT_TRUE(mode.c3);
}

TEST(DriftDetectorTest, C4WhenAdequate) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 4.0;
  signals.delta_js = 0.3;
  signals.n_new = 500;
  signals.n_new_labeled = 500;
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c4);
  EXPECT_FALSE(mode.c2);
  EXPECT_FALSE(mode.c3);
}

TEST(DriftDetectorTest, C1FromDataTelemetry) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.data_changed_fraction = 0.5;
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c1);
  EXPECT_FALSE(mode.c2);
}

TEST(DriftDetectorTest, C1FromCanaries) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.canary_shift = 0.4;
  EXPECT_TRUE(detector.Detect(signals).c1);
}

TEST(DriftDetectorTest, OutlierFallbackToC4) {
  // Accuracy degraded but no measurable workload shift (δ_js small): the
  // detector falls back to a plain update.
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 4.0;
  signals.delta_js = 0.01;
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c4);
}

TEST(DriftDetectorTest, MissingLabelsUseJsSignal) {
  DriftDetector detector(Config());
  detector.SetTrainingError(1.4);
  DriftSignals signals;
  signals.gmq_new_valid = false;  // no labels at all
  signals.n_new = 30;
  signals.n_new_labeled = 0;
  signals.delta_js = 0.3;
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c2);
  EXPECT_TRUE(mode.c3);
}

TEST(DriftDetectorTest, StrongJsTriggersWithoutAccuracyGap) {
  // Training-time error was high; the new workload's error matches it
  // (δ_m ≈ 0) but the distribution clearly moved — with the strong-δ_js
  // trigger enabled, adaptation should run.
  WarperConfig config = Config();
  config.js_strong_threshold = 0.35;
  DriftDetector detector(config);
  detector.SetTrainingError(2.2);
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 2.2;
  signals.delta_js = 0.6;
  signals.n_new = 50;
  ModeFlags mode = detector.Detect(signals);
  EXPECT_TRUE(mode.c2);
}

TEST(DriftDetectorTest, StrongJsLatchedOffAfterEarlyStop) {
  WarperConfig config = Config();
  config.js_strong_threshold = 0.35;
  DriftDetector detector(config);
  detector.SetTrainingError(2.2);
  ModeFlags mode;
  mode.c2 = true;
  detector.ReportAdaptationGain(0.0, mode);  // early stop raises π
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 2.2;   // no accuracy gap
  signals.delta_js = 0.6;  // workload still far away — but already adapted
  EXPECT_FALSE(detector.Detect(signals).Any());
}

TEST(DriftDetectorTest, EarlyStopRaisesPi) {
  WarperConfig config = Config();
  DriftDetector detector(config);
  detector.SetTrainingError(1.4);
  double pi0 = detector.pi();
  ModeFlags mode;
  mode.c2 = true;
  detector.ReportAdaptationGain(0.0, mode);  // no gain
  EXPECT_GT(detector.pi(), pi0);
  // δ_m just above the original π no longer triggers.
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 1.4 + pi0 + 0.1;
  signals.delta_js = 0.3;
  EXPECT_FALSE(detector.Detect(signals).Any());
}

TEST(DriftDetectorTest, DetectionResetsPi) {
  WarperConfig config = Config();
  DriftDetector detector(config);
  detector.SetTrainingError(1.4);
  ModeFlags mode;
  mode.c2 = true;
  detector.ReportAdaptationGain(0.0, mode);
  detector.ReportAdaptationGain(0.0, mode);
  double raised = detector.pi();
  EXPECT_GT(raised, config.pi_initial);

  // A drift big enough to clear the raised threshold resets π.
  DriftSignals signals = BaseSignals();
  signals.gmq_new = 1.4 + raised + 1.0;
  signals.delta_js = 0.3;
  signals.n_new = 10;
  EXPECT_TRUE(detector.Detect(signals).Any());
  EXPECT_DOUBLE_EQ(detector.pi(), config.pi_initial);
}

TEST(DriftDetectorTest, SlowC4GrowsGamma) {
  DriftDetector detector(Config());
  size_t gamma0 = detector.gamma();
  ModeFlags mode;
  mode.c4 = true;
  detector.ReportAdaptationGain(0.0, mode);
  EXPECT_GT(detector.gamma(), gamma0);
}

TEST(DriftDetectorTest, GoodGainKeepsPiAndGamma) {
  DriftDetector detector(Config());
  ModeFlags mode;
  mode.c2 = true;
  detector.ReportAdaptationGain(1.0, mode);
  EXPECT_DOUBLE_EQ(detector.pi(), Config().pi_initial);
  EXPECT_EQ(detector.gamma(), Config().gamma);
}

// --- δ_js ---

std::vector<std::vector<double>> Cloud(double lo, double hi, size_t n,
                                       size_t d, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> out(n, std::vector<double>(d));
  for (auto& row : out) {
    for (double& v : row) v = rng.Uniform(lo, hi);
  }
  return out;
}

TEST(JsDivergenceTest, IdenticalWorkloadsNearZero) {
  auto a = Cloud(0.0, 1.0, 400, 6, 1);
  EXPECT_LT(WorkloadJsDivergence(a, a, 10, 3), 0.02);
}

TEST(JsDivergenceTest, DisjointWorkloadsLarge) {
  auto a = Cloud(0.0, 0.3, 400, 6, 2);
  auto b = Cloud(0.7, 1.0, 400, 6, 3);
  EXPECT_GT(WorkloadJsDivergence(a, b, 10, 3), 0.5);
}

TEST(JsDivergenceTest, SymmetricAndBounded) {
  auto a = Cloud(0.0, 0.6, 300, 4, 4);
  auto b = Cloud(0.4, 1.0, 300, 4, 5);
  double ab = WorkloadJsDivergence(a, b, 10, 3);
  double ba = WorkloadJsDivergence(b, a, 10, 3);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(JsDivergenceTest, SameDistributionDifferentSamplesSmall) {
  auto a = Cloud(0.0, 1.0, 500, 6, 6);
  auto b = Cloud(0.0, 1.0, 500, 6, 7);
  EXPECT_LT(WorkloadJsDivergence(a, b, 10, 3), 0.35);
}

// Parameterized: the metric stays bounded for many (dims, bins) settings.
class JsParamSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(JsParamSweep, InUnitInterval) {
  auto [dims, bins] = GetParam();
  auto a = Cloud(0.0, 0.5, 200, 5, 8);
  auto b = Cloud(0.3, 1.0, 200, 5, 9);
  double js = WorkloadJsDivergence(a, b, dims, bins);
  EXPECT_GE(js, 0.0);
  EXPECT_LE(js, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Params, JsParamSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(2, 2),
                      std::make_pair<size_t, size_t>(5, 3),
                      std::make_pair<size_t, size_t>(10, 3),
                      std::make_pair<size_t, size_t>(10, 8),
                      std::make_pair<size_t, size_t>(20, 4)));

}  // namespace
}  // namespace warper::core
