// Tests for the controller's episode / early-stop behaviour (§3.4): an
// adaptation episode persists across invocations while gains continue, ends
// after consecutive flat steps, and restarts when a fresh drift appears.
#include <gtest/gtest.h>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::core {
namespace {

struct Env {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;

  explicit Env(uint64_t seed)
      : table(storage::MakePrsa(15000, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {}

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }
};

WarperConfig FastConfig() {
  WarperConfig config;
  config.hidden_units = 48;
  config.hidden_layers = 2;
  config.n_i = 40;
  config.n_p = 200;
  return config;
}

std::unique_ptr<ce::LmMlp> TrainModel(Env& env,
                                      const std::vector<ce::LabeledExample>& t,
                                      uint64_t seed) {
  auto model = std::make_unique<ce::LmMlp>(env.domain.FeatureDim(),
                                           ce::LmMlpConfig{}, seed);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(t, &x, &y);
  model->Train(x, y);
  return model;
}

TEST(WarperEpisodeTest, EpisodeContinuesAfterDeltaMDrops) {
  Env env(51);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 51);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  // Drive several invocations of a real drift; count how many actually
  // updated the model. With episode persistence the count should exceed the
  // bare number of invocations whose own δ_m cleared π.
  int updates = 0;
  int detections = 0;
  for (int step = 0; step < 4; ++step) {
    Warper::Invocation invocation;
    invocation.new_queries = env.Examples(workload::GenMethod::kW3, 48);
    Warper::InvocationResult r = warper.Invoke(invocation).ValueOrDie();
    updates += r.model_updated ? 1 : 0;
    detections += (r.delta_m_valid &&
                   r.delta_m > warper.detector().pi())
                      ? 1
                      : 0;
  }
  EXPECT_GE(updates, 2);
  EXPECT_GE(updates, detections);
}

TEST(WarperEpisodeTest, GeneratorDisabledWhenNgBelowOne) {
  Env env(52);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 52);
  WarperConfig config = FastConfig();
  config.gen_fraction = 0.1;  // 0.1 × 6 arrivals < 1 → generator off (§4.3)
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 6);
  Warper::InvocationResult r = warper.Invoke(invocation).ValueOrDie();
  if (r.mode.c2) {
    EXPECT_EQ(r.generated, 0u);
  }
}

TEST(WarperEpisodeTest, RepeatInvocationsConverge) {
  Env env(53);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 53);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  std::vector<ce::LabeledExample> test =
      env.Examples(workload::GenMethod::kW3, 120);
  double initial = ce::ModelGmq(*model, test);
  for (int step = 0; step < 6; ++step) {
    Warper::Invocation invocation;
    invocation.new_queries = env.Examples(workload::GenMethod::kW3, 48);
    ASSERT_TRUE(warper.Invoke(invocation).ok());
  }
  double final = ce::ModelGmq(*model, test);
  EXPECT_LT(final, initial);
  // Late invocations should have early-stopped: π grew beyond its initial
  // value or adaptation kept paying off — either way GMQ must not blow up.
  EXPECT_LT(final, initial * 1.0);
}

TEST(WarperEpisodeTest, SecondDriftRetriggersAfterEarlyStop) {
  Env env(54);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 54);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  // First drift to w3: adapt until quiet.
  for (int step = 0; step < 5; ++step) {
    Warper::Invocation invocation;
    invocation.new_queries = env.Examples(workload::GenMethod::kW3, 48);
    ASSERT_TRUE(warper.Invoke(invocation).ok());
  }
  // Second, different drift (w2): the model must keep adapting — either the
  // detector re-triggers a full episode, or the passive per-period refresh
  // absorbs the new workload FT-style. Either way the w2 error improves.
  std::vector<ce::LabeledExample> w2_test =
      env.Examples(workload::GenMethod::kW2, 100);
  double before = ce::ModelGmq(*model, w2_test);
  bool updated = false;
  for (int step = 0; step < 3; ++step) {
    Warper::Invocation invocation;
    invocation.new_queries = env.Examples(workload::GenMethod::kW2, 48);
    Warper::InvocationResult r = warper.Invoke(invocation).ValueOrDie();
    updated = updated || r.model_updated;
  }
  EXPECT_TRUE(updated);
  EXPECT_LT(ce::ModelGmq(*model, w2_test), before * 1.05);
}

TEST(WarperEpisodeTest, InvocationResultFieldsConsistent) {
  Env env(55);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 55);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW4, 48);
  Warper::InvocationResult r = warper.Invoke(invocation).ValueOrDie();
  EXPECT_GE(r.delta_js, 0.0);
  EXPECT_LE(r.delta_js, 1.0);
  if (r.mode.Any()) {
    EXPECT_TRUE(r.model_updated);
  } else {
    EXPECT_EQ(r.generated, 0u);
    EXPECT_EQ(r.annotated, 0u);
  }
  // Annotated records are a subset of picked (unique) plus arrivals.
  EXPECT_LE(r.annotated, r.picked + invocation.new_queries.size());
}

}  // namespace
}  // namespace warper::core
