#include "core/gan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/rng.h"

namespace warper::core {
namespace {

WarperConfig SmallConfig() {
  WarperConfig config;
  config.hidden_units = 32;
  config.hidden_layers = 2;
  config.embedding_dim = 8;
  config.batch_size = 16;
  config.loss_patience = 50;  // effectively disable early stop in tests
  return config;
}

QueryPool MakePool(size_t feature_dim, size_t train_n, size_t new_n,
                   uint64_t seed) {
  util::Rng rng(seed);
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  // Train records concentrated low, new records concentrated high — a
  // clearly detectable drift.
  for (size_t i = 0; i < train_n; ++i) {
    std::vector<double> f(feature_dim);
    for (double& v : f) v = rng.Uniform(0.0, 0.4);
    pool.AppendLabeled(std::move(f), rng.Uniform(10, 100), Source::kTrain);
  }
  for (size_t i = 0; i < new_n; ++i) {
    std::vector<double> f(feature_dim);
    for (double& v : f) v = rng.Uniform(0.6, 1.0);
    pool.AppendLabeled(std::move(f), rng.Uniform(10, 100), Source::kNew);
  }
  return pool;
}

TEST(AutoEncoderTest, LossDecreases) {
  WarperModels models(6, SmallConfig(), 1000.0, 3);
  const QueryPool pool = MakePool(6, 64, 64, 3);

  GanTrainStats first = models.UpdateAutoEncoder(pool, 5);
  GanTrainStats later = models.UpdateAutoEncoder(pool, 200);
  EXPECT_LT(later.final_loss, first.final_loss);
  EXPECT_GT(later.iterations, 0);
}

TEST(AutoEncoderTest, ReconstructionBecomesAccurate) {
  WarperModels models(4, SmallConfig(), 1000.0, 5);
  const QueryPool pool = MakePool(4, 128, 0, 5);
  models.UpdateAutoEncoder(pool, 600);

  // Reconstruct a pool record through E∘G.
  nn::Matrix input = models.encoder().BuildInputs(pool, {0});
  nn::Matrix z = models.encoder().mlp().Predict(input);
  nn::Matrix recon = models.generator().Generate(z);
  double err = 0.0;
  for (size_t c = 0; c < 4; ++c) {
    err += std::abs(recon.At(0, c) - pool.record(0).features[c]);
  }
  EXPECT_LT(err / 4.0, 0.15);
}

TEST(MultiTaskTest, RunsAndReportsLoss) {
  WarperModels models(6, SmallConfig(), 1000.0, 7);
  const QueryPool pool = MakePool(6, 64, 64, 7);
  models.UpdateAutoEncoder(pool, 100);  // pre-train, as §3.5 prescribes
  GanTrainStats stats = models.UpdateMultiTask(pool, 60);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  EXPECT_GT(stats.final_loss, 0.0);
}

TEST(MultiTaskTest, GeneratedQueriesResembleNewWorkload) {
  size_t feature_dim = 6;
  WarperModels models(feature_dim, SmallConfig(), 1000.0, 9);
  const QueryPool pool = MakePool(feature_dim, 96, 96, 9);
  models.UpdateAutoEncoder(pool, 300);
  models.UpdateMultiTask(pool, 150);

  std::vector<std::vector<double>> generated = models.GenerateQueries(pool, 64);
  ASSERT_EQ(generated.size(), 64u);
  // New records live in [0.6, 1.0]^d; generated queries should land closer
  // to that region than to the training region [0, 0.4]^d.
  double mean = 0.0;
  for (const auto& q : generated) {
    for (double v : q) mean += v;
  }
  mean /= static_cast<double>(64 * feature_dim);
  EXPECT_GT(mean, 0.5);
}

TEST(GenerateQueriesTest, OutputsBoundedAndSized) {
  WarperModels models(5, SmallConfig(), 1000.0, 11);
  const QueryPool pool = MakePool(5, 32, 16, 11);
  std::vector<std::vector<double>> generated = models.GenerateQueries(pool, 10);
  ASSERT_EQ(generated.size(), 10u);
  for (const auto& q : generated) {
    ASSERT_EQ(q.size(), 5u);
    for (double v : q) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GenerateQueriesTest, WorksWithoutNewRecords) {
  WarperModels models(5, SmallConfig(), 1000.0, 13);
  const QueryPool pool = MakePool(5, 32, 0, 13);
  // Seeds fall back to the whole pool.
  EXPECT_EQ(models.GenerateQueries(pool, 8).size(), 8u);
}

TEST(MultiTaskTest, EarlyStopBoundsIterations) {
  WarperConfig config = SmallConfig();
  config.loss_rel_tol = 1e9;  // any progress counts as stagnation
  config.loss_patience = 3;
  WarperModels models(4, config, 1000.0, 17);
  const QueryPool pool = MakePool(4, 32, 32, 17);
  GanTrainStats stats = models.UpdateMultiTask(pool, 500);
  EXPECT_LE(stats.iterations, 10);
}

}  // namespace
}  // namespace warper::core
