#include "core/query_pool.h"

#include <gtest/gtest.h>

#include "util/mutex.h"

namespace warper::core {
namespace {

TEST(QueryPoolTest, AppendVariants) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  size_t a = pool.AppendLabeled({0.1, 0.2}, 100.0, Source::kTrain);
  size_t b = pool.AppendUnlabeled({0.3, 0.4}, Source::kNew);
  EXPECT_EQ(pool.Size(), 2u);
  EXPECT_TRUE(pool.record(a).HasLabel());
  EXPECT_FALSE(pool.record(b).HasLabel());
  EXPECT_EQ(pool.record(b).label, Source::kNew);
}

TEST(QueryPoolTest, IndexViews) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.1}, 1.0, Source::kTrain);
  pool.AppendLabeled({0.2}, 2.0, Source::kNew);
  pool.AppendUnlabeled({0.3}, Source::kNew);
  pool.AppendUnlabeled({0.4}, Source::kGen);

  EXPECT_EQ(pool.IndicesBySource(Source::kNew),
            (std::vector<size_t>{1, 2}));
  EXPECT_EQ(pool.LabeledIndices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(pool.UnlabeledIndices(), (std::vector<size_t>{2, 3}));
}

TEST(QueryPoolTest, StaleSeparatesFreshFromLabeled) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.1}, 1.0, Source::kTrain);
  pool.AppendLabeled({0.2}, 2.0, Source::kNew);
  pool.MarkSourceStale(Source::kTrain);

  // Stale record still counts as labeled (picker strata signal)…
  EXPECT_EQ(pool.LabeledIndices().size(), 2u);
  // …but not as fresh (model update input).
  EXPECT_EQ(pool.FreshLabeledIndices(), (std::vector<size_t>{1}));
  EXPECT_EQ(pool.StaleOrUnlabeledIndices(), (std::vector<size_t>{0}));
}

TEST(QueryPoolTest, SetLabelClearsStale) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.1}, 1.0, Source::kTrain);
  pool.MarkSourceStale(Source::kTrain);
  EXPECT_FALSE(pool.record(0).HasFreshLabel());
  ASSERT_TRUE(pool.SetLabel(0, 55.0).ok());
  EXPECT_TRUE(pool.record(0).HasFreshLabel());
  EXPECT_DOUBLE_EQ(pool.record(0).gt, 55.0);
}

TEST(QueryPoolTest, MarkStaleSkipsUnlabeled) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendUnlabeled({0.1}, Source::kNew);
  pool.MarkSourceStale(Source::kNew);
  EXPECT_FALSE(pool.record(0).stale);
}

TEST(QueryPoolTest, LabeledExamplesConvert) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.5, 0.6}, 42.0, Source::kNew);
  std::vector<ce::LabeledExample> examples =
      pool.LabeledExamples({0});
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].cardinality, 42);
  EXPECT_EQ(examples[0].features, (std::vector<double>{0.5, 0.6}));
}

TEST(QueryPoolTest, PruneUnlabeledGenerated) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendUnlabeled({0.1}, Source::kGen);
  pool.AppendLabeled({0.2}, 5.0, Source::kGen);
  pool.AppendUnlabeled({0.3}, Source::kNew);
  pool.PruneUnlabeledGenerated();
  EXPECT_EQ(pool.Size(), 2u);
  EXPECT_EQ(pool.record(0).label, Source::kGen);
  EXPECT_TRUE(pool.record(0).HasLabel());
  EXPECT_EQ(pool.record(1).label, Source::kNew);
}

TEST(QueryPoolTest, SetLabelValidation) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendUnlabeled({0.1}, Source::kNew);
  EXPECT_EQ(pool.SetLabel(5, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool.SetLabel(0, -2.0).code(), StatusCode::kInvalidArgument);
  // Failed sets must not touch the record.
  EXPECT_FALSE(pool.record(0).HasLabel());
}

TEST(QueryPoolTest, GetRecordBoundsChecked) {
  QueryPool pool;
  {
    util::MutexLock writer(&pool.writer_mu());
    pool.AppendLabeled({0.1, 0.2}, 7.0, Source::kNew);
  }
  Result<PoolRecord> ok = pool.GetRecord(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.ValueOrDie().gt, 7.0);
  Result<PoolRecord> bad = pool.GetRecord(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(QueryPoolTest, CopyAndMoveTransferRecordsNotTheMutex) {
  QueryPool pool;
  {
    util::MutexLock writer(&pool.writer_mu());
    pool.AppendLabeled({0.1}, 3.0, Source::kTrain);
  }
  QueryPool copy = pool;
  EXPECT_EQ(copy.Size(), 1u);
  // The copy owns a fresh, unlocked capability even while the source's is
  // held.
  util::MutexLock source_writer(&pool.writer_mu());
  EXPECT_FALSE(copy.writer_mu().HeldByCurrentThread());
  QueryPool moved = std::move(copy);
  EXPECT_EQ(moved.Size(), 1u);
}

// Deliberately violates the writer contract to prove the runtime assert
// catches it; the annotation suppresses the (correct) static diagnosis.
void AppendWithoutWriterLock(QueryPool* pool) WARPER_NO_THREAD_SAFETY_ANALYSIS {
  pool->AppendLabeled({0.1}, 1.0, Source::kTrain);
}

TEST(QueryPoolDeathTest, MutatorWithoutWriterLockAborts) {
  QueryPool pool;
  EXPECT_DEATH(AppendWithoutWriterLock(&pool), "AssertHeld");
}

TEST(QueryPoolDeathTest, EmptyFeaturesRejected) {
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  EXPECT_DEATH(pool.AppendUnlabeled({}, Source::kNew), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::core
