#include "core/picker.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ce/lm.h"
#include "core/gan.h"
#include "util/mutex.h"

namespace warper::core {
namespace {

WarperConfig SmallConfig() {
  WarperConfig config;
  config.hidden_units = 32;
  config.hidden_layers = 2;
  config.embedding_dim = 8;
  config.picker_strata = 3;
  return config;
}

// A trained LM-mlp stub: estimates only depend on the first feature, so we
// can manufacture records with predictable errors.
class StubModel : public ce::CardinalityEstimator {
 public:
  std::string Name() const override { return "stub"; }
  ce::UpdateMode update_mode() const override {
    return ce::UpdateMode::kFineTune;
  }
  void Train(const nn::Matrix&, const std::vector<double>&) override {}
  void Update(const nn::Matrix&, const std::vector<double>&) override {}
  bool trained() const override { return true; }
  std::vector<double> EstimateTargets(const nn::Matrix& x) const override {
    // Always predicts log-card 5 (card ≈ 147).
    return std::vector<double>(x.rows(), 5.0);
  }
};

TEST(PickerTest, PickGeneratedPrefersNewLookingQueries) {
  WarperConfig config = SmallConfig();
  util::Rng rng(3);
  WarperModels models(4, config, 1000.0, 3);

  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  // Two generated candidates with very different embeddings; train the
  // discriminator so one of them reads as "new".
  for (int i = 0; i < 40; ++i) {
    pool.AppendLabeled({0.9, 0.9, 0.9, 0.9}, 50.0, Source::kNew);
    pool.AppendLabeled({0.1, 0.1, 0.1, 0.1}, 50.0, Source::kTrain);
  }
  size_t new_like = pool.AppendUnlabeled({0.88, 0.92, 0.9, 0.9}, Source::kGen);
  size_t train_like = pool.AppendUnlabeled({0.12, 0.1, 0.1, 0.08}, Source::kGen);

  models.UpdateAutoEncoder(pool, 200);
  models.UpdateMultiTask(pool, 150);
  std::vector<size_t> all(pool.Size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  models.encoder().EmbedRecords(&pool, all);

  Picker picker(config, 7);
  std::vector<size_t> picked =
      picker.PickGenerated(pool, models.discriminator(), 200);
  ASSERT_FALSE(picked.empty());
  size_t new_like_count = std::count(picked.begin(), picked.end(), new_like);
  size_t train_like_count =
      std::count(picked.begin(), picked.end(), train_like);
  EXPECT_GT(new_like_count, train_like_count);
}

TEST(PickerTest, PickGeneratedEmptyWhenNoCandidates) {
  WarperConfig config = SmallConfig();
  util::Rng rng(5);
  WarperModels models(4, config, 1000.0, 5);
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.5, 0.5, 0.5, 0.5}, 10.0, Source::kNew);
  Picker picker(config, 9);
  EXPECT_TRUE(picker.PickGenerated(pool, models.discriminator(), 10).empty());
}

TEST(PickerTest, PickStratifiedReturnsCandidatesOnly) {
  WarperConfig config = SmallConfig();
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  // Labeled records with a spread of errors vs the stub model (card 147).
  pool.AppendLabeled({0.1, 0.1}, 150.0, Source::kTrain);   // tiny error
  pool.AppendLabeled({0.5, 0.5}, 1500.0, Source::kTrain);  // 10× error
  pool.AppendLabeled({0.9, 0.9}, 15.0, Source::kTrain);    // 10× error
  std::vector<size_t> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(
        pool.AppendUnlabeled({0.1 * i, 0.5}, Source::kNew));
  }
  StubModel model;
  Picker picker(config, 11);
  std::vector<size_t> picked =
      picker.PickStratified(pool, candidates, model, 50);
  ASSERT_FALSE(picked.empty());
  for (size_t p : picked) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), p) !=
                candidates.end());
  }
}

TEST(PickerTest, PickStratifiedUniformWithoutLabels) {
  WarperConfig config = SmallConfig();
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  std::vector<size_t> candidates;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back(pool.AppendUnlabeled({0.05 * i}, Source::kNew));
  }
  StubModel model;
  Picker picker(config, 13);
  std::vector<size_t> picked =
      picker.PickStratified(pool, candidates, model, 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);  // without labels: uniform, no replacement
}

TEST(PickerTest, PickRandomMultisetSize) {
  Picker picker(SmallConfig(), 17);
  std::vector<size_t> picked = picker.PickRandom({1, 2, 3}, 50);
  EXPECT_EQ(picked.size(), 50u);
  for (size_t p : picked) EXPECT_TRUE(p >= 1 && p <= 3);
  EXPECT_TRUE(picker.PickRandom({}, 5).empty());
}

TEST(PickerTest, PickEntropyWeightsUncertainCandidates) {
  WarperConfig config = SmallConfig();
  util::Rng rng(19);
  WarperModels models(4, config, 1000.0, 19);
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  std::vector<size_t> candidates;
  for (int i = 0; i < 8; ++i) {
    candidates.push_back(pool.AppendUnlabeled(
        {0.1 * i, 0.5, 0.5, 0.5}, Source::kGen));
  }
  std::vector<size_t> all(pool.Size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  models.encoder().EmbedRecords(&pool, all);
  Picker picker(config, 23);
  std::vector<size_t> picked =
      picker.PickEntropy(pool, candidates, models.discriminator(), 30);
  EXPECT_EQ(picked.size(), 30u);
}

}  // namespace
}  // namespace warper::core
