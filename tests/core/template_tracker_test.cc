// Predicate-template fingerprinting, per-template health verdicts, and the
// targeted-adaptation behavior they drive inside Warper::Invoke.
#include "core/template_tracker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::core {
namespace {

// Canonical layout: `leading` join bits, then lows[cols], then highs[cols].
// Unconstrained is exactly {0, 1} per column (what the real featurizers
// emit for a full-range bound).
std::vector<double> Features(size_t cols, size_t leading = 0) {
  std::vector<double> f(leading + 2 * cols, 0.0);
  for (size_t c = 0; c < cols; ++c) f[leading + cols + c] = 1.0;
  return f;
}

void Constrain(std::vector<double>* f, size_t cols, size_t leading, size_t col,
               double low, double high) {
  (*f)[leading + col] = low;
  (*f)[leading + cols + col] = high;
}

TEST(TemplateFingerprintTest, StableAcrossConstants) {
  std::vector<double> a = Features(4), b = Features(4);
  Constrain(&a, 4, 0, 1, 0.2, 0.6);
  Constrain(&b, 4, 0, 1, 0.35, 0.91);  // same column, same op kind (range)
  EXPECT_EQ(TemplateFingerprint(a, 0, 1), TemplateFingerprint(b, 0, 1));
}

TEST(TemplateFingerprintTest, DistinctAcrossColumnSets) {
  std::vector<double> a = Features(4), b = Features(4), c = Features(4);
  Constrain(&a, 4, 0, 0, 0.2, 0.6);
  Constrain(&b, 4, 0, 2, 0.2, 0.6);          // different column
  Constrain(&c, 4, 0, 0, 0.2, 0.6);
  Constrain(&c, 4, 0, 2, 0.2, 0.6);          // superset of a's columns
  EXPECT_NE(TemplateFingerprint(a, 0, 1), TemplateFingerprint(b, 0, 1));
  EXPECT_NE(TemplateFingerprint(a, 0, 1), TemplateFingerprint(c, 0, 1));
  EXPECT_NE(TemplateFingerprint(b, 0, 1), TemplateFingerprint(c, 0, 1));
}

TEST(TemplateFingerprintTest, DistinctAcrossOperatorKinds) {
  std::vector<double> lower = Features(2), upper = Features(2),
                      range = Features(2), eq = Features(2);
  Constrain(&lower, 2, 0, 0, 0.3, 1.0);  // col >= x
  Constrain(&upper, 2, 0, 0, 0.0, 0.7);  // col <= x
  Constrain(&range, 2, 0, 0, 0.3, 0.7);  // x <= col <= y
  Constrain(&eq, 2, 0, 0, 0.4, 0.4);     // col == x
  std::set<uint64_t> fps = {
      TemplateFingerprint(lower, 0, 1), TemplateFingerprint(upper, 0, 1),
      TemplateFingerprint(range, 0, 1), TemplateFingerprint(eq, 0, 1)};
  EXPECT_EQ(fps.size(), 4u);
}

TEST(TemplateFingerprintTest, SaltSeparatesDomains) {
  std::vector<double> f = Features(3);
  Constrain(&f, 3, 0, 1, 0.2, 0.8);
  EXPECT_NE(TemplateFingerprint(f, 0, /*salt=*/1),
            TemplateFingerprint(f, 0, /*salt=*/2));
}

TEST(TemplateFingerprintTest, JoinBitsAreStructureNotConstants) {
  const size_t kLeading = 3, kCols = 2;
  std::vector<double> a = Features(kCols, kLeading);
  std::vector<double> b = Features(kCols, kLeading);
  a[0] = 1.0;
  b[1] = 1.0;  // different fact table participates
  EXPECT_NE(TemplateFingerprint(a, kLeading, 1),
            TemplateFingerprint(b, kLeading, 1));
  // A join bit is read as on/off, not as a value.
  std::vector<double> a2 = a;
  a2[0] = 0.9;
  EXPECT_EQ(TemplateFingerprint(a, kLeading, 1),
            TemplateFingerprint(a2, kLeading, 1));
}

TEST(TemplateFingerprintTest, NarrowWidthsMaskAndCollide) {
  // 33 distinct single-column templates into a 5-bit (32-bucket) space:
  // every fingerprint fits the mask and the pigeonhole principle forces at
  // least one collision — the memory/resolution trade TrackerConfig
  // .hash_bits documents.
  const size_t kCols = 33;
  std::set<uint64_t> full, narrow;
  for (size_t c = 0; c < kCols; ++c) {
    std::vector<double> f = Features(kCols);
    Constrain(&f, kCols, 0, c, 0.25, 0.75);
    full.insert(TemplateFingerprint(f, 0, 1));
    uint64_t fp = TemplateFingerprint(f, 0, 1, /*hash_bits=*/5);
    EXPECT_LT(fp, 32u);
    narrow.insert(fp);
  }
  EXPECT_EQ(full.size(), kCols);
  EXPECT_LT(narrow.size(), kCols);
}

TEST(TemplateMetricNameTest, InsertsHexFingerprintAfterPrefix) {
  EXPECT_EQ(TemplateMetricName("warper.template.err_ewma", 0x2A),
            "warper.template.000000000000002a.err_ewma");
  EXPECT_EQ(TemplateMetricName("warper.template.obs", 0),
            "warper.template.0000000000000000.obs");
}

// ---------------------------------------------------------------------------
// TemplateTracker health verdicts on a real single-table domain.

struct Env {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;

  explicit Env(uint64_t seed, size_t rows = 20000)
      : table(storage::MakePrsa(rows, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {}

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n, bool with_labels = true) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts(n, -1);
    if (with_labels) counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }
};

TrackerConfig VerdictConfig() {
  TrackerConfig config;
  config.min_count = 2;
  config.export_name = "";  // keep unit-test trackers out of WARPER_ERRLOG
  return config;
}

// Two structurally distinct feature vectors of the domain's width.
std::vector<double> TemplateA(const Env& env) {
  size_t cols = env.domain.FeatureDim() / 2;
  std::vector<double> f = Features(cols);
  Constrain(&f, cols, 0, 0, 0.2, 0.7);
  return f;
}
std::vector<double> TemplateB(const Env& env) {
  size_t cols = env.domain.FeatureDim() / 2;
  std::vector<double> f = Features(cols);
  Constrain(&f, cols, 0, 1, 0.1, 0.5);
  return f;
}

TEST(TemplateTrackerTest, HealthVerdictsFollowObservedError) {
  Env env(3, /*rows=*/2000);
  TemplateTracker tracker(&env.domain, VerdictConfig());
  EXPECT_FALSE(tracker.HasVerdict());
  EXPECT_FALSE(tracker.AllHealthy());  // no verdict yet, not "healthy"

  std::vector<double> a = TemplateA(env), b = TemplateB(env);
  // Template A: accurate estimates. Template B: 100× off (|ln q| ≈ 4.6).
  for (int i = 0; i < 3; ++i) {
    tracker.Tick();
    tracker.Observe(a, 100.0, 100.0);
    tracker.Observe(b, 1000.0, 10.0);
  }
  uint64_t fpa = tracker.Fingerprint(a), fpb = tracker.Fingerprint(b);
  ASSERT_NE(fpa, fpb);
  EXPECT_TRUE(tracker.HasVerdict());
  EXPECT_FALSE(tracker.AllHealthy());
  EXPECT_FALSE(tracker.IsUnhealthy(fpa));
  EXPECT_TRUE(tracker.IsUnhealthy(fpb));
  EXPECT_EQ(tracker.UnhealthyCount(), 1u);
  EXPECT_EQ(tracker.UnhealthySet().count(fpb), 1u);
  // Half of all observations landed in the unhealthy template.
  EXPECT_DOUBLE_EQ(tracker.UnhealthyShare(), 0.5);

  std::vector<TemplateTracker::Offender> top = tracker.TopOffenders(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].fingerprint, fpb);
  EXPECT_GT(top[0].drift_score, 1.0);
  EXPECT_EQ(top[0].stats.last_seen_tick, 3u);
  EXPECT_NE(tracker.OffendersTextDump(2).find("UNHEALTHY"),
            std::string::npos);
}

TEST(TemplateTrackerTest, MinCountGatesEveryVerdict) {
  Env env(4, /*rows=*/2000);
  TrackerConfig config = VerdictConfig();
  config.min_count = 8;
  TemplateTracker tracker(&env.domain, config);
  std::vector<double> b = TemplateB(env);
  for (int i = 0; i < 7; ++i) tracker.Observe(b, 1000.0, 10.0);
  // Seven huge errors, but below min_count: no verdict, nothing unhealthy.
  EXPECT_FALSE(tracker.HasVerdict());
  EXPECT_FALSE(tracker.IsUnhealthy(tracker.Fingerprint(b)));
  EXPECT_DOUBLE_EQ(tracker.UnhealthyShare(), 0.0);
  tracker.Observe(b, 1000.0, 10.0);  // the eighth flips it
  EXPECT_TRUE(tracker.HasVerdict());
  EXPECT_TRUE(tracker.IsUnhealthy(tracker.Fingerprint(b)));
}

TEST(TemplateTrackerTest, InvalidateHistoryDropsVerdicts) {
  Env env(5, /*rows=*/2000);
  TemplateTracker tracker(&env.domain, VerdictConfig());
  std::vector<double> b = TemplateB(env);
  for (int i = 0; i < 4; ++i) tracker.Observe(b, 1000.0, 10.0);
  ASSERT_TRUE(tracker.HasVerdict());
  tracker.InvalidateHistory();
  EXPECT_FALSE(tracker.HasVerdict());
  EXPECT_EQ(tracker.log().NumKeys(), 0u);
  EXPECT_EQ(tracker.UnhealthyCount(), 0u);
}

TEST(TemplateTrackerTest, DisabledTrackerObservesNothing) {
  Env env(6, /*rows=*/2000);
  TrackerConfig config = VerdictConfig();
  config.enabled = false;
  TemplateTracker tracker(&env.domain, config);
  tracker.Observe(TemplateB(env), 1000.0, 10.0);
  EXPECT_FALSE(tracker.enabled());
  EXPECT_EQ(tracker.log().Observations(), 0u);
  EXPECT_FALSE(tracker.HasVerdict());
}

// ---------------------------------------------------------------------------
// Targeted adaptation inside Warper::Invoke.

WarperConfig FastConfig() {
  WarperConfig config;
  config.hidden_units = 64;
  config.hidden_layers = 2;
  config.n_i = 60;
  config.n_p = 200;
  config.tracker.targeted = true;
  config.tracker.min_count = 1;
  config.tracker.export_name = "";
  return config;
}

std::unique_ptr<ce::LmMlp> TrainModel(
    Env& env, const std::vector<ce::LabeledExample>& train, uint64_t seed) {
  auto model = std::make_unique<ce::LmMlp>(env.domain.FeatureDim(),
                                           ce::LmMlpConfig{}, seed);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(train, &x, &y);
  model->Train(x, y);
  return model;
}

// Labels uniformly off by a factor of e^1.5: the GLOBAL δ_m gap crosses π
// and would fire an adaptation, but no single template's EWMA |ln q| (≈ 1.5)
// crosses the raised unhealthy threshold — the tracker reads the gap as
// evenly-spread noise, not a localized drift, and vetoes the pass.
TEST(WarperTargetedTest, AllHealthyTrackerVetoesWorkloadTrigger) {
  Env env(40);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 40);
  WarperConfig config = FastConfig();
  // Healthy up to EWMA 2.0; the per-query error below is ≈ 1.5.
  config.tracker.unhealthy_threshold = 2.0;
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  // Drifted-shape arrivals restricted to estimates far above the q-error
  // floor θ, so every label moves both δ_m and the per-template EWMA.
  Warper::Invocation invocation;
  for (const ce::LabeledExample& q :
       env.Examples(workload::GenMethod::kW3, 240)) {
    double est = model->EstimateCardinality(q.features);
    if (est <= 100.0) continue;
    ce::LabeledExample labeled = q;
    labeled.cardinality = std::llround(est * 4.4816890703380645);  // e^1.5
    invocation.new_queries.push_back(std::move(labeled));
    if (invocation.new_queries.size() == 60) break;
  }
  ASSERT_GE(invocation.new_queries.size(), 20u);
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  // The global accuracy gap alone would have triggered adaptation.
  ASSERT_TRUE(result.delta_m_valid);
  ASSERT_GT(result.delta_m, 0.2);
  EXPECT_TRUE(result.targeted_skip);
  EXPECT_FALSE(result.mode.Any());
  EXPECT_EQ(result.generated, 0u);
  EXPECT_EQ(result.annotated, 0u);
  EXPECT_TRUE(warper.tracker().AllHealthy());
}

// The same drift with truthful labels: the model is wrong on the new
// templates, the tracker marks them unhealthy, and the pass runs targeted —
// never vetoed, budget still bounded by n_p.
TEST(WarperTargetedTest, UnhealthyTemplatesEngageTargetedAdaptation) {
  Env env(41);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 41);
  WarperConfig config = FastConfig();
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  invocation.annotation_budget = config.n_p;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_FALSE(result.targeted_skip);
  EXPECT_TRUE(result.mode.Any());
  // Ingest observed the labeled arrivals against the pre-update model, so
  // the verdict exists within the same invocation.
  EXPECT_GT(warper.tracker().log().Observations(), 0u);
  EXPECT_GT(result.unhealthy_templates, 0u);
  EXPECT_LE(result.annotated, config.n_p);
}

// targeted = false is the seed's exact global behavior: no skips, no
// targeting flags, whatever the tracker thinks.
TEST(WarperTargetedTest, GlobalModeNeverSkipsOrTargets) {
  Env env(42);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 42);
  WarperConfig config = FastConfig();
  config.tracker.targeted = false;
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  for (ce::LabeledExample& q : invocation.new_queries) {
    double est = model->EstimateCardinality(q.features);
    q.cardinality = std::max<int64_t>(1, std::llround(est));
  }
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_FALSE(result.targeted_skip);
  EXPECT_FALSE(result.targeted);
}

}  // namespace
}  // namespace warper::core
