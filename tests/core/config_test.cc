// WarperConfig::Validate — the single gate every entry point (Warper,
// WarperModels::Create, benches, examples) calls instead of re-checking
// knobs ad hoc.
#include "core/config.h"

#include <gtest/gtest.h>

namespace warper::core {
namespace {

TEST(WarperConfigTest, DefaultsValidate) {
  EXPECT_TRUE(WarperConfig{}.Validate().ok());
}

TEST(WarperConfigTest, RejectsZeroModuleShapes) {
  WarperConfig config;
  config.hidden_units = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = WarperConfig{};
  config.hidden_layers = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.embedding_dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WarperConfigTest, RejectsBadTrainingKnobs) {
  WarperConfig config;
  config.learning_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.learning_rate = -1e-3;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.batch_size = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.n_i = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.loss_patience = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WarperConfigTest, RejectsBadDriftKnobs) {
  WarperConfig config;
  config.pi_initial = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.pi_max = config.pi_initial / 2.0;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.pi_growth = 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.js_bins = 1;
  EXPECT_FALSE(config.Validate().ok());

  config = WarperConfig{};
  config.gamma = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WarperConfigTest, RejectsBadParallelKnobs) {
  WarperConfig config;
  config.parallel.threads = -2;
  Status st = config.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("parallel.threads"), std::string::npos);

  config = WarperConfig{};
  config.parallel.grain = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WarperConfigTest, MessagesNameTheKnob) {
  WarperConfig config;
  config.n_p = 0;
  Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("n_p"), std::string::npos);
}

}  // namespace
}  // namespace warper::core
