// Integration tests for the Warper controller (Alg. 1).
#include "core/warper.h"

#include <utility>

#include <gtest/gtest.h>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::core {
namespace {

struct Env {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;

  explicit Env(uint64_t seed, size_t rows = 20000)
      : table(storage::MakePrsa(rows, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {}

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n, bool with_labels = true) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts(n, -1);
    if (with_labels) counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }
};

WarperConfig FastConfig() {
  WarperConfig config;
  config.hidden_units = 64;
  config.hidden_layers = 2;
  config.n_i = 60;
  config.n_p = 200;
  return config;
}

std::unique_ptr<ce::LmMlp> TrainModel(Env& env,
                                      const std::vector<ce::LabeledExample>& train,
                                      uint64_t seed) {
  auto model =
      std::make_unique<ce::LmMlp>(env.domain.FeatureDim(), ce::LmMlpConfig{},
                                  seed);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(train, &x, &y);
  model->Train(x, y);
  return model;
}

TEST(WarperTest, NoDriftMeansNoAdaptationMachinery) {
  Env env(1);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 1);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW1, 48);
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_FALSE(result.mode.Any());
  // No generation / picking / annotation — but the model still receives its
  // passive per-period refresh from the arrived labeled queries (§4.3's
  // constant c_Model term).
  EXPECT_EQ(result.generated, 0u);
  EXPECT_EQ(result.annotated, 0u);
  EXPECT_TRUE(result.model_updated);
}

TEST(WarperTest, NoDriftNoLabelsNoUpdate) {
  Env env(12);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 12);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  // Unlabeled same-distribution arrivals: nothing to refresh from. (With no
  // labels the detector may flag c2/c3 from δ_js alone; only assert that a
  // quiet detector performs no passive update.)
  Warper::Invocation invocation;
  invocation.new_queries =
      env.Examples(workload::GenMethod::kW1, 10, /*with_labels=*/false);
  invocation.annotation_budget = 0;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  if (!result.mode.Any()) {
    EXPECT_FALSE(result.model_updated);
  }
}

TEST(WarperTest, AdaptsToWorkloadDriftC2) {
  Env env(2);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 2);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  std::vector<ce::LabeledExample> test =
      env.Examples(workload::GenMethod::kW3, 100);
  double before = ce::ModelGmq(*model, test);

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();

  EXPECT_TRUE(result.mode.c2);
  EXPECT_GT(result.generated, 0u);
  EXPECT_GT(result.annotated, 0u);
  EXPECT_TRUE(result.model_updated);
  double after = ce::ModelGmq(*model, test);
  EXPECT_LT(after, before);
}

TEST(WarperTest, HandlesUnlabeledArrivalsC3) {
  Env env(3);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 3);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries =
      env.Examples(workload::GenMethod::kW3, 60, /*with_labels=*/false);
  invocation.annotation_budget = 20;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_TRUE(result.mode.c3);
  EXPECT_LE(result.annotated, 20u);
  EXPECT_GT(result.annotated, 0u);
}

TEST(WarperTest, DataDriftC1MarksLabelsStaleAndReannotates) {
  Env env(4);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 4);
  WarperConfig config = FastConfig();
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  // Drift the data.
  storage::SortTruncateHalf(&env.table,
                            env.table.ColumnIndex("pm25").ValueOrDie());

  Warper::Invocation invocation;
  invocation.new_queries =
      env.Examples(workload::GenMethod::kW1, 40, /*with_labels=*/false);
  invocation.data_changed_fraction = 1.0;
  invocation.canary_shift = 0.5;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_TRUE(result.mode.c1);
  EXPECT_GT(result.annotated, 0u);

  // Some train-source records must have been re-annotated against the
  // post-drift table (fresh labels again).
  size_t fresh_train = 0;
  const QueryPool& pool = std::as_const(warper).pool();
  for (size_t i : pool.IndicesBySource(Source::kTrain)) {
    fresh_train += pool.record(i).HasFreshLabel() ? 1 : 0;
  }
  EXPECT_GT(fresh_train, 0u);
  EXPECT_LT(fresh_train, 500u);  // budget did not relabel everything
}

TEST(WarperTest, AnnotationBudgetZeroStillUpdatesFromArrivals) {
  Env env(5);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 5);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  invocation.annotation_budget = 0;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  EXPECT_EQ(result.annotated, 0u);
  EXPECT_TRUE(result.model_updated);
}

TEST(WarperTest, UnlabeledGeneratedArePrunedBetweenInvocations) {
  Env env(6);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 500);
  auto model = TrainModel(env, train, 6);
  WarperConfig config = FastConfig();
  config.gen_fraction = 0.5;  // generate plenty
  config.n_p = 5;             // annotate almost none
  Warper warper(&env.domain, model.get(), config);
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  ASSERT_TRUE(warper.Invoke(invocation).ok());
  const QueryPool& pool = std::as_const(warper).pool();
  for (size_t i : pool.IndicesBySource(Source::kGen)) {
    EXPECT_TRUE(pool.record(i).HasLabel());
  }
}

TEST(WarperTest, CpuAccountingNonZeroAfterAdaptation) {
  Env env(7);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 7);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());
  EXPECT_GT(warper.cpu().TotalSeconds(), 0.0);
  // Wall covers the same scopes as cpu, so it can never be smaller by more
  // than clock resolution.
  EXPECT_GE(warper.wall().TotalSeconds(), warper.cpu().TotalSeconds() * 0.5);
}

TEST(WarperTest, InvocationTimingBreaksDownPhases) {
  Env env(11);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 600);
  auto model = TrainModel(env, train, 11);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW3, 60);
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  ASSERT_TRUE(result.mode.c2);

  const Warper::InvocationTiming& timing = result.timing;
  EXPECT_GT(timing.wall_seconds, 0.0);
  EXPECT_GT(timing.cpu_seconds, 0.0);

  // Every phase of an adapting (c2) invocation must be present, in
  // execution order, with wall >= 0 and cpu >= 0.
  const char* expected[] = {"warper.ingest",   "warper.det_drft",
                            "warper.decide",   "warper.update_modules",
                            "warper.pick",     "warper.annotate",
                            "warper.update_model", "warper.eval"};
  const Warper::PhaseTiming* previous = nullptr;
  for (const char* name : expected) {
    const Warper::PhaseTiming* phase = timing.Find(name);
    ASSERT_NE(phase, nullptr) << name;
    EXPECT_GE(phase->wall_seconds, 0.0) << name;
    EXPECT_GE(phase->cpu_seconds, 0.0) << name;
    // Execution order is preserved in the phases vector.
    if (previous != nullptr) {
      EXPECT_LT(previous, phase) << name;
    }
    previous = phase;
  }
  // mark_stale belongs to c1 and must not appear here.
  EXPECT_EQ(timing.Find("warper.mark_stale"), nullptr);
  EXPECT_EQ(timing.Find("warper.no_such_phase"), nullptr);

  // The per-phase walls sum to no more than the whole invocation took.
  double phase_wall = 0.0;
  for (const Warper::PhaseTiming& p : timing.phases) {
    phase_wall += p.wall_seconds;
  }
  EXPECT_LE(phase_wall, timing.wall_seconds * 1.01 + 1e-6);

  // Module updates dominate a c2 invocation; its phase must carry real
  // time, and cpu cannot exceed wall for single-threaded phases by more
  // than clock skew.
  const Warper::PhaseTiming* update = timing.Find("warper.update_modules");
  EXPECT_GT(update->wall_seconds, 0.0);
  EXPECT_LE(update->cpu_seconds, update->wall_seconds * 1.5 + 1e-3);
}

TEST(WarperTest, InvocationTimingCoversDataDriftPhases) {
  Env env(12);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 400);
  auto model = TrainModel(env, train, 12);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  storage::UpdateRandomRows(&env.table, 0.4, &env.rng);
  Warper::Invocation invocation;
  invocation.new_queries = env.Examples(workload::GenMethod::kW1, 24);
  invocation.data_changed_fraction = 0.4;
  Warper::InvocationResult result = warper.Invoke(invocation).ValueOrDie();
  ASSERT_TRUE(result.mode.c1);
  EXPECT_NE(result.timing.Find("warper.mark_stale"), nullptr);
  EXPECT_NE(result.timing.Find("warper.annotate"), nullptr);
}

TEST(WarperStatusTest, InitializeRequiresTrainedModel) {
  Env env(8);
  ce::LmMlp model(env.domain.FeatureDim(), ce::LmMlpConfig{}, 8);
  Warper warper(&env.domain, &model, FastConfig());
  Status st = warper.Initialize({{std::vector<double>(16, 0.5), 10}});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("train M first"), std::string::npos);
}

TEST(WarperStatusTest, InvokeBeforeInitializeFails) {
  Env env(9);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 200);
  auto model = TrainModel(env, train, 9);
  Warper warper(&env.domain, model.get(), FastConfig());
  Result<Warper::InvocationResult> r = warper.Invoke({});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("Initialize"), std::string::npos);
}

TEST(WarperStatusTest, InitializeRejectsBadConfig) {
  Env env(10);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 200);
  auto model = TrainModel(env, train, 10);
  WarperConfig config = FastConfig();
  config.hidden_units = 0;
  Warper warper(&env.domain, model.get(), config);
  Status st = warper.Initialize(train);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("hidden_units"), std::string::npos);
}

TEST(WarperStatusTest, InitializeRejectsMismatchedFeatureDim) {
  Env env(11);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 200);
  auto model = TrainModel(env, train, 11);
  Warper warper(&env.domain, model.get(), FastConfig());
  std::vector<ce::LabeledExample> bad = train;
  bad.back().features.push_back(0.0);
  Status st = warper.Initialize(bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(WarperStatusTest, InvokeRejectsMismatchedFeatureDim) {
  Env env(13);
  std::vector<ce::LabeledExample> train =
      env.Examples(workload::GenMethod::kW1, 200);
  auto model = TrainModel(env, train, 13);
  Warper warper(&env.domain, model.get(), FastConfig());
  ASSERT_TRUE(warper.Initialize(train).ok());

  Warper::Invocation invocation;
  invocation.new_queries = {{std::vector<double>(3, 0.5), 10}};
  Result<Warper::InvocationResult> r = warper.Invoke(invocation);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace warper::core
