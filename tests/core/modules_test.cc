#include "core/modules.h"

#include <gtest/gtest.h>

#include "util/mutex.h"

namespace warper::core {
namespace {

WarperConfig SmallConfig() {
  WarperConfig config;
  config.hidden_units = 32;
  config.hidden_layers = 2;
  config.embedding_dim = 8;
  return config;
}

TEST(EncoderTest, InputLayoutWithAndWithoutLabel) {
  util::Rng rng(3);
  Encoder encoder(4, SmallConfig(), /*max_card=*/1000.0, &rng);
  EXPECT_EQ(encoder.input_dim(), 6u);
  EXPECT_EQ(encoder.embedding_dim(), 8u);

  PoolRecord labeled;
  labeled.features = {0.1, 0.2, 0.3, 0.4};
  labeled.gt = 99.0;
  std::vector<double> in = encoder.BuildInput(labeled);
  ASSERT_EQ(in.size(), 6u);
  EXPECT_GT(in[4], 0.0);          // normalized log-card channel
  EXPECT_DOUBLE_EQ(in[5], 1.0);   // has-label flag

  PoolRecord unlabeled = labeled;
  unlabeled.gt = -1.0;
  in = encoder.BuildInput(unlabeled);
  EXPECT_DOUBLE_EQ(in[4], 0.0);
  EXPECT_DOUBLE_EQ(in[5], 0.0);
}

TEST(EncoderTest, EmbedRecordsWritesZ) {
  util::Rng rng(5);
  Encoder encoder(2, SmallConfig(), 100.0, &rng);
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.1, 0.9}, 10.0, Source::kTrain);
  pool.AppendUnlabeled({0.5, 0.5}, Source::kNew);
  encoder.EmbedRecords(&pool, {0, 1});
  EXPECT_EQ(pool.record(0).z.size(), 8u);
  EXPECT_EQ(pool.record(1).z.size(), 8u);
  EXPECT_NE(pool.record(0).z, pool.record(1).z);
}

TEST(GeneratorTest, OutputsBoundedFeatures) {
  util::Rng rng(7);
  Generator generator(6, SmallConfig(), &rng);
  EXPECT_EQ(generator.feature_dim(), 6u);
  nn::Matrix z(4, 8);
  for (double& v : z.data()) v = rng.Normal(0, 3);
  nn::Matrix q = generator.Generate(z);
  EXPECT_EQ(q.rows(), 4u);
  EXPECT_EQ(q.cols(), 6u);
  for (double v : q.data()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(GeneratorTest, PerturbUsesEmbeddingSpread) {
  util::Rng rng(9);
  // Constant base embeddings → zero σ → no perturbation.
  nn::Matrix base(10, 4, 2.5);
  nn::Matrix perturbed = Generator::PerturbEmbeddings(base, &rng);
  for (double v : perturbed.data()) EXPECT_DOUBLE_EQ(v, 2.5);

  // Spread-out base → perturbation actually moves points.
  nn::Matrix spread(50, 4);
  for (double& v : spread.data()) v = rng.Normal(0, 1);
  nn::Matrix moved = Generator::PerturbEmbeddings(spread, &rng);
  double diff = 0.0;
  for (size_t i = 0; i < moved.data().size(); ++i) {
    diff += std::abs(moved.data()[i] - spread.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(DiscriminatorTest, ClassifyWritesPredictionAndConfidence) {
  util::Rng rng(11);
  WarperConfig config = SmallConfig();
  Encoder encoder(2, config, 100.0, &rng);
  Discriminator discriminator(config, &rng);

  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendLabeled({0.2, 0.8}, 5.0, Source::kTrain);
  pool.AppendUnlabeled({0.6, 0.1}, Source::kNew);
  encoder.EmbedRecords(&pool, {0, 1});
  discriminator.ClassifyRecords(&pool, {0, 1});

  for (size_t i = 0; i < 2; ++i) {
    EXPECT_GE(pool.record(i).predicted_label, 0);
    EXPECT_LT(pool.record(i).predicted_label, 3);
    EXPECT_GT(pool.record(i).confidence, 1.0 / 3.0 - 1e-9);
    EXPECT_LE(pool.record(i).confidence, 1.0);
  }
}

TEST(DiscriminatorTest, ClassProbabilitiesSumToOne) {
  util::Rng rng(13);
  WarperConfig config = SmallConfig();
  Discriminator discriminator(config, &rng);
  nn::Matrix z(5, config.embedding_dim);
  for (double& v : z.data()) v = rng.Normal();
  std::vector<double> p_train =
      discriminator.ClassProbability(z, Source::kTrain);
  std::vector<double> p_new = discriminator.ClassProbability(z, Source::kNew);
  std::vector<double> p_gen = discriminator.ClassProbability(z, Source::kGen);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(p_train[i] + p_new[i] + p_gen[i], 1.0, 1e-9);
  }
}

TEST(DiscriminatorDeathTest, RequiresEmbeddings) {
  util::Rng rng(17);
  Discriminator discriminator(SmallConfig(), &rng);
  QueryPool pool;
  util::MutexLock writer(&pool.writer_mu());
  pool.AppendUnlabeled({0.1}, Source::kNew);
  EXPECT_DEATH(discriminator.ClassifyRecords(&pool, {0}),
               "no embedding");
}

}  // namespace
}  // namespace warper::core
