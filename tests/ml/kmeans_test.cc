#include "ml/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  util::Rng rng(3);
  nn::Matrix points(90, 2);
  double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (size_t i = 0; i < 90; ++i) {
    size_t c = i / 30;
    points.SetRow(i, {centers[c][0] + rng.Normal(0, 0.2),
                      centers[c][1] + rng.Normal(0, 0.2)});
  }
  KMeansResult result = KMeans(points, 3, &rng);
  EXPECT_EQ(result.centroids.rows(), 3u);
  // All points of a true cluster share one assignment.
  for (size_t c = 0; c < 3; ++c) {
    std::set<size_t> labels;
    for (size_t i = c * 30; i < (c + 1) * 30; ++i) {
      labels.insert(result.assignment[i]);
    }
    EXPECT_EQ(labels.size(), 1u) << "cluster " << c << " split";
  }
  EXPECT_LT(result.inertia, 30.0);
}

TEST(KMeansTest, KClampedToPointCount) {
  util::Rng rng(5);
  nn::Matrix points = nn::Matrix::FromRows({{0.0}, {1.0}});
  KMeansResult result = KMeans(points, 10, &rng);
  EXPECT_EQ(result.centroids.rows(), 2u);
}

TEST(KMeansTest, SinglePoint) {
  util::Rng rng(7);
  nn::Matrix points = nn::Matrix::FromRows({{3.0, 4.0}});
  KMeansResult result = KMeans(points, 1, &rng);
  EXPECT_DOUBLE_EQ(result.centroids.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(result.centroids.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansTest, IdenticalPointsZeroInertia) {
  util::Rng rng(9);
  nn::Matrix points(20, 2, 1.5);
  KMeansResult result = KMeans(points, 3, &rng);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansTest, AssignmentIndicesValid) {
  util::Rng rng(11);
  nn::Matrix points(40, 3);
  for (double& v : points.data()) v = rng.Normal();
  KMeansResult result = KMeans(points, 4, &rng);
  for (size_t a : result.assignment) EXPECT_LT(a, result.centroids.rows());
  EXPECT_EQ(result.assignment.size(), 40u);
}

TEST(NearestCentroidTest, PicksClosest) {
  nn::Matrix centroids = nn::Matrix::FromRows({{0, 0}, {10, 10}});
  EXPECT_EQ(NearestCentroid(centroids, {1.0, 1.0}), 0u);
  EXPECT_EQ(NearestCentroid(centroids, {9.0, 9.0}), 1u);
}

// 1-d error stratification — the picker's actual use case.
TEST(KMeansTest, OneDimensionalStrata) {
  util::Rng rng(13);
  nn::Matrix errors(60, 1);
  for (size_t i = 0; i < 60; ++i) {
    errors.At(i, 0) = i < 30 ? rng.Uniform(0.0, 0.5) : rng.Uniform(5.0, 5.5);
  }
  KMeansResult result = KMeans(errors, 2, &rng);
  EXPECT_NE(result.assignment[0], result.assignment[59]);
}

}  // namespace
}  // namespace warper::ml
