#include "ml/kernel_ridge.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

class KernelRidgeKinds : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelRidgeKinds, FitsSmoothFunction) {
  util::Rng rng(3);
  nn::Matrix x(150, 1);
  std::vector<double> y(150);
  for (size_t i = 0; i < 150; ++i) {
    double a = rng.Uniform(0, 1);
    x.At(i, 0) = a;
    y[i] = std::sin(3.0 * a) + 0.5 * a;
  }
  KernelRidgeConfig config;
  config.kernel = GetParam();
  config.gamma = config.kernel == KernelKind::kRbf ? 10.0 : 1.0;
  config.degree = 5;
  config.ridge = 1e-4;
  KernelRidgeRegressor model;
  model.Fit(x, y, config, &rng);

  double sse = 0.0;
  for (size_t i = 0; i < 150; ++i) {
    double d = model.Predict(x.Row(i)) - y[i];
    sse += d * d;
  }
  EXPECT_LT(sse / 150.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelRidgeKinds,
                         ::testing::Values(KernelKind::kPolynomial,
                                           KernelKind::kRbf));

TEST(KernelRidgeTest, AnchorSubsamplingBoundsModelSize) {
  util::Rng rng(5);
  nn::Matrix x(800, 1);
  std::vector<double> y(800);
  for (size_t i = 0; i < 800; ++i) {
    x.At(i, 0) = rng.Uniform(0, 1);
    y[i] = x.At(i, 0);
  }
  KernelRidgeConfig config;
  config.max_anchors = 100;
  KernelRidgeRegressor model;
  model.Fit(x, y, config, &rng);
  EXPECT_EQ(model.num_anchors(), 100u);
  // Still fits the (linear) function well.
  EXPECT_NEAR(model.Predict({0.5}), 0.5, 0.1);
}

TEST(KernelRidgeTest, InterpolatesTrainingPointsWithTinyRidge) {
  util::Rng rng(7);
  nn::Matrix x = nn::Matrix::FromRows({{0.0}, {0.5}, {1.0}});
  std::vector<double> y = {1.0, -1.0, 2.0};
  KernelRidgeConfig config;
  config.kernel = KernelKind::kRbf;
  config.gamma = 5.0;
  config.ridge = 1e-8;
  KernelRidgeRegressor model;
  model.Fit(x, y, config, &rng);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(model.Predict(x.Row(i)), y[i], 1e-3);
  }
}

TEST(KernelRidgeTest, RbfFarFromDataDecaysTowardZero) {
  util::Rng rng(9);
  nn::Matrix x = nn::Matrix::FromRows({{0.0}});
  std::vector<double> y = {5.0};
  KernelRidgeConfig config;
  config.kernel = KernelKind::kRbf;
  config.gamma = 1.0;
  KernelRidgeRegressor model;
  model.Fit(x, y, config, &rng);
  EXPECT_NEAR(model.Predict({100.0}), 0.0, 1e-6);
}

TEST(KernelRidgeDeathTest, PredictBeforeFit) {
  KernelRidgeRegressor model;
  EXPECT_DEATH(model.Predict({0.0}), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ml
